"""Tests for the unified Session + IOBinding surface (:mod:`repro.runtime.session`).

Covers the executor registry (one source of truth, eager validation),
IOBinding edge cases — output buffers aliasing inputs, non-contiguous bound
buffers, dtype/shape mismatches, overlapping output buffers — and the two
load-bearing guarantees: bound runs are bitwise-identical to the
:class:`GraphExecutor` reference on the whole model zoo, and a warm
``run_with_binding`` loop performs zero arena allocations and zero
graph-output allocations (every output lands in place in its bound buffer).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import MODEL_REGISTRY
from repro.pipeline import PipelineConfig, ramiel_compile
from repro.runtime import profile_model
from repro.runtime.executor import GraphExecutor
from repro.runtime.plan import ExecutionPlan, PlanError
from repro.runtime.session import (
    EXECUTOR_REGISTRY,
    IOBinding,
    Session,
    create_session,
    known_executors,
    validate_executor,
)
from repro.serving.engine import example_inputs
from tests.conftest import build_chain_model, build_diamond_model


def plan_session(model) -> Session:
    """A cheap plan session that skips the clustering pipeline."""
    return create_session(ExecutionPlan(model))


def bind_all(session: Session, feed) -> IOBinding:
    binding = session.bind()
    for name, array in feed.items():
        binding.bind_input(name, array)
    for name in session.output_names:
        binding.bind_output(name)
    return binding


# ---------------------------------------------------------------------------
# Executor registry
# ---------------------------------------------------------------------------
class TestExecutorRegistry:
    def test_registry_names(self):
        assert known_executors() == ("plan", "interp", "pool", "process")
        assert set(EXECUTOR_REGISTRY) == set(known_executors())

    def test_validate_accepts_known_names(self):
        for name in known_executors():
            assert validate_executor(name) == name

    def test_validate_rejects_unknown_with_registry_list(self):
        with pytest.raises(ValueError, match="plan, interp, pool, process"):
            validate_executor("turbo")

    def test_validate_rejects_outside_allowed_subset(self):
        with pytest.raises(ValueError, match="choose from: plan"):
            validate_executor("pool", allowed=("plan",))

    def test_create_session_validates_eagerly(self):
        with pytest.raises(ValueError, match="known executors"):
            create_session(build_diamond_model(), executor="bogus")


# ---------------------------------------------------------------------------
# Session construction
# ---------------------------------------------------------------------------
class TestSessionConstruction:
    def test_from_model_compiles_and_runs(self):
        model = build_diamond_model()
        session = create_session(model)
        feed = example_inputs(model, seed=1)
        outputs = session.run(feed)
        assert set(outputs) == set(session.output_names)
        assert session.executor == "plan"
        assert session.result is not None and session.plan is not None

    def test_from_result_reuses_compiled_plan(self):
        result = ramiel_compile(build_diamond_model())
        session = result.session()
        assert session.plan is result.execution_plan

    def test_from_execution_plan_wraps_directly(self):
        model = build_diamond_model()
        plan = ExecutionPlan(model)
        session = create_session(plan)
        assert session.plan is plan
        with pytest.raises(ValueError, match="'plan' session"):
            create_session(plan, executor="interp")

    def test_interp_session_shares_the_interface(self):
        result = ramiel_compile(build_diamond_model())
        feed = example_inputs(result.model, seed=3)
        via_plan = result.session().run(feed)
        via_interp = result.session(executor="interp").run(feed)
        for name, ref in via_plan.items():
            np.testing.assert_array_equal(via_interp[name], ref)

    def test_rejects_unknown_artifact_types(self):
        with pytest.raises(TypeError, match="create_session expects"):
            create_session({"not": "a model"})

    def test_closed_session_refuses_work(self):
        model = build_diamond_model()
        session = plan_session(model)
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.run(example_inputs(model))

    def test_broken_session_refuses_work(self):
        model = build_diamond_model()
        session = plan_session(model)
        session.mark_broken("watchdog timeout")
        assert session.broken
        with pytest.raises(RuntimeError, match="watchdog timeout"):
            session.run(example_inputs(model))


# ---------------------------------------------------------------------------
# IOBinding basics and edge cases
# ---------------------------------------------------------------------------
class TestIOBinding:
    def test_unknown_names_rejected(self):
        session = plan_session(build_diamond_model())
        binding = session.bind()
        with pytest.raises(ValueError, match="no input"):
            binding.bind_input("nope", np.zeros((1, 3, 16, 16), np.float32))
        with pytest.raises(ValueError, match="no output"):
            binding.bind_output("nope")

    def test_input_shape_and_dtype_validated_at_bind_time(self):
        session = plan_session(build_diamond_model())
        binding = session.bind()
        with pytest.raises(ValueError, match="axis"):
            binding.bind_input("x", np.zeros((1, 3, 8, 8), np.float32))
        with pytest.raises(ValueError, match="dimensions"):
            binding.bind_input("x", np.zeros((3, 16, 16), np.float32))
        with pytest.raises(ValueError, match="dtype"):
            binding.bind_input("x", np.zeros((1, 3, 16, 16), np.float64))
        # the batch axis is free (serving stacks along it)
        binding.bind_input("x", np.zeros((5, 3, 16, 16), np.float32))

    def test_output_buffer_must_be_writeable(self):
        session = plan_session(build_diamond_model())
        binding = session.bind()
        buf = np.zeros((1, 10), np.float32)
        buf.flags.writeable = False
        with pytest.raises(ValueError, match="writeable"):
            binding.bind_output(session.output_names[0], buf)

    def test_overlapping_output_buffers_rejected(self):
        model = build_diamond_model()
        feed = example_inputs(model)
        session = plan_session(model)
        shape = session.run(feed)[session.output_names[0]].shape
        # one output: simulate the overlap check against an already-bound
        # buffer by binding twice from views of the same base
        base = np.zeros((2,) + shape, np.float32)
        binding = session.bind()
        binding._outputs["__other__"] = base[0]
        with pytest.raises(ValueError, match="overlaps"):
            binding.bind_output(session.output_names[0], base[0, :1])

    def test_run_with_binding_requires_all_inputs(self):
        session = plan_session(build_diamond_model())
        binding = session.bind()
        with pytest.raises(ValueError, match="missing graph inputs"):
            session.run_with_binding(binding)

    def test_binding_is_session_scoped(self):
        model = build_diamond_model()
        binding = plan_session(model).bind()
        other = plan_session(model)
        with pytest.raises(ValueError, match="different session"):
            other.run_with_binding(binding)

    def test_output_shape_mismatch_raises(self):
        model = build_diamond_model()
        feed = example_inputs(model)
        session = plan_session(model)
        binding = bind_all(session, feed)
        name = session.output_names[0]
        binding._outputs[name] = np.zeros((7, 7), np.float32)
        with pytest.raises(PlanError, match="shape"):
            session.run_with_binding(binding)

    def test_output_dtype_mismatch_raises(self):
        model = build_diamond_model()
        feed = example_inputs(model)
        session = plan_session(model)
        reference = session.run(feed)
        name = session.output_names[0]
        binding = bind_all(session, feed)
        binding._outputs[name] = np.zeros(reference[name].shape, np.float64)
        with pytest.raises(PlanError, match="dtype"):
            session.run_with_binding(binding)

    def test_lazy_outputs_materialize_once_and_are_reused(self):
        model = build_diamond_model()
        feed = example_inputs(model, seed=4)
        session = plan_session(model)
        binding = bind_all(session, feed)
        first = session.run_with_binding(binding)
        second = session.run_with_binding(binding)
        for name in session.output_names:
            assert first[name] is second[name]
            assert binding.get_outputs()[name] is first[name]

    def test_caller_provided_output_buffer_is_written_in_place(self):
        model = build_diamond_model()
        feed = example_inputs(model, seed=5)
        session = plan_session(model)
        reference = GraphExecutor(model).run(feed)
        name = session.output_names[0]
        buf = np.empty_like(reference[name])
        binding = session.bind()
        for in_name, array in feed.items():
            binding.bind_input(in_name, array)
        binding.bind_output(name, buf)
        for _ in range(3):
            outputs = session.run_with_binding(binding)
            assert outputs[name] is buf
            np.testing.assert_array_equal(buf, reference[name])


# ---------------------------------------------------------------------------
# Aliasing and layout edge cases
# ---------------------------------------------------------------------------
class TestBindingAliasing:
    def test_output_buffer_aliasing_an_input_is_safe(self):
        """Binding an output over (a view of) an input must not corrupt the
        computation: the plan defers the write to the end of the run."""
        model = build_chain_model()
        feed = example_inputs(model, seed=6)
        session = plan_session(model)
        reference = GraphExecutor(model).run(feed)
        name = session.output_names[0]
        out_shape = reference[name].shape
        # a scratch area that *contains* the input: bind the input to one
        # view and the output to an overlapping view
        x = feed["x"]
        scratch = np.empty(max(x.size, int(np.prod(out_shape)) + x.size),
                           np.float32)
        in_view = scratch[:x.size].reshape(x.shape)
        in_view[...] = x
        out_view = scratch[:int(np.prod(out_shape))].reshape(out_shape)
        assert np.may_share_memory(in_view, out_view)
        binding = session.bind()
        binding.bind_input("x", in_view)
        binding.bind_output(name, out_view)
        outputs = session.run_with_binding(binding)
        assert outputs[name] is out_view
        np.testing.assert_array_equal(out_view, reference[name])

    def test_non_contiguous_bound_buffers(self):
        """Strided (non-contiguous) input and output buffers work and stay
        bitwise-identical to the contiguous reference."""
        model = build_diamond_model()
        feed = example_inputs(model, seed=7)
        session = plan_session(model)
        reference = GraphExecutor(model).run(feed)
        name = session.output_names[0]
        x = feed["x"]
        in_base = np.zeros(x.shape[:-1] + (2 * x.shape[-1],), x.dtype)
        in_view = in_base[..., ::2]
        in_view[...] = x
        assert not in_view.flags.c_contiguous
        out_shape = reference[name].shape
        out_base = np.zeros(out_shape[:-1] + (2 * out_shape[-1],), np.float32)
        out_view = out_base[..., ::2]
        assert not out_view.flags.c_contiguous
        binding = session.bind()
        binding.bind_input("x", in_view)
        binding.bind_output(name, out_view)
        for _ in range(3):
            outputs = session.run_with_binding(binding)
            assert outputs[name] is out_view
            np.testing.assert_array_equal(out_view, reference[name])
        # the interleaved columns were never touched
        np.testing.assert_array_equal(out_base[..., 1::2], 0)

    def test_multi_output_binding_over_shared_input_is_safe(self):
        """Two outputs of the same input, one bound over the input buffer:
        finalization must snapshot overlapping sources before the first
        copy, or the earlier copy corrupts the later output's source."""
        from repro.ir import GraphBuilder

        b = GraphBuilder("dual_output", seed=0)
        x = b.input("x", (1, 8))
        relu_out = b.relu(x)
        ident_out = b.identity(x)
        b.output(relu_out)
        b.output(ident_out)
        model = b.build()
        session = plan_session(model)
        original = np.linspace(-4.0, 3.0, 8, dtype=np.float32).reshape(1, 8)
        expected_relu = np.maximum(original, 0)
        for order in ((relu_out, ident_out), (ident_out, relu_out)):
            x_buf = original.copy()
            ident_buf = np.empty_like(original)
            binding = session.bind()
            binding.bind_input("x", x_buf)
            # relu lands over the input buffer itself; identity elsewhere
            buffers = {relu_out: x_buf, ident_out: ident_buf}
            for name in order:
                binding.bind_output(name, buffers[name])
            outputs = session.run_with_binding(binding)
            np.testing.assert_array_equal(outputs[ident_out], original)
            np.testing.assert_array_equal(outputs[relu_out], expected_relu)

    def test_output_buffer_overlapping_initializer_rejected(self):
        """Writing a bound output into (a view of) a weight array would
        corrupt every subsequent run; the plan refuses loudly."""
        model = build_diamond_model()
        feed = example_inputs(model)
        session = plan_session(model)
        weight = next(iter(session.plan.graph.initializers.values()))
        with pytest.raises(PlanError, match="initializer"):
            session.plan.run(feed, out={session.output_names[0]: weight})

    def test_bound_and_unbound_runs_interleave_safely(self):
        model = build_diamond_model()
        feed = example_inputs(model, seed=8)
        session = plan_session(model)
        reference = GraphExecutor(model).run(feed)
        name = session.output_names[0]
        binding = bind_all(session, feed)
        for _ in range(2):
            bound = session.run_with_binding(binding)
            unbound = session.run(feed)
            np.testing.assert_array_equal(bound[name], reference[name])
            np.testing.assert_array_equal(unbound[name], reference[name])
            assert unbound[name] is not bound[name]


# ---------------------------------------------------------------------------
# Zoo-wide: bitwise equality and the zero-alloc contract
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("model_name", sorted(MODEL_REGISTRY))
def test_bound_runs_bitwise_equal_interpreter_on_zoo(model_name):
    model = MODEL_REGISTRY[model_name].build(variant="small")
    feed = example_inputs(model, seed=11)
    reference = GraphExecutor(model).run(feed)
    session = plan_session(model)
    binding = bind_all(session, feed)
    for _ in range(3):
        outputs = session.run_with_binding(binding)
        assert set(outputs) == set(reference)
        for name, ref in reference.items():
            np.testing.assert_array_equal(outputs[name], ref)


@pytest.mark.parametrize("model_name", sorted(MODEL_REGISTRY))
def test_warm_bound_loop_is_zero_alloc_on_zoo(model_name):
    """Once warm, run_with_binding makes zero arena allocations and zero
    graph-output allocations: every output is written directly into its
    bound buffer (direct writes only, no end-of-run copies)."""
    model = MODEL_REGISTRY[model_name].build(variant="small")
    feed = example_inputs(model, seed=12)
    session = plan_session(model)
    binding = bind_all(session, feed)
    session.run_with_binding(binding)  # materialize + specialize
    session.run_with_binding(binding)  # first fully-bound (direct) run
    stats = session.stats()["plan"]
    allocs_warm = stats["arena"]["allocations"]
    copies_warm = stats["output_binding"]["copy_writes"]
    direct_warm = stats["output_binding"]["direct_writes"]
    rounds = 3
    buffers = dict(binding.get_outputs())
    for _ in range(rounds):
        outputs = session.run_with_binding(binding)
        for name, buf in buffers.items():
            assert outputs[name] is buf
    stats = session.stats()["plan"]
    assert stats["arena"]["allocations"] == allocs_warm
    assert stats["output_binding"]["copy_writes"] == copies_warm
    assert (stats["output_binding"]["direct_writes"] - direct_warm
            == rounds * len(session.output_names))
    assert stats["output_binding"]["bindable_outputs"] == len(session.output_names)


# ---------------------------------------------------------------------------
# Integration with the rest of the redesigned surface
# ---------------------------------------------------------------------------
class TestUnifiedSurface:
    def test_run_planned_is_a_deprecated_shim(self):
        result = ramiel_compile(build_diamond_model())
        feed = example_inputs(result.model, seed=13)
        with pytest.deprecated_call(match="session"):
            deprecated = result.run_planned(feed)
        fresh = result.session().run(feed)
        for name, ref in fresh.items():
            np.testing.assert_array_equal(deprecated[name], ref)

    def test_new_surface_emits_no_deprecation_warnings(self):
        """The session path itself never routes through deprecated entry
        points (CI runs this module with -W error::DeprecationWarning)."""
        import warnings

        model = build_diamond_model()
        feed = example_inputs(model, seed=14)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session = create_session(model)
            binding = bind_all(session, feed)
            session.run_with_binding(binding)
            session.run(feed)

    def test_profile_model_accepts_a_session(self):
        model = build_diamond_model()
        feed = example_inputs(model)
        session = plan_session(model)
        session.run(feed)  # warm outside the profile
        profile = profile_model(session, feed, num_runs=2, warmup=1)
        assert profile.engine == "session:plan"
        assert profile.arena_stats is not None
        assert profile.arena_allocs_during_runs == 0
        via_interp = profile_model(
            create_session(ramiel_compile(model, config=PipelineConfig(
                generate_code=False, build_plan=False)), executor="interp"),
            feed, num_runs=1)
        assert via_interp.engine == "session:interp"

    def test_profile_model_rejects_pool_sessions(self):
        result = ramiel_compile(build_diamond_model())
        session = result.session(executor="pool")
        try:
            with pytest.raises(ValueError, match="in-process"):
                profile_model(session, example_inputs(result.model))
        finally:
            session.close()

    def test_pool_session_runs_and_binds_by_copy(self):
        result = ramiel_compile(build_diamond_model())
        feed = example_inputs(result.model, seed=15)
        reference = result.session().run(feed)
        with result.session(executor="pool") as session:
            assert session.pool is not None
            outputs = session.run(feed)
            for name, ref in reference.items():
                np.testing.assert_allclose(outputs[name], ref,
                                           rtol=1e-5, atol=1e-6)
            binding = bind_all(session, feed)
            bound = session.run_with_binding(binding)
            for name, ref in reference.items():
                np.testing.assert_allclose(bound[name], ref,
                                           rtol=1e-5, atol=1e-6)
