"""Chaos suite for the self-healing execution stack.

Drives :mod:`repro.resilience`'s deterministic :class:`FaultInjector`
through crash / hang / slow / exception / channel-corruption faults
against the warm pools (thread and process backends) and the serving
engine, asserting the properties the layer promises:

* a killed worker is detected and respawned *individually* — never via a
  full pool restart — within seconds, not the batch timeout;
* an injected failure mid-batch is retried and the caller's future
  resolves with **bitwise-correct** outputs;
* a persistently failing artifact trips its circuit breaker and serving
  degrades onto the in-process ``"plan"`` executor, then recovers through
  a half-open probe;
* every recovery decision is visible in ``stats()`` and the shared
  ``MetricsRegistry``.

Also the regression tests for the satellites: the one-shot process
driver's child-leak fix and cross-process traceback preservation.
"""

from __future__ import annotations

import multiprocessing
import time

import numpy as np
import pytest

from tests.conftest import build_chain_model, build_diamond_model, build_wide_model
from repro.pipeline import PipelineConfig, ramiel_compile
from repro.resilience import (
    BreakerOpen,
    CircuitBreaker,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    PoolSupervisor,
    ResilienceConfig,
    ResilientDispatcher,
    RetryPolicy,
)
from repro.runtime.process_runtime import (
    ParallelExecutionError,
    _run_processes,
    remote_error_text,
)
from repro.runtime.session import create_session
from repro.runtime.worker_pool import WarmExecutorPool
from repro.serving import EngineConfig, InferenceEngine, example_inputs


def _compile(model):
    return ramiel_compile(model, config=PipelineConfig(
        generate_code=True, build_plan=False))


@pytest.fixture(scope="module")
def chain_compiled():
    """Single-cluster artifact: crashes cannot strand peer workers."""
    model = build_chain_model()
    result = _compile(model)
    feed = example_inputs(model, seed=7)
    reference = result.run_parallel(feed, backend="thread")
    return model, result, feed, reference


@pytest.fixture(scope="module")
def wide_compiled():
    """Four-cluster artifact for multi-worker chaos."""
    model = build_wide_model()
    result = _compile(model)
    feed = example_inputs(model, seed=11)
    reference = result.run_parallel(feed, backend="thread")
    return model, result, feed, reference


def _assert_bitwise(outputs, reference) -> None:
    assert set(outputs) == set(reference)
    for name, ref in reference.items():
        np.testing.assert_array_equal(np.asarray(outputs[name]),
                                      np.asarray(ref))


def _wait_until(predicate, timeout_s: float = 10.0, what: str = "condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"{what} not reached within {timeout_s}s")


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_delays_are_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=5, backoff_base_s=0.1,
                             backoff_multiplier=2.0, backoff_max_s=0.3,
                             jitter=0.1, seed=42)
        first, second = list(policy.delays()), list(policy.delays())
        assert first == second  # seeded jitter replays exactly
        assert len(first) == 4  # one delay per retry
        assert all(delay <= 0.3 * 1.1 for delay in first)

    def test_retries_until_success(self):
        calls, retries = [], []
        policy = RetryPolicy(max_attempts=3, backoff_base_s=0.0, jitter=0.0)

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ValueError(f"boom {len(calls)}")
            return "ok"

        result = policy.call(flaky, on_retry=lambda n, e: retries.append(n))
        assert result == "ok"
        assert len(calls) == 3
        assert retries == [1, 2]

    def test_exhaustion_raises_last_failure(self):
        policy = RetryPolicy(max_attempts=2, backoff_base_s=0.0, jitter=0.0)
        calls = []

        def always():
            calls.append(1)
            raise ValueError(f"boom {len(calls)}")

        with pytest.raises(ValueError, match="boom 2"):
            policy.call(always)
        assert len(calls) == 2

    def test_deadline_budget_stops_retries(self):
        policy = RetryPolicy(max_attempts=10, backoff_base_s=1.0,
                             backoff_multiplier=1.0, backoff_max_s=1.0,
                             jitter=0.0, deadline_s=2.5)
        fake_now = [0.0]
        calls = []

        def always():
            calls.append(1)
            raise ValueError("boom")

        with pytest.raises(ValueError):
            policy.call(always, clock=lambda: fake_now[0],
                        sleep=lambda s: fake_now.__setitem__(
                            0, fake_now[0] + s))
        # 2.5s budget funds two 1s sleeps, not a third
        assert len(calls) == 3

    def test_non_retryable_exceptions_propagate_immediately(self):
        policy = RetryPolicy(max_attempts=5, backoff_base_s=0.0,
                             retry_on=(ValueError,))
        calls = []

        def wrong_kind():
            calls.append(1)
            raise KeyError("not retryable")

        with pytest.raises(KeyError):
            policy.call(wrong_kind)
        assert len(calls) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def test_trips_after_threshold_and_half_opens(self):
        now = [0.0]
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=5.0,
                                 clock=lambda: now[0])
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # below threshold
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        now[0] = 5.1
        assert breaker.state == "half-open"
        assert breaker.allow()        # the single probe is admitted
        assert not breaker.allow()    # ... and only the single probe
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.stats()["opens"] == 1

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        now = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=2.0,
                                 clock=lambda: now[0])
        breaker.record_failure()
        assert breaker.state == "open"
        now[0] = 2.5
        assert breaker.allow()
        breaker.record_failure()      # the probe fails
        assert breaker.state == "open"
        now[0] = 4.0                  # 1.5s into the *new* cooldown
        assert breaker.state == "open"
        now[0] = 4.6
        assert breaker.state == "half-open"

    def test_success_resets_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"


# ---------------------------------------------------------------------------
# FaultInjector schedules
# ---------------------------------------------------------------------------
class TestFaultInjector:
    def test_counter_schedule_after_and_times(self):
        injector = FaultInjector([FaultSpec(
            site="worker.execute", kind="exc", after=2, times=2,
            message="boom")])
        directives = [injector.directive("worker.execute") for _ in range(6)]
        assert directives == [None, None, ("exc", "boom"), ("exc", "boom"),
                              None, None]
        assert injector.stats() == {"worker.execute:exc": 2}

    def test_worker_filter_and_site_filter(self):
        injector = FaultInjector([FaultSpec(
            site="worker.execute", kind="crash", worker=1, times=-1)])
        assert injector.directive("worker.execute", worker=0) is None
        assert injector.directive("worker.execute", worker=1) == ("crash",)
        assert injector.directive("other.site", worker=1) is None

    def test_probability_is_seed_deterministic(self):
        def draws(seed):
            injector = FaultInjector([FaultSpec(
                site="s", kind="exc", times=-1, probability=0.5)], seed=seed)
            return [injector.directive("s") is not None for _ in range(32)]

        assert draws(3) == draws(3)
        assert any(draws(3)) and not all(draws(3))

    def test_fire_raises_in_process(self):
        injector = FaultInjector([FaultSpec(site="s", kind="exc",
                                            message="inline")])
        with pytest.raises(InjectedFault, match="inline"):
            injector.fire("s")
        injector.fire("s")  # schedule exhausted: no-op

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(site="s", kind="meltdown")


# ---------------------------------------------------------------------------
# Pool-level chaos: injected worker faults + supervision
# ---------------------------------------------------------------------------
class TestPoolChaos:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_slow_worker_still_bitwise_correct(self, chain_compiled, backend):
        _, result, feed, reference = chain_compiled
        weights = result.optimized_model.graph.initializers
        injector = FaultInjector([FaultSpec(
            site="worker.execute", kind="slow", seconds=0.2, times=1)])
        with WarmExecutorPool(result.parallel_module, weights,
                              backend=backend) as pool:
            pool.set_fault_injector(injector)
            outputs = pool.run(feed, timeout=30.0)
            _assert_bitwise(outputs, reference)
            assert not pool.broken
            assert injector.stats() == {"worker.execute:slow": 1}

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_injected_exception_ships_remote_traceback(self, chain_compiled,
                                                       backend):
        _, result, feed, reference = chain_compiled
        weights = result.optimized_model.graph.initializers
        injector = FaultInjector([FaultSpec(
            site="worker.execute", kind="exc", times=1,
            message="chaos-exc-marker")])
        with WarmExecutorPool(result.parallel_module, weights,
                              backend=backend) as pool:
            pool.set_fault_injector(injector)
            with pytest.raises(ParallelExecutionError) as excinfo:
                pool.run(feed, timeout=30.0)
            text = str(excinfo.value)
            assert "chaos-exc-marker" in text
            # the worker-side frame crossed the process boundary
            assert "Remote traceback" in text
            assert "apply_worker_fault" in text
            assert pool.broken
            # no worker died: heal() just clears the broken flag
            assert pool.heal() == []
            assert not pool.broken
            _assert_bitwise(pool.run(feed, timeout=30.0), reference)
            assert pool.stats()["restarts"] == 0

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_crashed_worker_is_respawned_not_restarted(self, chain_compiled,
                                                       backend):
        _, result, feed, reference = chain_compiled
        weights = result.optimized_model.graph.initializers
        injector = FaultInjector([FaultSpec(
            site="worker.execute", kind="crash", worker=0, times=1)])
        with WarmExecutorPool(result.parallel_module, weights,
                              backend=backend, fail_grace_s=1.0) as pool:
            pool.set_fault_injector(injector)
            supervisor = PoolSupervisor(pool, interval_s=0.1,
                                        hang_timeout_s=2.0).start()
            try:
                start = time.monotonic()
                # The batch timeout is 120s; supervision must fail the run
                # in seconds via fail_inflight, not wait out the watchdog.
                with pytest.raises(ParallelExecutionError, match="died|timed out"):
                    pool.run(feed, timeout=120.0)
                detection_s = time.monotonic() - start
                assert detection_s < 30.0
                _wait_until(
                    lambda: not pool.broken and pool.worker_alive(0)
                    and pool.stats()["respawns"] >= 1,
                    timeout_s=15.0, what="supervised respawn")
                outputs = pool.run(feed, timeout=30.0)
                _assert_bitwise(outputs, reference)
                stats = pool.stats()
                assert stats["respawns"] >= 1
                assert stats["restarts"] == 0  # never a full restart
                assert supervisor.stats()["deaths_detected"] >= 1
                assert supervisor.stats()["respawns"] >= 1
            finally:
                supervisor.stop()

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_hung_worker_is_declared_wedged_and_replaced(self, chain_compiled,
                                                         backend):
        _, result, feed, reference = chain_compiled
        weights = result.optimized_model.graph.initializers
        injector = FaultInjector([FaultSpec(
            site="worker.execute", kind="hang", seconds=8.0, times=1)])
        with WarmExecutorPool(result.parallel_module, weights,
                              backend=backend, fail_grace_s=1.0) as pool:
            pool.set_fault_injector(injector)
            supervisor = PoolSupervisor(pool, interval_s=0.1,
                                        hang_timeout_s=1.0).start()
            try:
                start = time.monotonic()
                with pytest.raises(ParallelExecutionError, match="wedged"):
                    pool.run(feed, timeout=120.0)
                assert time.monotonic() - start < 30.0
                _wait_until(
                    lambda: not pool.broken and pool.stats()["respawns"] >= 1,
                    timeout_s=15.0, what="wedged-worker respawn")
                _assert_bitwise(pool.run(feed, timeout=30.0), reference)
                assert pool.stats()["restarts"] == 0
                assert supervisor.stats()["wedges_detected"] >= 1
            finally:
                supervisor.stop()

    def test_corrupted_result_channel_fails_fast(self, chain_compiled):
        _, result, feed, reference = chain_compiled
        weights = result.optimized_model.graph.initializers
        injector = FaultInjector([FaultSpec(
            site="worker.execute", kind="corrupt", times=1)])
        with WarmExecutorPool(result.parallel_module, weights) as pool:
            pool.set_fault_injector(injector)
            start = time.monotonic()
            with pytest.raises(ParallelExecutionError,
                               match="corrupted result-channel message"):
                pool.run(feed, timeout=120.0)
            assert time.monotonic() - start < 10.0  # not the batch timeout
            assert pool.stats()["protocol_errors"] >= 1
            assert pool.heal() == []  # the worker itself is still alive
            _assert_bitwise(pool.run(feed, timeout=30.0), reference)

    def test_multi_cluster_crash_converges_under_supervision(
            self, wide_compiled):
        """Peers stranded on a dead worker's channels heal via wedge sweeps."""
        _, result, feed, reference = wide_compiled
        weights = result.optimized_model.graph.initializers
        injector = FaultInjector([FaultSpec(
            site="worker.execute", kind="crash", worker=1, times=1)])
        with WarmExecutorPool(result.parallel_module, weights,
                              backend="process", fail_grace_s=1.0) as pool:
            pool.set_fault_injector(injector)
            supervisor = PoolSupervisor(pool, interval_s=0.1,
                                        hang_timeout_s=1.5).start()
            try:
                outputs = None
                for _ in range(5):
                    _wait_until(lambda: not pool.broken, timeout_s=20.0,
                                what="pool healed")
                    try:
                        outputs = pool.run(feed, timeout=60.0)
                        break
                    except ParallelExecutionError:
                        continue
                assert outputs is not None, "pool never converged"
                _assert_bitwise(outputs, reference)
                stats = pool.stats()
                assert stats["respawns"] >= 1
                assert stats["restarts"] == 0
            finally:
                supervisor.stop()

    def test_fault_metrics_visible_in_registry(self, chain_compiled):
        from repro.observability import MetricsRegistry

        _, result, feed, reference = chain_compiled
        weights = result.optimized_model.graph.initializers
        injector = FaultInjector([FaultSpec(
            site="worker.execute", kind="crash", worker=0, times=1)])
        registry = MetricsRegistry()
        with WarmExecutorPool(result.parallel_module, weights,
                              fail_grace_s=1.0) as pool:
            pool.set_fault_injector(injector)
            pool.publish_metrics(registry, labels={"model": "chain"})
            supervisor = PoolSupervisor(pool, interval_s=0.1,
                                        hang_timeout_s=2.0).start()
            supervisor.publish_metrics(registry, labels={"model": "chain"})
            try:
                with pytest.raises(ParallelExecutionError):
                    pool.run(feed, timeout=120.0)
                _wait_until(lambda: pool.stats()["respawns"] >= 1,
                            timeout_s=15.0, what="respawn")
                snapshot = registry.snapshot()
                assert snapshot['pool_worker_respawns_total{model="chain"}'][
                    "value"] >= 1
                assert snapshot['pool_workers_alive{model="chain"}'][
                    "value"] == pool.num_clusters
                assert snapshot['supervisor_respawns_total{model="chain"}'][
                    "value"] >= 1
                assert snapshot['pool_failures_total{model="chain"}'][
                    "value"] == 1
            finally:
                supervisor.stop()


# ---------------------------------------------------------------------------
# Session.recover
# ---------------------------------------------------------------------------
class TestSessionRecover:
    def test_plan_session_rebuilds_fresh_plan(self):
        model = build_diamond_model()
        session = create_session(model, executor="plan")
        feed = example_inputs(model, seed=5)
        reference = session.run(feed)
        old_plan = session.plan
        session.mark_broken("simulated wedge")
        with pytest.raises(RuntimeError, match="broken"):
            session.run(feed)
        session.recover()
        assert session.plan is not old_plan  # the old lock may be held forever
        _assert_bitwise(session.run(feed), reference)
        session.close()

    def test_pool_session_heals_workers(self, chain_compiled):
        _, result, feed, reference = chain_compiled
        injector = FaultInjector([FaultSpec(
            site="worker.execute", kind="exc", times=1)])
        session = create_session(result, executor="pool")
        try:
            session.pool.set_fault_injector(injector)
            with pytest.raises(ParallelExecutionError):
                session.run(feed, timeout=30.0)
            assert session.pool.broken
            session.recover()
            assert not session.pool.broken
            _assert_bitwise(session.run(feed, timeout=30.0), reference)
            assert session.pool.stats()["restarts"] == 0
        finally:
            session.close()

    def test_interp_session_recovers(self):
        model = build_diamond_model()
        session = create_session(model, executor="interp")
        feed = example_inputs(model, seed=5)
        reference = session.run(feed)
        session.mark_broken("simulated")
        session.recover()
        _assert_bitwise(session.run(feed), reference)
        session.close()

    def test_closed_session_cannot_recover(self):
        model = build_chain_model()
        session = create_session(model, executor="plan")
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.recover()


# ---------------------------------------------------------------------------
# ResilientDispatcher
# ---------------------------------------------------------------------------
class TestResilientDispatcher:
    @staticmethod
    def _config(**kw):
        kw.setdefault("retry", RetryPolicy(max_attempts=3, backoff_base_s=0.0,
                                           jitter=0.0))
        return ResilienceConfig(**kw)

    def test_retry_with_recovery_then_success(self):
        calls, recovered = [], []

        def primary():
            calls.append(1)
            if len(calls) < 3:
                raise ValueError("transient")
            return {"y": 1}

        dispatcher = ResilientDispatcher(
            primary, self._config(), recover=lambda: recovered.append(1))
        assert dispatcher() == {"y": 1}
        stats = dispatcher.stats()
        assert stats["retries"] == 2
        assert stats["recoveries"] == 2
        assert stats["breaker"]["state"] == "closed"

    def test_breaker_opens_and_serves_degraded(self):
        def primary():
            raise ValueError("persistent")

        def fallback():
            return {"y": "degraded"}

        dispatcher = ResilientDispatcher(
            primary, self._config(breaker_threshold=2, breaker_cooldown_s=60.0),
            fallback=fallback)
        assert dispatcher() == {"y": "degraded"}  # exhausted -> fallback
        assert dispatcher() == {"y": "degraded"}
        stats = dispatcher.stats()
        assert stats["breaker"]["state"] == "open"
        assert stats["exhausted"] == 2
        # breaker now open: the primary is not touched at all
        before = stats["primary_runs"]
        assert dispatcher() == {"y": "degraded"}
        assert dispatcher.stats()["primary_runs"] == before
        assert dispatcher.stats()["degraded_runs"] == 3

    def test_open_breaker_without_fallback_raises_breaker_open(self):
        def primary():
            raise ValueError("persistent")

        dispatcher = ResilientDispatcher(
            primary,
            self._config(breaker_threshold=1, breaker_cooldown_s=60.0,
                         degrade=False))
        with pytest.raises(ValueError):
            dispatcher()
        with pytest.raises(BreakerOpen):
            dispatcher()

    def test_half_open_probe_restores_the_fast_path(self):
        healthy = [False]

        def primary():
            if not healthy[0]:
                raise ValueError("still broken")
            return {"y": "fast"}

        def fallback():
            return {"y": "degraded"}

        dispatcher = ResilientDispatcher(
            primary,
            self._config(breaker_threshold=1, breaker_cooldown_s=0.05,
                         retry=RetryPolicy(max_attempts=1)),
            fallback=fallback)
        assert dispatcher() == {"y": "degraded"}
        assert dispatcher.stats()["breaker"]["opens"] == 1
        healthy[0] = True
        time.sleep(0.06)  # cooldown elapses -> next call is the probe
        assert dispatcher() == {"y": "fast"}
        assert dispatcher.stats()["breaker"]["state"] == "closed"
        assert dispatcher() == {"y": "fast"}


# ---------------------------------------------------------------------------
# Serving-engine integration
# ---------------------------------------------------------------------------
class TestServingResilience:
    def test_injected_batch_failure_is_retried_to_bitwise_correctness(self):
        model = build_diamond_model()
        feed = example_inputs(model, seed=21)
        with InferenceEngine(EngineConfig(executor="plan",
                                          max_batch_size=1)) as plain:
            reference = plain.infer(model, feed)

        injector = FaultInjector([FaultSpec(
            site="worker.execute", kind="exc", times=2,
            message="serving-chaos")])
        config = EngineConfig(
            executor="pool", max_batch_size=1, timeout_s=60.0,
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=3, backoff_base_s=0.01,
                                  jitter=0.0),
                fault_injector=injector,
                hang_timeout_s=5.0))
        with InferenceEngine(config) as engine:
            engine.warmup(model, feed)  # injector fires on the first batches
            outputs = engine.infer(model, feed)
            _assert_bitwise(outputs, reference)
            snapshot = engine.registry.snapshot()
            retried = [v["value"] for k, v in snapshot.items()
                       if k.startswith("serving_resilience_retries_total")]
            assert retried and max(retried) >= 1

    def test_breaker_degrades_to_plan_and_recovers(self):
        model = build_diamond_model()
        feed = example_inputs(model, seed=22)
        with InferenceEngine(EngineConfig(executor="plan",
                                          max_batch_size=1)) as plain:
            reference = plain.infer(model, feed)

        injector = FaultInjector([FaultSpec(
            site="worker.execute", kind="exc", times=-1,
            message="always failing")])
        config = EngineConfig(
            executor="pool", max_batch_size=1, timeout_s=60.0,
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=2, backoff_base_s=0.01,
                                  jitter=0.0),
                breaker_threshold=1, breaker_cooldown_s=0.3,
                fault_injector=injector,
                hang_timeout_s=5.0))
        with InferenceEngine(config) as engine:
            # every primary attempt fails: the batch must still resolve,
            # served by the degraded in-process plan executor
            outputs = engine.infer(model, feed)
            _assert_bitwise(outputs, reference)
            artifacts = list(engine._cache.values())
            assert len(artifacts) == 1
            dispatcher = artifacts[0].dispatcher
            stats = dispatcher.stats()
            assert stats["degraded_runs"] >= 1
            assert stats["breaker"]["opens"] >= 1
            assert artifacts[0].supervisor is not None
            assert artifacts[0].supervisor.running

            # while open, requests keep being served (degraded)
            _assert_bitwise(engine.infer(model, feed), reference)

            # the fault clears; after cooldown a half-open probe restores
            # the pool fast path
            injector.clear()
            time.sleep(0.35)
            primary_before = dispatcher.stats()["primary_runs"]
            _assert_bitwise(engine.infer(model, feed), reference)
            assert dispatcher.stats()["primary_runs"] > primary_before
            assert dispatcher.stats()["breaker"]["state"] == "closed"
            snapshot = engine.registry.snapshot()
            degraded = [v["value"] for k, v in snapshot.items()
                        if k.startswith("serving_resilience_degraded_runs")]
            assert degraded and max(degraded) >= 1

    def test_resilience_none_keeps_legacy_fail_fast(self):
        model = build_diamond_model()
        feed = example_inputs(model, seed=23)
        injector = FaultInjector([FaultSpec(
            site="worker.execute", kind="exc", times=-1, message="boom")])
        with InferenceEngine(EngineConfig(executor="pool", max_batch_size=1,
                                          timeout_s=60.0)) as engine:
            engine.warmup(model, feed)
            artifact = list(engine._cache.values())[0]
            assert artifact.dispatcher is None
            assert artifact.supervisor is None
            artifact.session.pool.set_fault_injector(injector)
            with pytest.raises(Exception, match="boom"):
                engine.infer(model, feed)


# ---------------------------------------------------------------------------
# One-shot process driver: leak fix + remote tracebacks (satellites)
# ---------------------------------------------------------------------------
def _hang_cluster(inputs, weights, channels):  # pragma: no cover - child code
    time.sleep(60.0)
    return {}


def _boom_cluster(inputs, weights, channels):  # pragma: no cover - child code
    raise RuntimeError("deliberate child failure")


def _ok_cluster(inputs, weights, channels):  # pragma: no cover - child code
    return {"y": np.zeros(1, np.float32)}


class _FakeModule:
    MODEL_NAME = "fake"
    CHANNEL_NAMES = ()
    GRAPH_OUTPUTS = ("y",)

    def __init__(self, *fns):
        self.CLUSTER_FUNCTIONS = list(fns)


def _cluster_children():
    return [p for p in multiprocessing.active_children()
            if p.name.startswith("cluster-")]


class TestProcessDriverHardening:
    def test_timeout_reaps_child_processes(self):
        module = _FakeModule(_hang_cluster, _ok_cluster)
        with pytest.raises(ParallelExecutionError, match="timed out"):
            _run_processes(module, {}, {}, timeout=1.0)
        # The fix: a timed-out run must not leak live children.  (Before,
        # the workers kept running until interpreter exit.)
        _wait_until(lambda: not _cluster_children(), timeout_s=5.0,
                    what="child processes reaped")

    def test_worker_failure_reaps_and_ships_remote_traceback(self):
        module = _FakeModule(_boom_cluster, _ok_cluster)
        with pytest.raises(ParallelExecutionError) as excinfo:
            _run_processes(module, {}, {}, timeout=30.0)
        text = str(excinfo.value)
        assert "deliberate child failure" in text
        assert "Remote traceback" in text
        assert "_boom_cluster" in text  # the worker-side frame is named
        _wait_until(lambda: not _cluster_children(), timeout_s=5.0,
                    what="child processes reaped")

    def test_remote_error_text_includes_frames(self):
        try:
            raise ValueError("original")
        except ValueError as exc:
            text = remote_error_text(exc)
        assert "ValueError('original')" in text
        assert "Remote traceback" in text
        assert "test_remote_error_text_includes_frames" in text
