"""Tests for the multi-tenant QoS layer and artifact-cache partitioning.

Covers the admission queue's start-time-fair-queueing discipline (weighted
shares under a 10:1 skew, per-tenant FIFO), the frontend's edge cases the
issue calls out (deadline already expired at admission, queue-full
rejection ordering, deadline expiry while queued, drain semantics), the
RetryPolicy integration on dispatch, and the per-tenant cache quotas that
stop one heavy tenant from evicting another's warm artifacts.

The frontend tests run against a fake engine whose routing is controlled
by hand-resolved futures — deterministic, no compilation, no sleeps on
the happy path.  A final block exercises the real engine end to end.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.observability import MetricsRegistry
from repro.serving import (
    ArtifactCache,
    BatcherClosed,
    EngineConfig,
    InferenceEngine,
    example_inputs,
)
from repro.serving.qos import (
    AdmissionQueue,
    DeadlineExpired,
    EngineOverloaded,
    QoSConfig,
    QoSFrontend,
    TenantConfig,
    TenantQueueFull,
    UnknownTenant,
    _QoSRequest,
)
from tests.conftest import build_diamond_model


def make_request(tenant: str, batch_len: int = 1, model=None,
                 signature=("sig",), deadline=None) -> _QoSRequest:
    return _QoSRequest(tenant=tenant, model=model, arrays={},
                       batch_len=batch_len, signature=signature,
                       future=Future(), deadline=deadline, enqueue_t=0.0)


def wait_until(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.001)


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------
class TestConfigs:
    def test_tenant_validation(self):
        with pytest.raises(ValueError):
            TenantConfig("")
        with pytest.raises(ValueError):
            TenantConfig("t", weight=0)
        with pytest.raises(ValueError):
            TenantConfig("t", max_queue=0)
        with pytest.raises(ValueError):
            TenantConfig("t", deadline_s=0)
        with pytest.raises(ValueError):
            TenantConfig("t", cache_quota=0)

    def test_duplicate_tenants_rejected(self):
        with pytest.raises(ValueError):
            QoSConfig(tenants=(TenantConfig("a"), TenantConfig("a")))

    def test_unknown_tenant_inherits_default_template(self):
        config = QoSConfig(default_tenant=TenantConfig(
            "default", weight=2.0, max_queue=7))
        resolved = config.tenant_config("newcomer")
        assert resolved.name == "newcomer"
        assert resolved.weight == 2.0
        assert resolved.max_queue == 7

    def test_strict_tenants_reject_unknown(self):
        config = QoSConfig(tenants=(TenantConfig("a"),), strict_tenants=True)
        with pytest.raises(UnknownTenant):
            config.tenant_config("stranger")
        assert config.tenant_config("a").name == "a"

    def test_cache_quota_lookup(self):
        config = QoSConfig(tenants=(TenantConfig("a", cache_quota=3),))
        assert config.cache_quota_for("a") == 3
        assert config.cache_quota_for("b") is None
        assert config.cache_quota_for(None) is None


# ---------------------------------------------------------------------------
# AdmissionQueue: start-time fair queueing
# ---------------------------------------------------------------------------
class TestAdmissionQueue:
    def queue(self, **overrides) -> AdmissionQueue:
        defaults = dict(
            tenants=(TenantConfig("heavy", weight=10.0, max_queue=1000),
                     TenantConfig("light", weight=1.0, max_queue=1000)),
            max_queue_depth=10_000)
        defaults.update(overrides)
        return AdmissionQueue(QoSConfig(**defaults))

    def test_weighted_shares_under_10_to_1_skew(self):
        """Both tenants fully backlogged: dispatch honors the 10:1 weights."""
        q = self.queue()
        for i in range(100):
            q.push(make_request("heavy"))
            q.push(make_request("light"))
        popped = [q.pop().tenant for _ in range(110)]
        heavy_share = popped[:55].count("heavy")
        # Ideal is 50 of 55 (10/11); leave slack for stamp ties.
        assert heavy_share >= 45, popped[:55]
        # Nobody is starved outright either.
        assert popped[:55].count("light") >= 2

    def test_per_tenant_fifo_order(self):
        q = self.queue()
        reqs = [make_request("heavy") for _ in range(5)]
        for r in reqs:
            q.push(r)
        assert [q.pop() for _ in range(5)] == reqs

    def test_idle_tenant_does_not_bank_credit(self):
        """A tenant idle while others ran restarts at the virtual clock,
        not at its ancient last-finish stamp (no starvation of the busy
        tenant, no unbounded catch-up burst)."""
        q = self.queue()
        for _ in range(50):
            q.push(make_request("heavy"))
        for _ in range(30):
            q.pop()
        q.push(make_request("light"))
        # The light arrival lands relative to the *current* virtual time:
        # it waits its weighted share (~10 heavy dispatches at 10:1), not
        # behind all 20 remaining heavy requests.
        popped = [q.pop().tenant for _ in range(12)]
        assert "light" in popped

    def test_tenant_queue_bound(self):
        q = self.queue(tenants=(TenantConfig("t", max_queue=2),))
        q.push(make_request("t"))
        q.push(make_request("t"))
        with pytest.raises(TenantQueueFull):
            q.push(make_request("t"))
        assert q.depth == 2  # queued requests keep their slots

    def test_global_queue_bound(self):
        q = self.queue(max_queue_depth=3)
        for i in range(3):
            q.push(make_request(f"t{i}"))
        with pytest.raises(EngineOverloaded):
            q.push(make_request("t9"))

    def test_eligibility_filter_skips_capped_heads(self):
        q = self.queue()
        blocked = make_request("heavy", signature=("busy",))
        ready = make_request("light", signature=("idle",))
        q.push(blocked)
        q.push(ready)
        popped = q.pop(lambda r: r.signature != ("busy",))
        assert popped is ready
        assert q.pop() is blocked

    def test_drain_all_empties_every_queue(self):
        q = self.queue()
        reqs = [make_request("heavy"), make_request("light")]
        for r in reqs:
            q.push(r)
        assert sorted(map(id, q.drain_all())) == sorted(map(id, reqs))
        assert q.depth == 0


# ---------------------------------------------------------------------------
# QoSFrontend against a fake engine
# ---------------------------------------------------------------------------
class _FakeEngine:
    """Just enough engine for QoSFrontend: registry, tracer, _route_once.

    Each call to ``_route_once`` appends ``(tenant-partition, future)`` to
    ``routed`` and returns a future the test resolves by hand — dispatch
    order and in-flight lifetime are fully controlled.
    """

    def __init__(self, route_once=None):
        self.registry = MetricsRegistry()
        self.tracer = None
        self.routed = []
        self._route_once_fn = route_once

    def _route_once(self, model, signature, arrays, batch_len,
                    partition=None):
        if self._route_once_fn is not None:
            return self._route_once_fn(model, signature, arrays, batch_len,
                                       partition)
        future: Future = Future()
        self.routed.append((partition, future))
        return future, None


def make_frontend(config=None, route_once=None):
    engine = _FakeEngine(route_once=route_once)
    frontend = QoSFrontend(engine, config or QoSConfig())
    return engine, frontend


class TestQoSFrontend:
    def test_deadline_already_expired_at_admission(self):
        _, frontend = make_frontend()
        try:
            with pytest.raises(DeadlineExpired):
                frontend.submit(object(), {}, 1, ("sig",), tenant="t",
                                deadline_s=0.0)
            with pytest.raises(DeadlineExpired):
                frontend.submit(object(), {}, 1, ("sig",), tenant="t",
                                deadline_s=-1.0)
            assert frontend.stats()["tenants"]["t"]["expired"] == 2
            assert frontend.stats()["depth"] == 0
        finally:
            frontend.close(drain_timeout=0.1)

    def test_tenant_default_deadline_applies(self):
        config = QoSConfig(tenants=(TenantConfig("slo", deadline_s=30.0),))
        engine, frontend = make_frontend(config)
        try:
            future = frontend.submit(object(), {}, 1, ("sig",), tenant="slo")
            wait_until(lambda: engine.routed)
            engine.routed[0][1].set_result({"y": 1})
            assert future.result(timeout=5) == {"y": 1}
        finally:
            frontend.close(drain_timeout=0.1)

    def test_queue_full_rejection_ordering(self):
        """The overflowing request is rejected; queued ones complete FIFO."""
        config = QoSConfig(tenants=(TenantConfig("t", max_queue=2),),
                           max_artifact_inflight=1)
        engine, frontend = make_frontend(config)
        try:
            model = object()
            f1 = frontend.submit(model, {}, 1, ("sig",), tenant="t")
            wait_until(lambda: len(engine.routed) == 1)  # r1 in flight
            f2 = frontend.submit(model, {}, 1, ("sig",), tenant="t")
            f3 = frontend.submit(model, {}, 1, ("sig",), tenant="t")
            with pytest.raises(TenantQueueFull) as excinfo:
                frontend.submit(model, {}, 1, ("sig",), tenant="t")
            assert excinfo.value.http_status == 429
            assert excinfo.value.retry_after_s is not None
            # r2/r3 kept their slots and dispatch strictly in FIFO order.
            engine.routed[0][1].set_result({"r": 1})
            wait_until(lambda: len(engine.routed) == 2)
            assert not f3.done()
            engine.routed[1][1].set_result({"r": 2})
            wait_until(lambda: len(engine.routed) == 3)
            engine.routed[2][1].set_result({"r": 3})
            assert f1.result(timeout=5) == {"r": 1}
            assert f2.result(timeout=5) == {"r": 2}
            assert f3.result(timeout=5) == {"r": 3}
            stats = frontend.stats()["tenants"]["t"]
            assert stats["rejected"] == 1
            assert stats["completed"] == 3
        finally:
            frontend.close(drain_timeout=0.1)

    def test_global_overload_returns_503(self):
        config = QoSConfig(max_queue_depth=1, max_artifact_inflight=1)
        engine, frontend = make_frontend(config)
        try:
            model = object()
            frontend.submit(model, {}, 1, ("sig",), tenant="a")
            wait_until(lambda: len(engine.routed) == 1)
            frontend.submit(model, {}, 1, ("sig",), tenant="b")  # fills depth 1
            with pytest.raises(EngineOverloaded) as excinfo:
                frontend.submit(model, {}, 1, ("sig",), tenant="c")
            assert excinfo.value.http_status == 503
        finally:
            frontend.close(drain_timeout=0.1)

    def test_deadline_expires_while_queued(self):
        config = QoSConfig(max_artifact_inflight=1)
        engine, frontend = make_frontend(config)
        try:
            model = object()
            frontend.submit(model, {}, 1, ("sig",), tenant="t")
            wait_until(lambda: len(engine.routed) == 1)
            starved = frontend.submit(model, {}, 1, ("sig",), tenant="t",
                                      deadline_s=0.02)
            time.sleep(0.05)  # budget runs out behind the in-flight request
            engine.routed[0][1].set_result({})
            with pytest.raises(DeadlineExpired):
                starved.result(timeout=5)
            assert len(engine.routed) == 1  # never wasted service on it
        finally:
            frontend.close(drain_timeout=0.1)

    def test_inflight_cap_serializes_one_artifact(self):
        config = QoSConfig(max_artifact_inflight=1)
        engine, frontend = make_frontend(config)
        try:
            model = object()
            frontend.submit(model, {}, 1, ("sig",), tenant="t")
            frontend.submit(model, {}, 1, ("sig",), tenant="t")
            wait_until(lambda: len(engine.routed) == 1)
            time.sleep(0.05)
            assert len(engine.routed) == 1  # capped, not dispatched
            # A different artifact is not capped by the busy one.
            frontend.submit(model, {}, 1, ("other",), tenant="t")
            wait_until(lambda: len(engine.routed) == 2)
            assert engine.routed[1][0] == "t"
            engine.routed[0][1].set_result({})
            wait_until(lambda: len(engine.routed) == 3)
            engine.routed[1][1].set_result({})
            engine.routed[2][1].set_result({})
        finally:
            frontend.close(drain_timeout=0.5)

    def test_dispatch_retries_batcher_closed_under_policy(self):
        """A concurrently invalidated artifact is re-routed, not failed."""
        attempts = []

        def flaky_route(model, signature, arrays, batch_len, partition):
            attempts.append(partition)
            if len(attempts) < 3:
                raise BatcherClosed("artifact died")
            future: Future = Future()
            future.set_result({"ok": True})
            return future, None

        engine, frontend = make_frontend(route_once=flaky_route)
        try:
            future = frontend.submit(object(), {}, 1, ("sig",), tenant="t")
            assert future.result(timeout=5) == {"ok": True}
            assert len(attempts) == 3
        finally:
            frontend.close(drain_timeout=0.1)

    def test_dispatch_retry_respects_remaining_deadline(self):
        """Retries never outlive the request's budget (PR 8 integration)."""
        def always_closed(model, signature, arrays, batch_len, partition):
            raise BatcherClosed("artifact keeps dying")

        config = QoSConfig(dispatch_retry=dataclass_replace_retry())
        engine, frontend = make_frontend(config, route_once=always_closed)
        try:
            future = frontend.submit(object(), {}, 1, ("sig",), tenant="t",
                                     deadline_s=0.05)
            with pytest.raises((BatcherClosed, DeadlineExpired)):
                future.result(timeout=5)
        finally:
            frontend.close(drain_timeout=0.1)

    def test_strict_tenancy_rejects_unknown_synchronously(self):
        config = QoSConfig(tenants=(TenantConfig("known"),),
                           strict_tenants=True)
        _, frontend = make_frontend(config)
        try:
            with pytest.raises(UnknownTenant) as excinfo:
                frontend.submit(object(), {}, 1, ("sig",), tenant="nope")
            assert excinfo.value.http_status == 403
        finally:
            frontend.close(drain_timeout=0.1)

    def test_drain_rejects_new_and_finishes_queued(self):
        config = QoSConfig(max_artifact_inflight=1)
        engine, frontend = make_frontend(config)
        try:
            model = object()
            f1 = frontend.submit(model, {}, 1, ("sig",), tenant="t")
            f2 = frontend.submit(model, {}, 1, ("sig",), tenant="t")
            wait_until(lambda: len(engine.routed) == 1)
            frontend.begin_drain()
            with pytest.raises(EngineOverloaded):
                frontend.submit(model, {}, 1, ("sig",), tenant="t")
            resolver = threading.Thread(target=self._resolve_all,
                                        args=(engine, 2))
            resolver.start()
            assert frontend.drain(timeout=5.0)
            resolver.join()
            assert f1.result(timeout=1) == {}
            assert f2.result(timeout=1) == {}
        finally:
            frontend.close(drain_timeout=0.1)

    @staticmethod
    def _resolve_all(engine: _FakeEngine, expected: int) -> None:
        deadline = time.monotonic() + 5.0
        resolved = 0
        while resolved < expected and time.monotonic() < deadline:
            if len(engine.routed) > resolved:
                engine.routed[resolved][1].set_result({})
                resolved += 1
            else:
                time.sleep(0.001)

    def test_close_fails_leftover_queued_requests(self):
        config = QoSConfig(max_artifact_inflight=1)
        engine, frontend = make_frontend(config)
        model = object()
        frontend.submit(model, {}, 1, ("sig",), tenant="t")
        wait_until(lambda: len(engine.routed) == 1)
        stuck = frontend.submit(model, {}, 1, ("sig",), tenant="t")
        frontend.close(drain_timeout=0.05)  # in-flight request never resolves
        with pytest.raises(EngineOverloaded):
            stuck.result(timeout=5)

    def test_metrics_families_present(self):
        engine, frontend = make_frontend()
        try:
            future = frontend.submit(object(), {}, 1, ("sig",), tenant="m")
            wait_until(lambda: engine.routed)
            engine.routed[0][1].set_result({})
            future.result(timeout=5)
            text = engine.registry.render_prometheus()
            for family in ("qos_admitted_total", "qos_requests_done_total",
                           "qos_queue_wait_seconds", "qos_queue_depth",
                           "qos_inflight_requests"):
                assert family in text, family
        finally:
            frontend.close(drain_timeout=0.1)


def dataclass_replace_retry():
    import dataclasses as _dc

    from repro.resilience import RetryPolicy
    return RetryPolicy(max_attempts=100, backoff_base_s=0.01,
                       backoff_max_s=0.01, jitter=0.0,
                       retry_on=(BatcherClosed,))


# ---------------------------------------------------------------------------
# Artifact-cache partitioning
# ---------------------------------------------------------------------------
def fake_key(tag: str):
    from repro.serving import ArtifactKey
    return ArtifactKey(model_fingerprint=f"model-{tag}",
                       config_fingerprint="config", input_signature=(tag,))


class _Closeable:
    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True


class TestCachePartitioning:
    def test_quota_evicts_own_partition_only(self):
        """A tenant at its quota churns through its own artifacts while a
        colder tenant's (globally older!) entry stays warm."""
        evicted = []
        quotas = {"heavy": 2}
        cache = ArtifactCache(capacity=10,
                              on_evict=lambda k, a: evicted.append(k),
                              quota_for=quotas.get)
        protected = fake_key("protected")
        cache.get_or_create(protected, _Closeable, partition="light")
        heavy_keys = [fake_key(f"h{i}") for i in range(4)]
        for key in heavy_keys:
            cache.get_or_create(key, _Closeable, partition="heavy")
        # heavy exceeded its quota twice: its own two oldest went.
        assert evicted == heavy_keys[:2]
        assert protected in cache
        assert cache.partition_sizes() == {"light": 1, "heavy": 2}

    def test_capacity_overflow_prefers_over_quota_partition(self):
        """Global LRU pressure victimizes the over-quota partition first
        even when the protected partition holds the oldest entry."""
        evicted = []
        quotas = {"bounded": 1}
        cache = ArtifactCache(capacity=2,
                              on_evict=lambda k, a: evicted.append(k),
                              quota_for=quotas.get)
        oldest = fake_key("oldest")
        cache.get_or_create(oldest, _Closeable, partition="other")
        cache.get_or_create(fake_key("b1"), _Closeable, partition="bounded")
        # "bounded" is at quota; an unpartitioned insert overflows capacity
        # and evicts from it... nothing is over quota here, so plain LRU:
        cache.get_or_create(fake_key("free"), _Closeable)
        assert evicted == [oldest]

    def test_hit_keeps_original_partition(self):
        cache = ArtifactCache(capacity=4, quota_for={"a": 1}.get)
        key = fake_key("shared")
        cache.get_or_create(key, _Closeable, partition="a")
        _, hit = cache.get_or_create(key, _Closeable, partition="b")
        assert hit
        assert cache.partition_sizes() == {"a": 1}

    def test_invalidate_and_clear_forget_partitions(self):
        cache = ArtifactCache(capacity=4, quota_for={}.get)
        key = fake_key("gone")
        cache.get_or_create(key, _Closeable, partition="p")
        cache.invalidate(key)
        assert cache.partition_sizes() == {}
        cache.get_or_create(key, _Closeable, partition="p")
        cache.clear()
        assert cache.partition_sizes() == {}

    def test_unpartitioned_insert_never_hits_quota_paths(self):
        cache = ArtifactCache(capacity=2, quota_for={"t": 1}.get)
        for i in range(3):
            cache.get_or_create(fake_key(f"u{i}"), _Closeable)
        assert len(cache) == 2  # plain LRU behavior


# ---------------------------------------------------------------------------
# Real engine end to end
# ---------------------------------------------------------------------------
class TestEngineIntegration:
    def qos_engine(self, **qos_overrides) -> InferenceEngine:
        defaults = dict(tenants=(TenantConfig("gold", weight=4.0),
                                 TenantConfig("free", weight=1.0)))
        defaults.update(qos_overrides)
        return InferenceEngine(EngineConfig(
            max_batch_size=4, max_wait_s=0.002, cache_capacity=4,
            qos=QoSConfig(**defaults)))

    def test_qos_results_match_direct_submit(self):
        model = build_diamond_model()
        feed = example_inputs(model)
        direct = InferenceEngine(EngineConfig(max_batch_size=4))
        try:
            reference = direct.infer(model, feed)
        finally:
            direct.shutdown()
        engine = self.qos_engine()
        try:
            outputs = engine.submit(model, feed, tenant="gold").result(
                timeout=60)
            for name, ref in reference.items():
                np.testing.assert_array_equal(np.asarray(ref),
                                              np.asarray(outputs[name]))
        finally:
            engine.shutdown()

    def test_concurrent_multi_tenant_traffic_all_completes(self):
        model = build_diamond_model()
        feed = example_inputs(model)
        engine = self.qos_engine()
        try:
            futures = [engine.submit(model, feed,
                                     tenant="gold" if i % 2 else "free")
                       for i in range(16)]
            for future in futures:
                assert future.result(timeout=60)
            stats = engine.qos.stats()
            assert stats["tenants"]["gold"]["completed"] == 8
            assert stats["tenants"]["free"]["completed"] == 8
        finally:
            engine.shutdown()

    def test_engine_drain_then_reject(self):
        model = build_diamond_model()
        feed = example_inputs(model)
        engine = self.qos_engine()
        try:
            engine.submit(model, feed, tenant="gold").result(timeout=60)
            assert engine.drain(timeout=10.0)
            with pytest.raises(EngineOverloaded):
                engine.submit(model, feed, tenant="gold")
        finally:
            engine.shutdown()

    def test_shutdown_closes_frontend(self):
        engine = self.qos_engine()
        engine.shutdown()
        assert engine.qos._closed

    def test_cache_partition_label_follows_tenant(self):
        model = build_diamond_model()
        feed = example_inputs(model)
        engine = self.qos_engine(tenants=(
            TenantConfig("gold", weight=4.0, cache_quota=2),
            TenantConfig("free", weight=1.0)))
        try:
            engine.submit(model, feed, tenant="gold").result(timeout=60)
            sizes = engine._cache.partition_sizes()
            assert sizes.get("gold") == 1
        finally:
            engine.shutdown()
