"""End-to-end integration tests across the whole pipeline.

For every model in the zoo (reduced "small" variants) we run the complete
Ramiel flow — prune, cluster, merge, generate parallel code, execute with
the thread runtime — and check numerical equivalence against the reference
interpreter on the *original* (unpruned) model.  This is the strongest
correctness statement in the suite: clustering and code generation must not
change what the model computes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import build_model, list_models
from repro.pipeline import ramiel_compile
from repro.runtime import execute_model


def _make_inputs(model, rng):
    inputs = {}
    for info in model.graph.inputs:
        shape = tuple(1 if d is None else d for d in info.shape)
        if info.dtype.value.startswith("int"):
            inputs[info.name] = rng.integers(0, 50, size=shape).astype(np.int64)
        else:
            inputs[info.name] = rng.standard_normal(shape).astype(np.float32)
    return inputs


@pytest.mark.parametrize("name", list_models())
def test_generated_parallel_code_matches_reference(name, rng):
    model = build_model(name, variant="small")
    inputs = _make_inputs(model, rng)
    reference = execute_model(model, inputs)

    result = ramiel_compile(model, prune=True)
    parallel_out = result.run_parallel(inputs, backend="thread")
    sequential_out = result.run_sequential(inputs)

    assert set(parallel_out) == set(reference)
    for key, ref in reference.items():
        np.testing.assert_allclose(np.asarray(sequential_out[key]), np.asarray(ref),
                                   rtol=1e-3, atol=1e-4, err_msg=f"{name}:{key} (sequential)")
        np.testing.assert_allclose(np.asarray(parallel_out[key]), np.asarray(ref),
                                   rtol=1e-3, atol=1e-4, err_msg=f"{name}:{key} (parallel)")


@pytest.mark.parametrize("name", ["squeezenet", "googlenet"])
def test_process_backend_matches_reference(name, rng):
    model = build_model(name, variant="small")
    inputs = _make_inputs(model, rng)
    reference = execute_model(model, inputs)
    result = ramiel_compile(model)
    parallel_out = result.run_parallel(inputs, backend="process")
    for key, ref in reference.items():
        np.testing.assert_allclose(np.asarray(parallel_out[key]), np.asarray(ref),
                                   rtol=1e-3, atol=1e-4)


def test_cloned_and_pruned_pipeline_still_correct(rng):
    model = build_model("inception_v3", variant="small")
    inputs = _make_inputs(model, rng)
    reference = execute_model(model, inputs)
    result = ramiel_compile(model, prune=True, clone=True)
    parallel_out = result.run_parallel(inputs, backend="thread")
    for key, ref in reference.items():
        np.testing.assert_allclose(np.asarray(parallel_out[key]), np.asarray(ref),
                                   rtol=1e-3, atol=1e-4)


def test_compile_times_are_fast():
    """The paper's headline: Ramiel compiles every model in seconds."""
    for name in ("squeezenet", "yolo_v5", "bert"):
        model = build_model(name, variant="small")
        result = ramiel_compile(model)
        assert result.compile_time_s < 30.0, f"{name} took {result.compile_time_s:.1f}s"
