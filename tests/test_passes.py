"""Tests for the graph-pruning passes (constant propagation, DCE, identities)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir import GraphBuilder, validate_graph
from repro.passes import (
    ConstantFoldingPass,
    DeadCodeEliminationPass,
    IdentityEliminationPass,
    PassManager,
    eliminate_dead_code,
    eliminate_identities,
    fold_constants,
    optimize_model,
    propagate_constants,
)
from repro.runtime import execute_model


def _model_with_constant_chain():
    """y = relu(x) ; c = (2 + 3) * 4 broadcast-added to y via a foldable chain."""
    b = GraphBuilder("const_chain", seed=0)
    x = b.input("x", (1, 4))
    two = b.const(np.asarray(2.0, dtype=np.float32), prefix="two")
    three = b.const(np.asarray(3.0, dtype=np.float32), prefix="three")
    four = b.const(np.asarray(4.0, dtype=np.float32), prefix="four")
    summed = b.add(two, three)
    scaled = b.mul(summed, four)           # foldable to 20
    y = b.relu(x)
    out = b.add(y, scaled)
    b.output(out)
    return b.build()


def _model_with_dead_branch():
    b = GraphBuilder("dead", seed=0)
    x = b.input("x", (1, 4))
    live = b.relu(x)
    dead = b.sigmoid(x)
    dead = b.mul(dead, dead)  # never reaches an output
    b.output(live)
    return b.build()


def _model_with_identities():
    b = GraphBuilder("ident", seed=0)
    x = b.input("x", (1, 4))
    y = b.identity(x)
    y = b.dropout(y, ratio=0.3)
    y = b.relu(y)
    b.output(y)
    return b.build()


class TestConstantFolding:
    def test_folds_constant_chain(self):
        model = _model_with_constant_chain()
        graph = model.graph.copy()
        folded = fold_constants(graph)
        assert folded >= 2
        # The folded value must now be available as an initializer.
        assert any(np.allclose(v, 20.0) for v in graph.initializers.values())

    def test_folding_preserves_semantics(self, rng):
        model = _model_with_constant_chain()
        x = rng.standard_normal((1, 4)).astype(np.float32)
        before = execute_model(model, {"x": x})
        optimized, _ = optimize_model(model)
        after = execute_model(optimized, {"x": x})
        for key in before:
            np.testing.assert_allclose(before[key], after[key], rtol=1e-5)

    def test_does_not_fold_graph_outputs_into_initializers(self):
        b = GraphBuilder("all_const", seed=0)
        c1 = b.const(np.asarray([1.0, 2.0], dtype=np.float32))
        c2 = b.const(np.asarray([3.0, 4.0], dtype=np.float32))
        out = b.add(c1, c2)
        b.output(out)
        model = b.build()
        graph = model.graph.copy()
        fold_constants(graph)
        validate_graph(graph, check_schemas=False)
        assert out in graph.output_names

    def test_size_cap_prevents_blowup(self):
        b = GraphBuilder("big_const", seed=0)
        big = b.const(np.zeros(1000, dtype=np.float32))
        out = b.add(big, big)
        b.output(out)
        model = b.build()
        graph = model.graph.copy()
        assert fold_constants(graph, max_folded_elements=10) == 0


class TestDeadCodeElimination:
    def test_removes_dead_branch(self):
        model = _model_with_dead_branch()
        graph = model.graph.copy()
        removed = eliminate_dead_code(graph)
        assert removed == 2
        assert all(n.op_type != "Sigmoid" for n in graph.nodes)
        validate_graph(graph)

    def test_prunes_unused_initializers(self):
        b = GraphBuilder("unused_w", seed=0)
        x = b.input("x", (1, 4))
        _unused = b.initializer("never_used", np.zeros(3, dtype=np.float32))
        dead = b.linear(x, 4)
        b.output(b.relu(x))
        model = b.build()
        graph = model.graph.copy()
        eliminate_dead_code(graph, prune_initializers=True)
        assert "never_used" not in graph.initializers
        assert all("linear_w" not in k for k in graph.initializers)

    def test_noop_on_fully_live_graph(self, diamond_model):
        graph = diamond_model.graph.copy()
        assert eliminate_dead_code(graph) == 0


class TestIdentityElimination:
    def test_removes_identity_and_dropout(self):
        model = _model_with_identities()
        graph = model.graph.copy()
        removed = eliminate_identities(graph)
        assert removed == 2
        assert all(n.op_type not in ("Identity", "Dropout") for n in graph.nodes)
        validate_graph(graph)

    def test_preserves_semantics(self, rng):
        model = _model_with_identities()
        x = rng.standard_normal((1, 4)).astype(np.float32)
        before = execute_model(model, {"x": x})
        graph = model.graph
        eliminate_identities(graph)
        after = execute_model(model, {"x": x})
        for key in before:
            np.testing.assert_allclose(before[key], after[key])

    def test_keeps_identity_feeding_graph_output(self):
        b = GraphBuilder("ident_out", seed=0)
        x = b.input("x", (1, 4))
        y = b.identity(x)
        b.output(y)
        model = b.build()
        graph = model.graph
        assert eliminate_identities(graph) == 0
        assert len(graph.nodes) == 1


class TestPassManagerAndRecipe:
    def test_fixpoint_iterations(self):
        model = _model_with_constant_chain()
        manager = PassManager([ConstantFoldingPass(), DeadCodeEliminationPass()])
        result = manager.run(model.graph.copy())
        assert result.total_changes > 0
        assert result.iterations >= 2  # one active round + one quiescent round
        assert result.elapsed_s >= 0

    def test_max_iterations_validated(self):
        with pytest.raises(ValueError):
            PassManager([IdentityEliminationPass()], max_iterations=0)

    def test_optimize_model_reports_stats(self):
        model = _model_with_constant_chain()
        optimized, stats = optimize_model(model)
        assert stats["nodes_before"] == model.num_nodes
        assert stats["nodes_after"] == optimized.num_nodes
        assert stats["nodes_removed"] > 0
        # Original model untouched.
        assert model.num_nodes == stats["nodes_before"]

    def test_squeezenet_has_no_pruning_opportunity(self):
        from repro.models import build_model

        model = build_model("squeezenet", variant="small")
        _, stats = optimize_model(model)
        assert stats["nodes_removed"] == 0

    def test_yolo_and_bert_prune(self):
        from repro.models import build_model

        for name in ("yolo_v5", "bert"):
            model = build_model(name, variant="small")
            optimized, stats = optimize_model(model)
            assert stats["nodes_removed"] > 0, name
            validate_graph(optimized.graph)

    def test_shape_materialization(self):
        b = GraphBuilder("shape_chain", seed=0)
        x = b.input("x", (1, 3, 8, 8))
        y = b.relu(x)
        shape = b.shape_of(y)
        idx = b.const(np.asarray([1], dtype=np.int64))
        chan = b.gather(shape, idx, axis=0)
        chan_f = b.cast(chan, to="float32")
        b.output(y)
        model = b.build()
        graph = model.graph.copy()
        changed = propagate_constants(graph)
        assert changed > 0
        eliminate_dead_code(graph)
        assert all(n.op_type not in ("Shape", "Gather", "Cast") for n in graph.nodes)
