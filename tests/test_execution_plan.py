"""Tests for the planned execution engine (:mod:`repro.runtime.plan`).

The plan is differentially tested against :class:`GraphExecutor`, the
reference interpreter: outputs must be *bitwise* equal on every zoo model,
on first (specializing) and subsequent (arena-reusing) runs alike.  The
aliasing tests prove that buffer-arena reuse can never corrupt graph
outputs, shared inputs or initializers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir import GraphBuilder
from repro.models import MODEL_REGISTRY
from repro.pipeline import PipelineConfig, ramiel_compile
from repro.runtime import profile_model
from repro.runtime.executor import GraphExecutor
from repro.runtime.plan import ExecutionPlan, PlanError
from repro.runtime.worker_pool import WarmExecutorPool
from repro.serving.engine import example_inputs
from tests.conftest import build_chain_model, build_diamond_model


# ---------------------------------------------------------------------------
# Differential correctness: plan == interpreter, bitwise, on the whole zoo
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("model_name", sorted(MODEL_REGISTRY))
def test_plan_bitwise_equals_interpreter_on_zoo(model_name):
    model = MODEL_REGISTRY[model_name].build(variant="small")
    feed = example_inputs(model, seed=7)
    reference = GraphExecutor(model).run(feed)
    plan = ExecutionPlan(model)
    # Run 1 specializes (records shapes, adopts buffers), runs 2-3 hit the
    # arena; all three must be bitwise-identical to the interpreter.
    for _ in range(3):
        outputs = plan.run(feed)
        assert set(outputs) == set(reference)
        for name, ref in reference.items():
            np.testing.assert_array_equal(outputs[name], ref)


def test_plan_without_fusion_bitwise_equals_interpreter():
    model = build_diamond_model()
    feed = example_inputs(model, seed=3)
    reference = GraphExecutor(model).run(feed)
    plan = ExecutionPlan(model, fuse=False)
    for _ in range(2):
        outputs = plan.run(feed)
        for name, ref in reference.items():
            np.testing.assert_array_equal(outputs[name], ref)


def test_plan_handles_varying_batch_sizes():
    """Each input signature specializes independently and stays correct."""
    model = build_chain_model()
    plan = ExecutionPlan(model)
    executor = GraphExecutor(model)
    for batch in (1, 3, 1, 3, 2):
        feed = example_inputs(model, batch_size=batch, seed=batch)
        expected = executor.run(feed)
        outputs = plan.run(feed)
        for name, ref in expected.items():
            np.testing.assert_array_equal(outputs[name], ref)


def test_plan_rejects_missing_inputs_and_unknown_outputs():
    model = build_diamond_model()
    plan = ExecutionPlan(model)
    with pytest.raises(PlanError, match="missing graph input"):
        plan.run({})
    feed = example_inputs(model)
    with pytest.raises(PlanError, match="not available"):
        plan.run(feed, outputs=["no_such_value"])


def test_plan_checks_supported_ops_at_build_time():
    b = GraphBuilder("custom", seed=0)
    x = b.input("x", (1, 4))
    out = b.node("TotallyCustomOp", [x])
    b.output(out)
    with pytest.raises(PlanError, match="no handlers"):
        ExecutionPlan(b.build(validate=False, infer=False))


# ---------------------------------------------------------------------------
# Fusion and arena behaviour
# ---------------------------------------------------------------------------
def test_plan_fuses_elementwise_tails():
    model = build_diamond_model()  # conv->relu pairs throughout
    plan = ExecutionPlan(model)
    stats = plan.stats()
    assert stats["fused_nodes"] > 0
    assert stats["steps"] < stats["nodes"]
    unfused = ExecutionPlan(model, fuse=False)
    assert unfused.stats()["fused_nodes"] == 0
    assert unfused.stats()["steps"] == unfused.stats()["nodes"]


def test_arena_reaches_zero_alloc_steady_state():
    """After the specializing run, repeated runs allocate nothing new."""
    model = MODEL_REGISTRY["yolo_v5"].build(variant="small")
    feed = example_inputs(model, seed=0)
    plan = ExecutionPlan(model)
    plan.run(feed)
    plan.run(feed)  # arena is warm after the first reuse pass
    warm = plan.stats()["arena"]["allocations"]
    for _ in range(3):
        plan.run(feed)
    assert plan.stats()["arena"]["allocations"] == warm
    assert plan.stats()["arena"]["reuses"] > 0
    # conv/pool/GEMM nodes must be on the destination-passing path, so the
    # zero-alloc property above covers the heavy ops, not just elementwise
    assert plan.stats()["heavy_steps"] > 0


@pytest.mark.parametrize("model_name", ["squeezenet", "googlenet"])
def test_heavy_zero_alloc_covers_conv_dominated_models(model_name):
    """Warm steady state performs zero arena acquisitions per run on
    conv-dominated models — outputs *and* im2col/pad/GEMM workspaces."""
    model = MODEL_REGISTRY[model_name].build(variant="small")
    feed = example_inputs(model, seed=3)
    plan = ExecutionPlan(model)
    plan.run(feed)
    plan.run(feed)
    warm = plan.stats()["arena"]["allocations"]
    for _ in range(3):
        plan.run(feed)
    stats = plan.stats()
    assert stats["arena"]["allocations"] == warm
    assert stats["heavy_steps"] > 0
    assert stats["arena"]["reuses"] > 0


def test_plan_without_heavy_out_stays_bitwise_identical():
    """The heavy_out=False baseline (PR-3 behaviour) and the
    destination-passing plan agree bitwise with the interpreter."""
    model = MODEL_REGISTRY["squeezenet"].build(variant="small")
    feed = example_inputs(model, seed=11)
    reference = GraphExecutor(model).run(feed)
    baseline = ExecutionPlan(model, heavy_out=False)
    assert baseline.stats()["heavy_steps"] == 0
    for _ in range(3):
        outputs = baseline.run(feed)
        for name, ref in reference.items():
            np.testing.assert_array_equal(outputs[name], ref)


def test_profiler_plan_engine_reports_alloc_accounting():
    model = build_diamond_model()
    feed = example_inputs(model)
    profile = profile_model(model, feed, num_runs=3, warmup=2, engine="plan")
    assert profile.engine == "plan"
    assert profile.arena_stats is not None
    assert profile.arena_stats["allocations"] > 0
    # after two warmup runs every signature has specialized: the measured
    # runs must not have acquired any new arena buffers
    assert profile.arena_allocs_during_runs == 0
    via_interp = profile_model(model, feed, num_runs=1, warmup=0)
    assert via_interp.engine == "interpreter"
    assert via_interp.arena_stats is None and via_interp.arena_allocs_during_runs is None


def test_trace_hook_reports_every_node_when_unfused():
    model = build_diamond_model()
    plan = ExecutionPlan(model, fuse=False)
    seen = []
    plan.run(example_inputs(model), trace_hook=lambda node, s: seen.append(node.name))
    assert sorted(seen) == sorted(n.name for n in model.graph.nodes)


def test_profiler_plan_engine_matches_interpreter_node_set():
    model = build_diamond_model()
    feed = example_inputs(model)
    via_plan = profile_model(model, feed, num_runs=2, warmup=1, engine="plan")
    via_interp = profile_model(model, feed, num_runs=2, warmup=1)
    assert set(via_plan.ops) == set(via_interp.ops)
    assert all(op.samples_s for op in via_plan.ops.values())
    with pytest.raises(ValueError, match="unknown profiling engine"):
        profile_model(model, feed, engine="turbo")


# ---------------------------------------------------------------------------
# Aliasing safety: arena reuse must never corrupt user-visible arrays
# ---------------------------------------------------------------------------
def test_inputs_and_initializers_survive_repeated_runs():
    model = build_diamond_model()
    feed = example_inputs(model, seed=5)
    snapshots = {name: array.copy() for name, array in feed.items()}
    weights = {name: array.copy()
               for name, array in model.graph.initializers.items()}
    plan = ExecutionPlan(model)
    for _ in range(3):
        plan.run(feed)
    for name, snap in snapshots.items():
        np.testing.assert_array_equal(feed[name], snap)
    for name, snap in weights.items():
        np.testing.assert_array_equal(model.graph.initializers[name], snap)


def test_outputs_of_successive_runs_do_not_share_memory():
    model = build_diamond_model()
    plan = ExecutionPlan(model)
    first = plan.run(example_inputs(model, seed=1))
    first_copies = {name: array.copy() for name, array in first.items()}
    second = plan.run(example_inputs(model, seed=2))
    for name in first:
        assert not np.shares_memory(first[name], second[name])
        # run 2 must not have clobbered run 1's returned buffers
        np.testing.assert_array_equal(first[name], first_copies[name])


def test_value_feeding_multiple_consumers_is_not_corrupted():
    """A shared intermediate read by two branches survives in-place tails."""
    b = GraphBuilder("shared", seed=0)
    x = b.input("x", (1, 8))
    y = b.node("Relu", [x])          # shared by both branches and an output
    left = b.node("Add", [y, y])
    right = b.node("Mul", [y, y])
    z = b.node("Sub", [left, right])
    b.output(z)
    b.output(y)
    model = b.build()
    feed = {"x": np.random.default_rng(0).standard_normal((1, 8)).astype(np.float32)}
    reference = GraphExecutor(model).run(feed)
    plan = ExecutionPlan(model)
    for _ in range(3):
        outputs = plan.run(feed)
        for name, ref in reference.items():
            np.testing.assert_array_equal(outputs[name], ref)


def test_view_chains_do_not_recycle_live_storage():
    """Reshape/transpose views keep their base storage alive in the arena."""
    b = GraphBuilder("views", seed=0)
    x = b.input("x", (2, 3, 4))
    doubled = b.node("Add", [x, x])              # arena-eligible producer
    flat = b.node("Reshape", [doubled], shape=[2, 12])   # view of it
    bumped = b.node("Add", [flat, flat])
    b.output(bumped)
    b.output(flat)
    model = b.build()
    feed = {"x": np.arange(24, dtype=np.float32).reshape(2, 3, 4)}
    reference = GraphExecutor(model).run(feed)
    plan = ExecutionPlan(model)
    for _ in range(4):
        outputs = plan.run(feed)
        for name, ref in reference.items():
            np.testing.assert_array_equal(outputs[name], ref)


def test_constant_nodes_never_head_fused_chains():
    """Regression: fusing an in-place tail onto a Constant head would write
    through the binder's cached array, corrupting every later run."""
    b = GraphBuilder("const_chain", seed=0)
    x = b.input("x", (1, 4))
    const = b.node("Constant", [], value=np.full((1, 4), 2.0, dtype=np.float32))
    negated = b.node("Neg", [const])      # single consumer of the constant
    out = b.node("Add", [x, negated])
    b.output(out)
    model = b.build(validate=False, infer=False)
    feed = {"x": np.zeros((1, 4), dtype=np.float32)}
    reference = GraphExecutor(model).run(feed)
    plan = ExecutionPlan(model)
    for _ in range(4):  # the corruption only surfaced from run 3 onward
        outputs = plan.run(feed)
        for name, ref in reference.items():
            np.testing.assert_array_equal(outputs[name], ref)


def test_alias_group_storage_actually_recycles():
    """A buffer whose only escape is a dead view must return to the arena."""
    b = GraphBuilder("alias_recycle", seed=0)
    x = b.input("x", (1, 4096))
    doubled = b.node("Add", [x, x])                 # arena-eligible, >4 KB
    flat = b.node("Reshape", [doubled], shape=[4096])  # view; last use of both
    total = b.node("ReduceSum", [flat], keepdims=0)
    anchor = b.node("Sub", [x, x])                  # keeps a second slot live
    out = b.node("Add", [total, b.node("ReduceSum", [anchor], keepdims=0)])
    b.output(out)
    model = b.build()
    feed = {"x": np.ones((1, 4096), dtype=np.float32)}
    reference = GraphExecutor(model).run(feed)
    plan = ExecutionPlan(model)
    for _ in range(3):
        outputs = plan.run(feed)
        for name, ref in reference.items():
            np.testing.assert_array_equal(outputs[name], ref)
    stats = plan.stats()["arena"]
    assert stats["reuses"] > 0, (
        "the Add buffer dies with its Reshape view and must be recycled; "
        f"arena stats: {stats}")


def test_fused_tail_on_scalar_chain_value_stays_out_of_place():
    """Regression: a keepdims=0 reduction head hands its tail a numpy
    scalar, which reports shape/dtype but cannot be an ``out=`` target."""
    b = GraphBuilder("scalar_chain", seed=0)
    x = b.input("x", (1, 8))
    first = b.node("ReduceSum", [x], keepdims=0)   # numpy scalar at runtime
    second = b.node("ReduceMax", [x], keepdims=0)
    shifted = b.node("Add", [second, first])       # fusable tail on the scalar
    b.output(shifted)
    model = b.build()
    feed = {"x": np.arange(8, dtype=np.float32).reshape(1, 8)}
    reference = GraphExecutor(model).run(feed)
    plan = ExecutionPlan(model)
    for _ in range(3):  # run 2+ would have hit the in-place TypeError
        outputs = plan.run(feed)
        for name, ref in reference.items():
            np.testing.assert_array_equal(outputs[name], ref)


def test_requested_intermediate_survives_intra_run_slot_reuse():
    """Regression: a requested intermediate whose arena buffer dies mid-run
    must not be clobbered by a later step acquiring the same slot."""
    b = GraphBuilder("pin_intermediate", seed=0)
    x = b.input("x", (1, 4096))
    a = b.node("Add", [x, x])        # arena-eligible, >4 KB
    r = b.node("Relu", [a])          # last consumer of a -> slot would free
    s = b.node("Sub", [r, x])        # same (shape, dtype) slot: would reuse a
    out = b.node("Mul", [s, s])
    b.output(out)
    model = b.build()
    feed = {"x": np.random.default_rng(2).standard_normal((1, 4096)).astype(np.float32)}
    expected = GraphExecutor(model).run(feed, outputs=[a])[a]
    plan = ExecutionPlan(model, fuse=False)
    plan.run(feed)
    plan.run(feed)  # warm: the arena slot is now shared
    got = plan.run(feed, outputs=[a])[a]
    np.testing.assert_array_equal(got, expected)


def test_requested_intermediates_are_copied_out_of_the_arena():
    """Explicitly requested arena-backed values must survive the next run."""
    model = build_chain_model()
    plan = ExecutionPlan(model, fuse=False)  # keep every intermediate addressable
    inner = model.graph.nodes[1].outputs[0]
    feed = example_inputs(model, seed=0)
    expected = GraphExecutor(model).run(feed, outputs=[inner])[inner]
    got = plan.run(feed, outputs=[inner])[inner]
    snapshot = got.copy()
    plan.run(example_inputs(model, seed=9))
    np.testing.assert_array_equal(got, snapshot)
    np.testing.assert_array_equal(got, expected)


# ---------------------------------------------------------------------------
# Pipeline / worker-pool integration
# ---------------------------------------------------------------------------
def test_ramiel_compile_carries_an_execution_plan():
    model = build_diamond_model()
    result = ramiel_compile(model)
    assert result.execution_plan is not None
    assert result.plan() is result.execution_plan  # cached, not rebuilt
    assert "plan" in result.stage_times_s
    feed = example_inputs(model, seed=4)
    np.testing.assert_array_equal(
        list(result.session().run(feed).values())[0],
        list(GraphExecutor(result.optimized_model).run(feed).values())[0])
    # the pre-session entry point still works, but warns
    with pytest.deprecated_call(match="session"):
        deprecated = result.run_planned(feed)
    np.testing.assert_array_equal(
        list(deprecated.values())[0],
        list(GraphExecutor(result.optimized_model).run(feed).values())[0])


def test_pipeline_build_plan_can_be_disabled_then_built_lazily():
    model = build_diamond_model()
    result = ramiel_compile(model, config=PipelineConfig(build_plan=False,
                                                         generate_code=False))
    assert result.execution_plan is None
    assert result.plan() is not None  # lazy build on demand


def test_warm_executor_pool_runs_plans():
    model = build_diamond_model()
    feed = example_inputs(model, seed=6)
    reference = GraphExecutor(model).run(feed)
    plan = ExecutionPlan(model)
    with WarmExecutorPool(plan, model.graph.initializers) as pool:
        assert pool.num_clusters == 1
        for _ in range(2):
            outputs = pool.run(feed, timeout=60.0)
            for name, ref in reference.items():
                np.testing.assert_array_equal(outputs[name], ref)
