"""Tests for the GraphBuilder, shape inference, validation and serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir import (
    DType,
    GraphBuilder,
    ValidationError,
    infer_shapes,
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
    validate_graph,
    validate_model,
)
from repro.ir.model import Graph
from repro.ir.node import OpNode
from repro.ir.opset import OpKind, get_schema, has_schema, ops_of_kind, registered_ops
from repro.ir.tensor import TensorInfo

from tests.conftest import build_diamond_model


# ---------------------------------------------------------------------------
# opset registry
# ---------------------------------------------------------------------------
class TestOpset:
    def test_core_ops_registered(self):
        for op in ("Conv", "MatMul", "Relu", "Concat", "Softmax", "Reshape",
                   "BatchNormalization", "Gather", "Slice"):
            assert has_schema(op)

    def test_schema_arity(self):
        conv = get_schema("Conv")
        assert conv.accepts_arity(2) and conv.accepts_arity(3)
        assert not conv.accepts_arity(1)
        concat = get_schema("Concat")
        assert concat.accepts_arity(7)  # unbounded max

    def test_kind_queries(self):
        assert "Conv" in ops_of_kind(OpKind.CONV)
        assert "Relu" in ops_of_kind(OpKind.ACTIVATION)
        assert len(registered_ops()) > 60

    def test_unknown_schema_raises(self):
        with pytest.raises(KeyError):
            get_schema("TotallyNotAnOp")


# ---------------------------------------------------------------------------
# builder
# ---------------------------------------------------------------------------
class TestGraphBuilder:
    def test_builds_valid_model(self):
        model = build_diamond_model()
        validate_model(model)
        assert model.num_nodes > 5

    def test_conv_shape_tracking(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 3, 32, 32))
        y = b.conv(x, 8, kernel=3, strides=2, pads=1)
        assert b.shapes[y] == (1, 8, 16, 16)

    def test_weight_determinism(self):
        m1 = build_diamond_model()
        m2 = build_diamond_model()
        for name, arr in m1.graph.initializers.items():
            np.testing.assert_array_equal(arr, m2.graph.initializers[name])

    def test_split_and_slice_shapes(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 8, 4, 4))
        parts = b.split(x, 2, axis=1)
        assert len(parts) == 2
        assert b.shapes[parts[0]] == (1, 4, 4, 4)
        sl = b.slice(x, starts=[0], ends=[2], axes=[1])
        assert b.shapes[sl] == (1, 2, 4, 4)

    def test_output_records_shape(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4))
        y = b.relu(x)
        b.output(y)
        model = b.build()
        assert model.graph.outputs[0].shape == (1, 4)

    def test_fresh_names_unique(self):
        b = GraphBuilder("t", seed=0)
        names = {b.fresh("conv") for _ in range(50)}
        assert len(names) == 50


# ---------------------------------------------------------------------------
# shape inference
# ---------------------------------------------------------------------------
class TestShapeInference:
    def test_diamond_all_static(self, diamond_model):
        graph = diamond_model.graph
        infer_shapes(graph, strict=True)
        for node in graph.nodes:
            for out in node.outputs:
                if out:
                    info = graph.value_info.get(out)
                    assert info is not None and info.shape is not None, out

    def test_conv_inference(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 3, 14, 14))
        y = b.conv(x, 6, kernel=5, strides=1, pads=2)
        b.output(y)
        graph = b.build().graph
        assert graph.value_info[y].shape == (1, 6, 14, 14)

    def test_matmul_mismatch_detected(self):
        g = Graph(name="bad")
        g.inputs.append(TensorInfo("a", DType.FLOAT32, (2, 3)))
        g.inputs.append(TensorInfo("b", DType.FLOAT32, (4, 5)))
        g.add_node(OpNode("MatMul", ["a", "b"], ["c"], name="mm"))
        g.outputs.append(TensorInfo("c", DType.FLOAT32, None))
        from repro.ir.shape_inference import ShapeInferenceError

        with pytest.raises(ShapeInferenceError):
            infer_shapes(g, strict=True)

    def test_reduce_and_transpose(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (2, 3, 5))
        red = b.reduce_mean(x, axes=[-1], keepdims=True)
        tr = b.transpose(x, [2, 0, 1])
        b.output(red)
        b.output(tr)
        graph = b.build().graph
        assert graph.value_info[red].shape == (2, 3, 1)
        assert graph.value_info[tr].shape == (5, 2, 3)

    def test_gather_embedding_shape(self):
        b = GraphBuilder("t", seed=0)
        ids = b.input("ids", (1, 7), dtype=DType.INT64)
        table = b.initializer("table", np.zeros((10, 4), dtype=np.float32))
        emb = b.gather(table, ids, axis=0)
        b.output(emb)
        graph = b.build().graph
        assert graph.value_info[emb].shape == (1, 7, 4)


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------
class TestValidation:
    def test_detects_dangling_input(self):
        g = Graph(name="bad")
        g.add_node(OpNode("Relu", ["ghost"], ["y"], name="r"))
        g.outputs.append(TensorInfo("y"))
        with pytest.raises(ValidationError, match="undefined value"):
            validate_graph(g)

    def test_detects_duplicate_producer(self):
        g = Graph(name="bad")
        g.inputs.append(TensorInfo("x"))
        g.add_node(OpNode("Relu", ["x"], ["y"], name="a"))
        g.add_node(OpNode("Sigmoid", ["x"], ["y"], name="b"))
        g.outputs.append(TensorInfo("y"))
        with pytest.raises(ValidationError, match="produced by both"):
            validate_graph(g)

    def test_detects_cycle(self):
        g = Graph(name="bad")
        g.add_node(OpNode("Relu", ["b"], ["a"], name="n1"))
        g.add_node(OpNode("Relu", ["a"], ["b"], name="n2"))
        g.outputs.append(TensorInfo("a"))
        with pytest.raises(ValidationError, match="cycle"):
            validate_graph(g)

    def test_detects_missing_output(self):
        g = Graph(name="bad")
        g.inputs.append(TensorInfo("x"))
        g.add_node(OpNode("Relu", ["x"], ["y"], name="r"))
        g.outputs.append(TensorInfo("never"))
        with pytest.raises(ValidationError, match="never produced"):
            validate_graph(g)

    def test_detects_bad_arity(self):
        g = Graph(name="bad")
        g.inputs.append(TensorInfo("x"))
        g.add_node(OpNode("Conv", ["x"], ["y"], name="c"))
        g.outputs.append(TensorInfo("y"))
        with pytest.raises(ValidationError, match="inputs"):
            validate_graph(g)

    def test_valid_model_passes(self, diamond_model):
        validate_model(diamond_model)


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------
class TestSerialization:
    def test_dict_roundtrip_preserves_structure(self, diamond_model):
        restored = model_from_dict(model_to_dict(diamond_model))
        assert restored.num_nodes == diamond_model.num_nodes
        assert restored.graph.output_names == diamond_model.graph.output_names
        for name, arr in diamond_model.graph.initializers.items():
            np.testing.assert_allclose(restored.graph.initializers[name], arr)

    def test_file_roundtrip_gz(self, tmp_path, diamond_model):
        path = save_model(diamond_model, tmp_path / "m.json", compress=True)
        assert path.suffix == ".gz"
        restored = load_model(path)
        assert restored.num_nodes == diamond_model.num_nodes

    def test_file_roundtrip_plain(self, tmp_path, diamond_model):
        path = save_model(diamond_model, tmp_path / "m.json", compress=False)
        restored = load_model(path)
        assert restored.name == diamond_model.name

    def test_rejects_foreign_payload(self):
        with pytest.raises(ValueError):
            model_from_dict({"format": "other"})

    def test_roundtrip_execution_equivalence(self, diamond_model, tmp_path, rng):
        from repro.runtime import execute_model

        path = save_model(diamond_model, tmp_path / "m.json")
        restored = load_model(path)
        x = rng.standard_normal((1, 3, 16, 16)).astype(np.float32)
        out_a = execute_model(diamond_model, {"x": x})
        out_b = execute_model(restored, {"x": x})
        for key in out_a:
            np.testing.assert_allclose(out_a[key], out_b[key], rtol=1e-5, atol=1e-6)
