"""Tests for the graph executor, profiler and message channels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir import GraphBuilder
from repro.runtime import ExecutionError, GraphExecutor, execute_model, profile_model
from repro.runtime.channels import SerialChannel, make_serial_channels, make_thread_channels
from repro.runtime.executor import supported_ops


class TestExecutor:
    def test_diamond_output_shape(self, diamond_model, rng):
        x = rng.standard_normal((1, 3, 16, 16)).astype(np.float32)
        out = execute_model(diamond_model, {"x": x})
        (probs,) = out.values()
        assert probs.shape == (1, 10)
        np.testing.assert_allclose(probs.sum(), 1.0, rtol=1e-5)

    def test_missing_input_raises(self, diamond_model):
        with pytest.raises(ExecutionError, match="missing graph input"):
            execute_model(diamond_model, {})

    def test_requested_intermediate_output(self, diamond_model, rng):
        x = rng.standard_normal((1, 3, 16, 16)).astype(np.float32)
        graph = diamond_model.graph
        some_value = graph.nodes[0].primary_output
        out = GraphExecutor(diamond_model).run({"x": x}, outputs=[some_value])
        assert some_value in out

    def test_unknown_output_raises(self, diamond_model, rng):
        x = rng.standard_normal((1, 3, 16, 16)).astype(np.float32)
        with pytest.raises(ExecutionError):
            GraphExecutor(diamond_model).run({"x": x}, outputs=["nonexistent"])

    def test_unsupported_op_detected_at_construction(self):
        b = GraphBuilder("bad", seed=0)
        x = b.input("x", (1, 4))
        out = b.node("Einsum", [x], equation="ij->ji")  # registered but also supported
        b.output(out)
        model = b.build()
        # Now inject an unsupported custom op directly.
        model.graph.nodes[0].op_type = "NotARealOp"
        with pytest.raises(ExecutionError, match="no handlers"):
            GraphExecutor(model)

    def test_average_pool_defaults_to_onnx_count_include_pad(self, rng):
        """Regression: AveragePool with no count_include_pad attribute must
        use the ONNX default (0 — padding excluded from the divisor)."""
        import repro.runtime.functional as F

        x = rng.standard_normal((1, 2, 5, 5)).astype(np.float32)
        b = GraphBuilder("avgpool_default", seed=0)
        xin = b.input("x", (1, 2, 5, 5))
        out = b.node("AveragePool", [xin], kernel_shape=[3, 3],
                     strides=[1, 1], pads=[1, 1, 1, 1])
        b.output(out)
        (got,) = execute_model(b.build(), {"x": x}).values()
        expected = F.avg_pool2d(x, (3, 3), (1, 1), pads=(1, 1, 1, 1),
                                count_include_pad=False)
        np.testing.assert_array_equal(got, expected)
        # corner windows only see 4 real elements; with the old default the
        # divisor was 9, so the two conventions genuinely differ here
        included = F.avg_pool2d(x, (3, 3), (1, 1), pads=(1, 1, 1, 1),
                                count_include_pad=True)
        assert not np.allclose(got, included)
        np.testing.assert_allclose(got[0, :, 0, 0], x[0, :, :2, :2].mean(axis=(1, 2)),
                                   rtol=1e-6)

    def test_average_pool_attribute_still_honoured(self, rng):
        """count_include_pad=1 on the node keeps the include-pad divisor."""
        import repro.runtime.functional as F

        x = rng.standard_normal((1, 1, 4, 4)).astype(np.float32)
        b = GraphBuilder("avgpool_incl", seed=0)
        xin = b.input("x", (1, 1, 4, 4))
        out = b.node("AveragePool", [xin], kernel_shape=[2, 2],
                     strides=[2, 2], pads=[1, 1, 1, 1], count_include_pad=1)
        b.output(out)
        (got,) = execute_model(b.build(), {"x": x}).values()
        expected = F.avg_pool2d(x, (2, 2), (2, 2), pads=(1, 1, 1, 1),
                                count_include_pad=True)
        np.testing.assert_array_equal(got, expected)

    def test_trace_hook_called_per_node(self, diamond_model, rng):
        x = rng.standard_normal((1, 3, 16, 16)).astype(np.float32)
        seen = []
        GraphExecutor(diamond_model).run({"x": x}, trace_hook=lambda node, s: seen.append(node.name))
        assert len(seen) == diamond_model.num_nodes

    def test_executor_covers_all_registered_lowerings(self):
        from repro.codegen.op_lowering import supported_ops as codegen_ops

        # Every op we can generate code for must also be executable (the
        # tests compare generated code against the interpreter).
        missing = set(codegen_ops()) - set(supported_ops())
        assert not missing, f"codegen supports ops the executor cannot run: {missing}"

    def test_node_failure_reports_node_name(self):
        b = GraphBuilder("bad", seed=0)
        x = b.input("x", (1, 4))
        y = b.node("Reshape", [x], shape=[7, 7])  # impossible reshape
        b.output(y)
        model = b.build(validate=False, infer=False)
        with pytest.raises(ExecutionError, match="Reshape"):
            execute_model(model, {"x": np.zeros((1, 4), dtype=np.float32)})


class TestProfiler:
    def test_profile_model_collects_all_nodes(self, diamond_model, rng):
        x = rng.standard_normal((1, 3, 16, 16)).astype(np.float32)
        profile = profile_model(diamond_model, {"x": x}, num_runs=2, warmup=1)
        assert len(profile.ops) == diamond_model.num_nodes
        assert profile.total_compute_s() > 0
        assert profile.num_runs == 2

    def test_cost_provider_scaling(self, diamond_model, rng):
        x = rng.standard_normal((1, 3, 16, 16)).astype(np.float32)
        profile = profile_model(diamond_model, {"x": x}, num_runs=1)
        provider = profile.cost_provider(scale=1e6)
        assert set(provider) == set(profile.ops)
        assert all(v >= 0 for v in provider.values())

    def test_slowest_and_by_op_type(self, diamond_model, rng):
        x = rng.standard_normal((1, 3, 16, 16)).astype(np.float32)
        profile = profile_model(diamond_model, {"x": x}, num_runs=1)
        slowest = profile.slowest(3)
        assert len(slowest) == 3
        assert slowest[0].mean_s >= slowest[-1].mean_s
        assert "Conv" in profile.by_op_type()


class TestChannels:
    def test_serial_channel_fifo(self):
        chan = SerialChannel("c")
        chan.put(1)
        chan.put(2)
        assert chan.get() == 1
        assert chan.get() == 2
        assert chan.empty()

    def test_serial_channel_empty_get_raises(self):
        with pytest.raises(LookupError):
            SerialChannel("c").get()

    def test_factories(self):
        names = ["a", "b"]
        serial = make_serial_channels(names)
        threads = make_thread_channels(names)
        assert set(serial) == set(threads) == set(names)
        threads["a"].put(42)
        assert threads["a"].get() == 42
