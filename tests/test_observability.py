"""Tests for the unified observability layer: tracer, metrics, integration.

Covers the Chrome trace-event export schema (``ph``/``ts``/``dur``/
``pid``/``tid`` fields, well-formed same-thread nesting, matched async
begin/end pairs), the Prometheus text exposition, ring-buffer bounding,
the bounded serving-metrics reservoir, the one-registry unification of
serving + arena + binding counters, the deprecation path of
``render_serving_report``, and — the correctness gate — that a
tracing-enabled plan run stays bitwise-identical to the untraced run on
zoo models.
"""

from __future__ import annotations

import json
import math
import re
import threading

import numpy as np
import pytest

from repro.analysis.reports import render_serving_report
from repro.models import build_model
from repro.observability import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
)
from repro.runtime.plan import ExecutionPlan
from repro.runtime.profiler import profile_model, profile_plan_steps
from repro.runtime.session import create_session
from repro.serving import EngineConfig, InferenceEngine, example_inputs
from repro.serving.metrics import ServingMetrics


def small_model(name: str = "squeezenet"):
    return build_model(name, variant="small")


# ---------------------------------------------------------------------------
# Tracer core
# ---------------------------------------------------------------------------
class TestTracer:
    def test_span_context_manager_records(self):
        tracer = Tracer()
        with tracer.span("outer", cat="test", args={"k": "v"}):
            pass
        events = tracer.events()
        assert len(events) == 1
        event = events[0]
        assert event.name == "outer"
        assert event.cat == "test"
        assert event.args == {"k": "v"}
        assert event.dur_ns >= 0
        assert event.tid == threading.get_ident()

    def test_begin_end_stack_nests_per_thread(self):
        tracer = Tracer()
        tracer.begin("outer", cat="t")
        tracer.begin("inner", cat="t")
        tracer.end()
        tracer.end()
        events = tracer.events()
        # inner closes first, so it is recorded first
        assert [e.name for e in events] == ["inner", "outer"]
        inner, outer = events
        assert outer.start_ns <= inner.start_ns
        assert inner.end_ns <= outer.end_ns

    def test_end_without_begin_raises(self):
        with pytest.raises(RuntimeError):
            Tracer().end()

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("skipped"):
            pass
        assert tracer.events() == []
        tracer.enable()
        with tracer.span("kept"):
            pass
        assert [e.name for e in tracer.events()] == ["kept"]

    def test_ring_buffer_bounds_memory_and_counts_drops(self):
        tracer = Tracer(capacity=8)
        for index in range(20):
            tracer.emit(f"e{index}", "t", 0, 1)
        stats = tracer.stats()
        assert stats["recorded"] == 20
        assert stats["buffered"] == 8
        assert stats["dropped"] == 12
        # the buffer retains the *newest* events, oldest first
        assert [e.name for e in tracer.events()] == \
            [f"e{i}" for i in range(12, 20)]

    def test_clear_resets_buffer_and_counters(self):
        tracer = Tracer(capacity=4)
        for index in range(6):
            tracer.emit(f"e{index}", "t", 0, 1)
        tracer.clear()
        stats = tracer.stats()
        assert stats == {"recorded": 0, "buffered": 0, "dropped": 0,
                         "capacity": 4, "enabled": True}
        assert tracer.events() == []

    def test_async_ids_are_unique_across_threads(self):
        tracer = Tracer()
        ids = []
        lock = threading.Lock()

        def grab():
            for _ in range(50):
                value = tracer.next_async_id()
                with lock:
                    ids.append(value)

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(ids) == len(set(ids)) == 200


# ---------------------------------------------------------------------------
# Chrome trace-event export schema
# ---------------------------------------------------------------------------
class TestChromeTraceSchema:
    def test_complete_events_carry_required_fields(self):
        tracer = Tracer()
        with tracer.span("outer", cat="c"):
            with tracer.span("inner", cat="c"):
                pass
        payload = tracer.chrome_trace(process_name="proc")
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert {m["name"] for m in metas} == {"process_name", "thread_name"}
        process_meta = next(m for m in metas if m["name"] == "process_name")
        assert process_meta["args"]["name"] == "proc"
        assert len(spans) == 2
        for span in spans:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(span)
            assert isinstance(span["ts"], float)
            assert span["dur"] >= 0
            assert span["ts"] >= 0  # relative to the tracer epoch

    def test_same_thread_spans_nest_well_formed(self):
        """On one thread track, any two X spans either nest or are disjoint."""
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("outer", cat="c"):
                with tracer.span("inner", cat="c"):
                    pass
        spans = [e for e in tracer.chrome_trace()["traceEvents"]
                 if e["ph"] == "X"]
        for a in spans:
            for b in spans:
                if a is b or a["tid"] != b["tid"]:
                    continue
                a0, a1 = a["ts"], a["ts"] + a["dur"]
                b0, b1 = b["ts"], b["ts"] + b["dur"]
                nested = (a0 >= b0 and a1 <= b1) or (b0 >= a0 and b1 <= a1)
                disjoint = a1 <= b0 or b1 <= a0
                assert nested or disjoint, (a, b)

    def test_async_spans_export_matched_begin_end_pairs(self):
        tracer = Tracer()
        id_a = tracer.next_async_id()
        id_b = tracer.next_async_id()
        tracer.emit_async("request", "request", id_a, 1000, 5000)
        tracer.emit_async("request", "request", id_b, 2000, 3000)
        events = tracer.chrome_trace()["traceEvents"]
        begins = [e for e in events if e["ph"] == "b"]
        ends = [e for e in events if e["ph"] == "e"]
        assert len(begins) == len(ends) == 2
        begin_keys = sorted((e["cat"], e["id"]) for e in begins)
        end_keys = sorted((e["cat"], e["id"]) for e in ends)
        assert begin_keys == end_keys
        for begin in begins:
            end = next(e for e in ends if e["id"] == begin["id"])
            assert end["ts"] >= begin["ts"]

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s", cat="c"):
            pass
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(path, process_name="unit")
        payload = json.loads(path.read_text())
        assert isinstance(payload["traceEvents"], list)
        assert any(e["ph"] == "X" for e in payload["traceEvents"])


# ---------------------------------------------------------------------------
# Metrics instruments + registry
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_counter_monotonic_and_reset(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)
        counter.reset()
        assert counter.value == 0.0

    def test_gauge_set_inc_dec(self):
        gauge = Gauge("g")
        assert gauge.value is None
        gauge.inc(2)
        gauge.dec(0.5)
        assert gauge.value == 1.5
        gauge.set(None)
        assert gauge.value is None

    def test_histogram_percentiles_stay_in_observed_range(self):
        histogram = Histogram("h", buckets=[0.01, 0.1, 1.0])
        values = [0.005, 0.02, 0.05, 0.2, 0.7, 2.0]
        for value in values:
            histogram.observe(value)
        assert histogram.count == len(values)
        assert histogram.sum == pytest.approx(sum(values))
        for q in (0, 50, 95, 99, 100):
            estimate = histogram.percentile(q)
            assert min(values) <= estimate <= max(values)
        assert histogram.percentile(100) == max(values)
        bounds = [bound for bound, _ in histogram.cumulative_buckets()]
        assert math.isinf(bounds[-1])
        counts = [count for _, count in histogram.cumulative_buckets()]
        assert counts == sorted(counts)  # cumulative, never decreasing
        assert counts[-1] == len(values)

    def test_registry_get_or_create_and_type_conflict(self):
        registry = MetricsRegistry()
        a = registry.counter("requests_total", labels={"model": "m"})
        b = registry.counter("requests_total", labels={"model": "m"})
        assert a is b
        other = registry.counter("requests_total", labels={"model": "n"})
        assert other is not a
        with pytest.raises(ValueError):
            registry.gauge("requests_total")
        assert len(registry.series("requests_total")) == 2

    def test_collectors_refresh_before_snapshot(self):
        registry = MetricsRegistry()
        source = {"value": 1.0}

        def collect(reg):
            reg.gauge("pulled").set(source["value"])

        registry.register_collector(collect)
        assert registry.snapshot()["pulled"]["value"] == 1.0
        source["value"] = 7.0
        assert registry.snapshot()["pulled"]["value"] == 7.0
        registry.unregister_collector(collect)
        source["value"] = 9.0
        assert registry.snapshot()["pulled"]["value"] == 7.0

    def test_prometheus_exposition_parses(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", help="total requests").inc(3)
        registry.gauge("depth", labels={"queue": "a"}).set(2)
        registry.gauge("never_set")  # unset gauges must be omitted
        histogram = registry.histogram("latency_seconds",
                                       buckets=[0.1, 1.0])
        histogram.observe(0.05)
        histogram.observe(0.5)
        text = registry.render_prometheus()
        sample_re = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
            r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
            r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
            r' [^ ]+$')
        seen_types = {}
        for line in text.strip().splitlines():
            if line.startswith("# TYPE"):
                _, _, name, metric_type = line.split()
                seen_types[name] = metric_type
            elif line.startswith("#"):
                assert line.startswith("# HELP")
            else:
                assert sample_re.match(line), line
        assert seen_types == {"requests_total": "counter", "depth": "gauge",
                              "never_set": "gauge",
                              "latency_seconds": "histogram"}
        assert "requests_total 3\n" in text
        assert 'depth{queue="a"} 2' in text
        # the unset gauge gets a TYPE line but no sample
        assert re.search(r"^never_set ", text, re.M) is None
        assert 'latency_seconds_bucket{le="+Inf"} 2' in text
        assert "latency_seconds_count 2" in text

    def test_histogram_bucket_counts_are_cumulative_in_exposition(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=[1.0, 2.0])
        for value in (0.5, 1.5, 3.0):
            histogram.observe(value)
        text = registry.render_prometheus()
        buckets = dict(re.findall(r'h_bucket\{le="([^"]+)"\} (\d+)', text))
        assert buckets == {"1.0": "1", "2.0": "2", "+Inf": "3"}


# ---------------------------------------------------------------------------
# Bounded serving metrics (reservoir)
# ---------------------------------------------------------------------------
class TestBoundedServingMetrics:
    def test_reservoir_bounds_retained_samples(self):
        metrics = ServingMetrics(sample_capacity=64)
        for index in range(1000):
            metrics.record_completed((index + 1) / 1000.0)
        snapshot = metrics.snapshot()
        assert snapshot["completed"] == 1000
        assert len(metrics._latency_reservoir.samples) == 64
        # mean and max are exact (running aggregates), not reservoir-based
        assert snapshot["latency_ms"]["mean"] == pytest.approx(500.5)
        assert snapshot["latency_ms"]["max"] == pytest.approx(1000.0)
        # the reservoir percentiles are unbiased estimates: with 64 uniform
        # samples of [1, 1000] ms, p50 lands well inside the range
        assert 0 < snapshot["latency_ms"]["p50"] < 1000.0
        assert snapshot["latency_ms"]["p50"] <= snapshot["latency_ms"]["p95"]
        assert snapshot["latency_ms"]["p95"] <= snapshot["latency_ms"]["p99"]

    def test_small_windows_are_exact(self):
        metrics = ServingMetrics(sample_capacity=128)
        for latency_ms in (10.0, 20.0, 30.0, 40.0):
            metrics.record_completed(latency_ms / 1e3)
        snapshot = metrics.snapshot()
        # interpolated median of [10, 20, 30, 40]
        assert snapshot["latency_ms"]["p50"] == pytest.approx(25.0)
        assert snapshot["latency_ms"]["max"] == pytest.approx(40.0)

    def test_reset_clears_reservoir_and_registry_mirror(self):
        registry = MetricsRegistry()
        metrics = ServingMetrics(registry=registry)
        for _ in range(3):
            metrics.record_submitted()
        metrics.record_completed(0.01)
        assert registry.get_value(
            "serving_requests_submitted_total", default=0) == 3
        metrics.reset()
        assert metrics.snapshot()["submitted"] == 0
        assert registry.get_value(
            "serving_requests_submitted_total", default=0) == 0
        assert registry.get_value(
            "serving_request_latency_seconds", default=0) == 0

    def test_bind_registry_rejects_second_registry(self):
        metrics = ServingMetrics(registry=MetricsRegistry())
        with pytest.raises(ValueError):
            metrics.bind_registry(MetricsRegistry())


# ---------------------------------------------------------------------------
# Traced execution stays bitwise-identical (the correctness gate)
# ---------------------------------------------------------------------------
class TestTracedExecutionIdentity:
    @pytest.mark.parametrize("model_name", ["squeezenet", "googlenet"])
    def test_traced_plan_bitwise_identical_to_untraced(self, model_name):
        model = small_model(model_name)
        feed = example_inputs(model, batch_size=2, seed=3)
        plan = ExecutionPlan(model)
        reference = plan.run(feed)

        tracer = Tracer()
        plan.enable_tracing(tracer)
        assert plan.stats()["tracing"] is True
        traced = plan.run(feed)
        for name, expected in reference.items():
            assert np.array_equal(np.asarray(traced[name]),
                                  np.asarray(expected)), name

        plan.disable_tracing()
        assert plan.stats()["tracing"] is False
        untraced_again = plan.run(feed)
        for name, expected in reference.items():
            assert np.array_equal(np.asarray(untraced_again[name]),
                                  np.asarray(expected)), name

        # one span per plan step, labelled op:node with step args
        step_spans = [e for e in tracer.events() if e.cat == "plan"]
        assert len(step_spans) == plan.stats()["steps"]
        assert all(":" in e.name for e in step_spans)
        assert all({"op", "node"} <= set(e.args) for e in step_spans)

    def test_session_span_encloses_plan_steps(self):
        model = small_model()
        session = create_session(model)
        feed = example_inputs(model, batch_size=1, seed=5)
        tracer = Tracer()
        session.set_tracer(tracer)
        try:
            session.run(feed)
        finally:
            session.close()
        events = tracer.events()
        run_spans = [e for e in events if e.name == "session.run"]
        step_spans = [e for e in events if e.cat == "plan"]
        assert len(run_spans) == 1
        assert step_spans
        run_span = run_spans[0]
        for step in step_spans:
            assert run_span.start_ns <= step.start_ns
            assert step.end_ns <= run_span.end_ns

    def test_traced_warm_plan_stays_zero_alloc(self):
        model = small_model()
        feed = example_inputs(model, batch_size=2, seed=1)
        plan = ExecutionPlan(model, tracer=Tracer())
        for _ in range(2):
            plan.run(feed)
        allocs_warm = plan.stats()["arena"]["allocations"]
        for _ in range(3):
            plan.run(feed)
        assert plan.stats()["arena"]["allocations"] == allocs_warm

    def test_profile_plan_steps_rows_in_schedule_order(self):
        model = small_model()
        feed = example_inputs(model, batch_size=1, seed=2)
        rows = profile_plan_steps(model, feed, num_runs=3, warmup=1)
        plan = ExecutionPlan(model)
        assert len(rows) == plan.stats()["steps"]
        assert all(":" in row["step"] for row in rows)  # "op:node" labels
        for row in rows:
            assert row["count"] == 3
            assert row["total_ms"] >= 0
            assert {"op", "node", "fused", "mean_ms", "median_ms"} <= set(row)

    def test_profile_model_plan_fused_engine(self):
        model = small_model()
        feed = example_inputs(model, batch_size=1, seed=2)
        profile = profile_model(model, feed, num_runs=2, warmup=1,
                                engine="plan-fused")
        assert profile.engine == "plan-fused"
        assert profile.ops
        assert profile.wall_time_s > 0
        assert profile.arena_stats is not None


# ---------------------------------------------------------------------------
# One registry across serving + arena + binding
# ---------------------------------------------------------------------------
class TestRegistryUnification:
    def test_engine_registry_exposes_serving_and_plan_counters(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        engine = InferenceEngine(
            EngineConfig(max_batch_size=4, max_wait_s=0.01),
            registry=registry, tracer=tracer)
        model = small_model()
        feed = example_inputs(model, batch_size=1, seed=9)
        try:
            futures = [engine.submit(model, feed) for _ in range(6)]
            for future in futures:
                future.result(timeout=30)
            # snapshot while the artifact sessions are alive: the artifact
            # collector reads their plan/arena/pool stats
            snapshot = registry.snapshot()
        finally:
            engine.shutdown()
        assert snapshot["serving_requests_completed_total"]["value"] == 6
        assert snapshot["serving_requests_failed_total"]["value"] == 0
        latency = snapshot["serving_request_latency_seconds"]
        assert latency["type"] == "histogram" and latency["count"] == 6
        # plan/arena/binding gauges from the session collector, labelled
        # per model+artifact
        assert snapshot["serving_cached_artifacts"]["value"] == 1
        for family in ("serving_plan_arena_allocations",
                       "serving_plan_arena_reuses",
                       "serving_plan_output_direct_writes",
                       "serving_plan_output_copy_writes"):
            matches = [key for key in snapshot if key.startswith(family)]
            assert matches, f"{family} missing from registry snapshot"
            assert all(f'model="{model.name}"' in key for key in matches)
        text = registry.render_prometheus()
        assert "serving_request_latency_seconds_bucket" in text

        # the request lifecycle landed in the tracer: nested
        # request -> session.run -> plan step spans plus async queue spans
        names = {e.name for e in tracer.events()}
        assert {"request.submit", "request", "request.queue",
                "batch.execute", "session.run_with_binding"} <= names
        assert any(e.cat == "plan" for e in tracer.events())

    def test_session_publish_metrics_exports_plan_gauges(self):
        registry = MetricsRegistry()
        model = small_model()
        session = create_session(model)
        session.publish_metrics(registry)
        try:
            session.run(example_inputs(model, batch_size=1, seed=4))
            snapshot = registry.snapshot()
        finally:
            session.close()
        key = f'plan_steps{{model="{model.name}"}}'
        assert snapshot[key]["value"] > 0
        assert f'plan_arena_allocations{{model="{model.name}"}}' in snapshot
        # closing the session unregisters the collector: values freeze
        # rather than erroring
        registry.snapshot()


# ---------------------------------------------------------------------------
# Report migration
# ---------------------------------------------------------------------------
class TestServingReportMigration:
    def _populated(self):
        registry = MetricsRegistry()
        metrics = ServingMetrics(registry=registry)
        for _ in range(4):
            metrics.record_submitted()
            metrics.record_completed(0.02)
        metrics.record_batch(4)
        metrics.record_cache(hit=True)
        metrics.record_cache(hit=False)
        metrics.record_compile(0.5)
        return registry, metrics

    def test_registry_path_renders_without_warning(self, recwarn):
        registry, _ = self._populated()
        report = render_serving_report(registry)
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]
        assert "-- serving summary --" in report
        assert "-- artifact cache --" in report
        assert "-- batch-size histogram --" in report

    def test_legacy_dict_path_warns_but_renders_identically(self):
        registry, metrics = self._populated()
        expected = render_serving_report(registry)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            legacy = render_serving_report(metrics.snapshot())
        assert legacy == expected


# ---------------------------------------------------------------------------
# Concurrent emit vs export (the ring-buffer drop-accounting fix)
# ---------------------------------------------------------------------------
class TestConcurrentTracerUse:
    def test_concurrent_emits_are_fully_accounted(self, tmp_path):
        """N threads hammer one small-capacity tracer while exports race
        them: every export snapshot must satisfy ``recorded == buffered +
        dropped``, and the final trace must be well-formed JSON whose span
        count plus drop count equals exactly what was emitted."""
        threads_n, per_thread = 8, 500
        tracer = Tracer(capacity=256)  # far below the emitted volume
        start = threading.Barrier(threads_n + 1)
        snapshots = []

        def emitter(worker: int) -> None:
            start.wait()
            for i in range(per_thread):
                t0 = tracer.now()
                tracer.emit(f"w{worker}.{i}", "load", t0, tracer.now())

        workers = [threading.Thread(target=emitter, args=(w,))
                   for w in range(threads_n)]
        for t in workers:
            t.start()
        start.wait()
        # export concurrently with the emitters — the racing case that
        # used to lose drops when events() and stats() read separately
        for _ in range(50):
            snapshots.append(tracer.export())
        for t in workers:
            t.join()
        snapshots.append(tracer.export())

        for snap in snapshots:
            assert snap["recorded"] == snap["buffered"] + snap["dropped"]
        final = snapshots[-1]
        assert final["recorded"] == threads_n * per_thread
        assert final["buffered"] == tracer.capacity

        path = tmp_path / "concurrent.json"
        tracer.write_chrome_trace(path)
        payload = json.loads(path.read_text())   # well-formed JSON
        spans = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
        assert (len(spans) + payload["metadata"]["dropped"]
                == threads_n * per_thread)
        assert payload["metadata"]["recorded"] == threads_n * per_thread

    def test_concurrent_async_spans_export_matched_pairs(self):
        """Async b/e pairs emitted from many threads stay matched per
        (cat, id) in the export."""
        tracer = Tracer()  # capacity covers everything: no drops
        threads_n, per_thread = 6, 50
        start = threading.Barrier(threads_n)

        def emitter() -> None:
            start.wait()
            for _ in range(per_thread):
                with tracer.async_span("req", cat="rpc",
                                       id=tracer.next_async_id()):
                    pass

        workers = [threading.Thread(target=emitter)
                   for _ in range(threads_n)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        payload = tracer.chrome_trace()
        begins = {}
        ends = {}
        for event in payload["traceEvents"]:
            if event.get("ph") == "b":
                begins[(event["cat"], event["id"])] = event
            elif event.get("ph") == "e":
                ends[(event["cat"], event["id"])] = event
        assert len(begins) == threads_n * per_thread
        assert set(begins) == set(ends)
        for key, begin in begins.items():
            assert ends[key]["ts"] >= begin["ts"]

    def test_tracer_publishes_drop_counters_to_registry(self):
        tracer = Tracer(capacity=4)
        registry = MetricsRegistry()
        tracer.publish_metrics(registry)
        for i in range(10):
            t0 = tracer.now()
            tracer.emit(f"s{i}", "t", t0, tracer.now())
        snapshot = registry.snapshot()
        assert snapshot["tracer_spans_recorded"]["value"] == 10
        assert snapshot["tracer_spans_dropped"]["value"] == 6
        assert snapshot["tracer_spans_buffered"]["value"] == 4


# ---------------------------------------------------------------------------
# Lazy exports stay lazy (the PR 6 import-cost pattern)
# ---------------------------------------------------------------------------
class TestLazyObservabilityExports:
    def test_cross_boundary_modules_are_not_imported_eagerly(self):
        """``import repro.observability`` must not pay for the merge,
        trajectory or context modules — they load on first attribute
        access only (checked in a fresh interpreter)."""
        import subprocess
        import sys as _sys

        code = (
            "import sys\n"
            "import repro.observability\n"
            "lazy = ['repro.observability.merge',\n"
            "        'repro.observability.trajectory',\n"
            "        'repro.observability.context']\n"
            "eager = [m for m in lazy if m in sys.modules]\n"
            "assert not eager, f'eagerly imported: {eager}'\n"
            "import repro\n"
            "eager = [m for m in lazy if m in sys.modules]\n"
            "assert not eager, f'import repro pulled in: {eager}'\n"
            "repro.observability.TraceContext\n"
            "assert 'repro.observability.context' in sys.modules\n"
            "repro.observability.merge_traces\n"
            "assert 'repro.observability.merge' in sys.modules\n"
            "repro.load_trajectory\n"
            "assert 'repro.observability.trajectory' in sys.modules\n"
        )
        proc = subprocess.run([_sys.executable, "-c", code],
                              capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr

    def test_lazy_names_resolve_to_real_objects(self):
        import repro
        import repro.observability as obs

        assert obs.TraceContext is repro.TraceContext
        assert callable(obs.merge_traces)
        assert callable(obs.analyze_trajectory)
        assert obs.WorkerTraceBuffer.__name__ == "WorkerTraceBuffer"
        with pytest.raises(AttributeError):
            obs.not_a_real_export
