"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.dataflow import DataflowGraph
from repro.ir import GraphBuilder


@pytest.fixture()
def rng() -> np.random.Generator:
    """Deterministic random generator."""
    return np.random.default_rng(1234)


def build_diamond_model(name: str = "diamond"):
    """A small fork/join CNN: conv -> (branch1 || branch2) -> concat -> head."""
    b = GraphBuilder(name, seed=0)
    x = b.input("x", (1, 3, 16, 16))
    stem = b.conv_relu(x, 8, kernel=3, pads=1)
    left = b.conv_relu(stem, 4, kernel=1)
    right = b.conv_relu(stem, 4, kernel=3, pads=1)
    merged = b.concat([left, right], axis=1)
    pooled = b.global_avgpool(merged)
    flat = b.flatten(pooled)
    logits = b.gemm(flat, 10)
    probs = b.softmax(logits, axis=-1)
    b.output(probs)
    return b.build()


def build_chain_model(length: int = 5, name: str = "chain"):
    """A purely sequential conv chain (no parallelism)."""
    b = GraphBuilder(name, seed=0)
    x = b.input("x", (1, 3, 8, 8))
    y = x
    for _ in range(length):
        y = b.conv_relu(y, 4, kernel=3, pads=1)
    b.output(y)
    return b.build()


def build_wide_model(branches: int = 4, name: str = "wide"):
    """One stem feeding several independent branches joined by a concat."""
    b = GraphBuilder(name, seed=0)
    x = b.input("x", (1, 3, 8, 8))
    stem = b.conv_relu(x, 8, kernel=3, pads=1)
    outs = [b.conv_relu(stem, 4, kernel=3, pads=1) for _ in range(branches)]
    merged = b.concat(outs, axis=1)
    b.output(merged)
    return b.build()


@pytest.fixture()
def diamond_model():
    """Fork/join model fixture."""
    return build_diamond_model()


@pytest.fixture()
def chain_model():
    """Sequential chain model fixture."""
    return build_chain_model()


@pytest.fixture()
def wide_model():
    """Wide fork/join model fixture."""
    return build_wide_model()


@pytest.fixture()
def diamond_dfg(diamond_model) -> DataflowGraph:
    """Dataflow graph of the diamond model."""
    from repro.graph import model_to_dataflow

    return model_to_dataflow(diamond_model)


def make_dataflow(edges, costs=None, name="toy") -> DataflowGraph:
    """Build a DataflowGraph directly from an edge list (helper for unit tests)."""
    dfg = DataflowGraph(name)
    nodes = []
    for src, dst in edges:
        for n in (src, dst):
            if n not in nodes:
                nodes.append(n)
    costs = costs or {}
    for n in nodes:
        dfg.add_node(n, "Generic", cost=float(costs.get(n, 1.0)))
    for src, dst in edges:
        dfg.add_edge(src, dst)
    return dfg
