"""Property-based tests (hypothesis) for the clustering core.

Random DAGs are generated and the paper's algorithms are checked against
their structural invariants:

* the distance pass is consistent with the critical-path length,
* linear clustering is a partition into dependence-connected paths,
* cluster merging preserves the partition, never increases the cluster
  count, and never introduces ordering cycles,
* the schedule simulator's makespan is bounded below by the (node-cost)
  critical path and above by the sequential time plus overheads,
* hyperclustering preserves the per-sample structure.
"""

from __future__ import annotations

from typing import List, Tuple

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.baselines import sequential_clustering
from repro.clustering import (
    ScheduleSimulator,
    SimulationConfig,
    build_hyperclusters,
    linear_clustering,
    merge_clusters_fixpoint,
    replicate_for_batch,
)
from repro.clustering.validation import (
    check_acyclic_clusters,
    check_linear,
    check_partition,
)
from repro.graph import compute_distance_to_end, critical_path_length
from repro.graph.dataflow import DataflowGraph
from repro.graph.traversal import topological_sort


@st.composite
def random_dags(draw, max_nodes: int = 18) -> DataflowGraph:
    """Random weighted DAG: edges always point from lower to higher index."""
    num_nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    costs = draw(st.lists(st.floats(min_value=0.0, max_value=20.0,
                                    allow_nan=False, allow_infinity=False),
                          min_size=num_nodes, max_size=num_nodes))
    edge_flags = draw(st.lists(st.booleans(),
                               min_size=num_nodes * (num_nodes - 1) // 2,
                               max_size=num_nodes * (num_nodes - 1) // 2))
    density = draw(st.floats(min_value=0.1, max_value=0.6))

    dfg = DataflowGraph("random")
    for i in range(num_nodes):
        dfg.add_node(f"n{i}", "Generic", cost=float(costs[i]))
    flag_iter = iter(edge_flags)
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if next(flag_iter) and (j - i == 1 or (i * 31 + j) % 100 < density * 100):
                dfg.add_edge(f"n{i}", f"n{j}")
    return dfg


@settings(max_examples=60, deadline=None)
@given(random_dags())
def test_distance_pass_consistency(dfg: DataflowGraph):
    """distance_to_end of every node is >= its own cost and the max over
    sources equals the critical-path length."""
    if len(dfg) == 0:
        return
    dist = compute_distance_to_end(dfg)
    for node in dfg.nodes():
        assert dist[node.name] >= node.cost - 1e-9
        for succ in dfg.successors(node.name):
            assert dist[node.name] >= dist[succ] + node.cost - 1e-9
    sources = dfg.source_nodes() or dfg.node_names()
    assert max(dist[s] for s in sources) == critical_path_length(dfg)


@settings(max_examples=60, deadline=None)
@given(random_dags())
def test_linear_clustering_invariants(dfg: DataflowGraph):
    """LC output is a partition of the graph into dependence-linear paths."""
    clustering = linear_clustering(dfg)
    check_partition(clustering)
    check_linear(clustering)
    check_acyclic_clusters(clustering)
    assert clustering.num_clusters <= max(len(dfg), 1)


@settings(max_examples=60, deadline=None)
@given(random_dags())
def test_merging_invariants(dfg: DataflowGraph):
    """Merging keeps the partition, never grows the cluster count and stays acyclic."""
    lc = linear_clustering(dfg)
    merged = merge_clusters_fixpoint(lc)
    check_partition(merged)
    check_acyclic_clusters(merged)
    assert merged.num_clusters <= lc.num_clusters
    # Fixpoint: running the pass again changes nothing.
    again = merge_clusters_fixpoint(merged)
    assert again.num_clusters == merged.num_clusters


@settings(max_examples=40, deadline=None)
@given(random_dags(), st.integers(min_value=1, max_value=8),
       st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
def test_schedule_bounds(dfg: DataflowGraph, num_cores: int, latency: float):
    """Makespan lies between the node-cost critical path and sequential time + overheads."""
    if len(dfg) == 0:
        return
    clustering = merge_clusters_fixpoint(linear_clustering(dfg))
    config = SimulationConfig(num_cores=num_cores, message_latency=latency,
                              per_cluster_overhead=0.0)
    result = ScheduleSimulator(config).simulate(clustering)
    cp_nodes_only = max(compute_distance_to_end(dfg, include_edge_cost=False).values())
    assert result.makespan >= cp_nodes_only - 1e-6
    upper = result.sequential_time + latency * result.num_messages + 1e-6
    assert result.makespan <= upper
    assert result.speedup <= num_cores + 1e-6 or result.sequential_time == 0


@settings(max_examples=40, deadline=None)
@given(random_dags(max_nodes=12), st.integers(min_value=2, max_value=4))
def test_hypercluster_invariants(dfg: DataflowGraph, batch: int):
    """Batch replication and hyperclustering preserve structure per sample."""
    if len(dfg) == 0:
        return
    merged = merge_clusters_fixpoint(linear_clustering(dfg))
    batched = replicate_for_batch(dfg, batch)
    assert len(batched) == batch * len(dfg)
    hc = build_hyperclusters(merged, batch)
    check_partition(hc)
    check_acyclic_clusters(hc)
    assert hc.num_clusters == merged.num_clusters
    # total cost scales with the batch size (floating-point tolerant)
    total_hc = sum(c.cost(batched) for c in hc.clusters)
    total_base = sum(c.cost(dfg) for c in merged.clusters)
    assert abs(total_hc - total_base * batch) <= 1e-6 * max(total_hc, 1.0)


@settings(max_examples=40, deadline=None)
@given(random_dags())
def test_sequential_clustering_is_topological(dfg: DataflowGraph):
    """The sequential baseline lists nodes in a valid topological order."""
    if len(dfg) == 0:
        return
    clustering = sequential_clustering(dfg)
    order = clustering.clusters[0].nodes
    position = {n: i for i, n in enumerate(order)}
    for edge in dfg.edges():
        assert position[edge.src] < position[edge.dst]
    assert sorted(order) == sorted(topological_sort(dfg))
