"""Cross-boundary observability: trace propagation through the worker
pools and the process backend, merged multi-process traces, worker
metrics, and channel telemetry.

The coordinator's tracer cannot see into pool workers (threads blocked in
their own loops, forked processes with separate address spaces); these
tests pin the whole relay: a ``TraceContext`` rides each dispatched job,
the worker records ``worker.execute`` on a local tracer against its real
pid/tid, the buffer ships home over the existing done queue, and
``merge_traces`` aligns the clocks into one Perfetto-loadable trace where
request spans nest over per-worker execute spans on distinct lanes.
"""

from __future__ import annotations

import json
import os
import pickle
import threading

import numpy as np
import pytest

from repro.models import build_model
from repro.observability import MetricsRegistry, Tracer
from repro.observability.context import TraceContext
from repro.observability.merge import (
    WorkerTraceBuffer,
    merge_traces,
    write_merged_trace,
)
from repro.pipeline import PipelineConfig, ramiel_compile
from repro.runtime.channels import (
    ChannelTelemetry,
    InstrumentedChannel,
    instrument_channels,
    make_thread_channels,
    payload_nbytes,
)
from repro.runtime.process_runtime import execute_generated_module
from repro.runtime.session import create_session
from repro.runtime.worker_pool import WarmExecutorPool
from repro.serving import example_inputs


@pytest.fixture(scope="module")
def compiled():
    model = build_model("squeezenet", variant="small")
    result = ramiel_compile(model, config=PipelineConfig(
        generate_code=True, build_plan=False))
    feed = example_inputs(model, seed=3)
    return model, result, feed


# ---------------------------------------------------------------------------
# TraceContext
# ---------------------------------------------------------------------------
class TestTraceContext:
    def test_from_tracer_none_is_none(self):
        assert TraceContext.from_tracer(None) is None

    def test_pickles_and_round_trips(self):
        tracer = Tracer()
        ctx = TraceContext.from_tracer(tracer, parent_span="pool.run")
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone == ctx
        assert clone.trace_id == ctx.trace_id
        assert clone.parent_span == "pool.run"

    def test_span_args_and_queue_wait(self):
        ctx = TraceContext(trace_id=7, parent_span="p", dispatch_ns=100)
        args = ctx.span_args({"cluster": "0"})
        assert args["trace_id"] == "7"
        assert args["parent"] == "p"
        assert args["cluster"] == "0"
        assert ctx.queue_wait_ns(150) == 50
        assert ctx.queue_wait_ns(50) == 0  # never negative

    def test_contexts_from_one_tracer_get_distinct_ids(self):
        tracer = Tracer()
        ids = {TraceContext.from_tracer(tracer).trace_id for _ in range(10)}
        assert len(ids) == 10


# ---------------------------------------------------------------------------
# Merging
# ---------------------------------------------------------------------------
class TestMergeTraces:
    def _buffer(self, worker, pid, tid, offset=0, spans=(), dropped=0):
        return WorkerTraceBuffer(worker=worker, pid=pid, tid=tid,
                                 events=list(spans), dropped=dropped,
                                 clock_offset_ns=offset)

    def test_merges_synthetic_buffers_onto_coordinator_clock(self):
        tracer = Tracer()
        t0 = tracer.now()
        tracer.emit("request", "request", t0, t0 + 10_000_000)
        epoch = tracer.epoch_ns
        # worker clock runs 5ms ahead of the coordinator's
        offset = 5_000_000
        span_start = t0 + 2_000_000 + offset   # 2ms in, on the worker clock
        buffers = [self._buffer(
            "cluster-0", pid=9999, tid=1, offset=offset,
            spans=[("worker.execute", "worker", span_start, 1_000_000,
                    {"cluster": "0"})], dropped=3)]
        payload = merge_traces(tracer, buffers)
        spans = {e["name"]: e for e in payload["traceEvents"]
                 if e.get("ph") == "X"}
        request, execute = spans["request"], spans["worker.execute"]
        # after alignment the worker span sits inside the request span
        assert request["ts"] <= execute["ts"]
        assert (execute["ts"] + execute["dur"]
                <= request["ts"] + request["dur"])
        assert execute["pid"] == 9999
        assert request["pid"] == os.getpid()
        assert payload["metadata"]["worker_drops"] == {"cluster-0": 3}
        assert payload["metadata"]["worker_clock_offsets_ns"] == {
            "cluster-0": offset}

    def test_worker_lanes_get_process_and_thread_names(self):
        payload = merge_traces(None, [
            self._buffer("cluster-0", pid=111, tid=5,
                         spans=[("x", "worker", 1000, 10, None)]),
            self._buffer("cluster-1", pid=222, tid=6,
                         spans=[("y", "worker", 2000, 10, None)]),
        ])
        metas = [e for e in payload["traceEvents"] if e.get("ph") == "M"]
        process_names = {e["pid"]: e["args"]["name"] for e in metas
                         if e["name"] == "process_name"}
        assert "cluster-0" in process_names[111]
        assert "cluster-1" in process_names[222]
        thread_names = {(e["pid"], e["tid"]) for e in metas
                        if e["name"] == "thread_name"}
        assert (111, 5) in thread_names and (222, 6) in thread_names
        assert payload["metadata"]["workers"] == 2

    def test_write_merged_trace_is_valid_json(self, tmp_path):
        path = tmp_path / "merged.json"
        write_merged_trace(path, None, [
            self._buffer("cluster-0", pid=1, tid=1,
                         spans=[("x", "w", 100, 10, {"k": "v"})])])
        loaded = json.loads(path.read_text())
        assert any(e.get("ph") == "X" for e in loaded["traceEvents"])


# ---------------------------------------------------------------------------
# Warm pools (thread + process backends)
# ---------------------------------------------------------------------------
class TestPoolTracePropagation:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_merged_trace_has_per_worker_lanes_nested_in_request(
            self, compiled, backend, tmp_path):
        model, result, feed = compiled
        tracer = Tracer()
        weights = result.optimized_model.graph.initializers
        pool = WarmExecutorPool(result.parallel_module, weights,
                                backend=backend, tracer=tracer)
        try:
            runs = 3
            for i in range(runs):
                with tracer.span("request", cat="request",
                                 args={"iteration": str(i)}):
                    pool.run(feed)
            buffers = pool.worker_trace_buffers()
        finally:
            pool.close()
        assert len(buffers) == pool.num_clusters
        for buffer in buffers:
            # one worker.execute span per run per worker, zero drops
            names = [name for name, *_ in buffer.events]
            assert names.count("worker.execute") == runs
            assert buffer.dropped == 0
            if backend == "process":
                assert buffer.pid != os.getpid()
            else:
                assert buffer.pid == os.getpid()
                assert buffer.tid != threading.get_ident()

        payload = merge_traces(tracer, buffers, process_name=model.name)
        spans = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
        requests = [e for e in spans if e["name"] == "request"]
        executes = [e for e in spans if e["name"] == "worker.execute"]
        assert len(requests) == runs
        assert len(executes) == runs * pool.num_clusters
        # distinct lanes: every (pid, tid) of a worker span differs from
        # the coordinator's, and each worker has its own
        lanes = {(e["pid"], e["tid"]) for e in executes}
        assert len(lanes) == pool.num_clusters
        coordinator_lane = (os.getpid(), threading.get_ident())
        assert coordinator_lane not in lanes
        # time nesting: every execute sits inside some request span
        for execute in executes:
            assert any(r["ts"] <= execute["ts"] and
                       execute["ts"] + execute["dur"] <= r["ts"] + r["dur"]
                       for r in requests), (
                "worker.execute span does not nest inside any request "
                "span after clock alignment")
        assert payload["metadata"]["worker_drops"] == {
            b.worker: 0 for b in buffers}
        json.dumps(payload)  # serializable end to end

    def test_untraced_pool_ships_no_buffers(self, compiled):
        _, result, feed = compiled
        weights = result.optimized_model.graph.initializers
        with WarmExecutorPool(result.parallel_module, weights) as pool:
            pool.run(feed)
            assert pool.worker_trace_buffers() == []
            assert pool.stats()["runs"] == 1

    def test_set_tracer_after_construction_enables_spans(self, compiled):
        _, result, feed = compiled
        weights = result.optimized_model.graph.initializers
        with WarmExecutorPool(result.parallel_module, weights) as pool:
            pool.run(feed)
            tracer = Tracer()
            pool.set_tracer(tracer)
            pool.run(feed)
            buffers = pool.worker_trace_buffers()
            assert buffers and all(b.events for b in buffers)
            pool.set_tracer(None)
            pool.clear_worker_traces()
            pool.run(feed)
            assert pool.worker_trace_buffers() == []

    def test_traced_outputs_match_untraced(self, compiled):
        _, result, feed = compiled
        weights = result.optimized_model.graph.initializers
        with WarmExecutorPool(result.parallel_module, weights) as plain, \
                WarmExecutorPool(result.parallel_module, weights,
                                 tracer=Tracer()) as traced:
            expected = plain.run(feed)
            actual = traced.run(feed)
        for name, value in expected.items():
            np.testing.assert_array_equal(np.asarray(actual[name]),
                                          np.asarray(value))

    def test_handshake_offsets_are_small_on_fork_platforms(self, compiled):
        _, result, feed = compiled
        weights = result.optimized_model.graph.initializers
        with WarmExecutorPool(result.parallel_module, weights,
                              backend="process") as pool:
            offsets = pool.clock_offsets()
        assert len(offsets) == pool.num_clusters
        # perf_counter is machine-wide on fork platforms: measured offsets
        # are handshake noise, far below a second
        assert all(abs(offset) < 1_000_000_000 for offset in offsets)


class TestPoolMetricsAndRestart:
    def test_stats_and_registry_metrics(self, compiled):
        _, result, feed = compiled
        weights = result.optimized_model.graph.initializers
        tracer = Tracer()
        registry = MetricsRegistry()
        with WarmExecutorPool(result.parallel_module, weights,
                              tracer=tracer) as pool:
            pool.publish_metrics(registry, labels={"model": "squeezenet"})
            for _ in range(2):
                pool.run(feed)
            stats = pool.stats()
            assert stats["runs"] == 2
            assert stats["failures"] == 0
            assert stats["execute_ns_total"] > 0
            assert stats["dispatch_ns_total"] > 0
            assert len(stats["workers"]) == pool.num_clusters
            for row in stats["workers"]:
                assert row["jobs"] == 2
                assert row["execute_ns_total"] > 0
            # thread backend with a tracer wraps fresh channels per run
            assert stats["channels"] is not None
            assert stats["channels"]["puts"] == stats["channels"]["gets"]
            assert stats["channels"]["put_bytes"] > 0

            labels = {"model": "squeezenet"}
            snapshot = registry.snapshot()
            assert snapshot['pool_runs_total{model="squeezenet"}'][
                "value"] == 2
            assert snapshot['pool_channel_put_bytes_total'
                            '{model="squeezenet"}']["value"] > 0
            per_worker = registry.series("pool_worker_jobs_total")
            assert len(per_worker) == pool.num_clusters
            run_hist = registry.get("pool_run_seconds", labels)
            assert run_hist.count == 2
            exec_hist = registry.get("pool_worker_execute_seconds", labels)
            assert exec_hist.count == 2 * pool.num_clusters

    def test_process_backend_ships_channel_deltas(self, compiled):
        _, result, feed = compiled
        weights = result.optimized_model.graph.initializers
        with WarmExecutorPool(result.parallel_module, weights,
                              backend="process", tracer=Tracer()) as pool:
            pool.run(feed)
            channels = pool.stats()["channels"]
        # the child processes' counters are copy-on-write invisible; the
        # totals only exist because per-job deltas were shipped home
        assert channels is not None
        assert channels["puts"] > 0 and channels["gets"] > 0
        assert channels["put_bytes"] == channels["get_bytes"]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_restart_recovers_a_broken_pool(self, compiled, backend):
        _, result, feed = compiled
        weights = result.optimized_model.graph.initializers
        with WarmExecutorPool(result.parallel_module, weights,
                              backend=backend) as pool:
            # Missing graph inputs: the first cluster fails fast while the
            # others block on channels fed by it, so the run ends at the
            # watchdog — keep it short.
            with pytest.raises(Exception):
                pool.run({}, timeout=3.0)
            assert pool.broken
            assert pool.stats()["failures"] == 1
            pool.restart()
            assert not pool.broken
            outputs = pool.run(feed)
            assert outputs
            stats = pool.stats()
            assert stats["restarts"] == 1
            assert stats["runs"] == 1


# ---------------------------------------------------------------------------
# Session + one-shot runtime integration
# ---------------------------------------------------------------------------
class TestSessionWorkerTraces:
    @pytest.mark.parametrize("executor", ["pool", "process"])
    def test_session_produces_single_merged_chrome_trace(
            self, compiled, executor, tmp_path):
        model, result, feed = compiled
        tracer = Tracer()
        session = create_session(result, executor=executor, tracer=tracer)
        try:
            session.run(feed)
            buffers = session.worker_trace_buffers()
            assert buffers
            path = tmp_path / f"{executor}.json"
            payload = write_merged_trace(path, tracer, buffers,
                                         process_name=model.name)
        finally:
            session.close()
        loaded = json.loads(path.read_text())
        assert loaded["metadata"]["workers"] == len(buffers)
        names = {e["name"] for e in loaded["traceEvents"]
                 if e.get("ph") == "X"}
        assert {"session.run", "pool.run", "worker.execute"} <= names
        assert payload["metadata"]["worker_drops"] == {
            b.worker: 0 for b in buffers}

    def test_plain_session_has_no_worker_buffers(self, compiled):
        model, result, feed = compiled
        session = create_session(result, executor="plan", tracer=Tracer())
        try:
            session.run(feed)
            assert session.worker_trace_buffers() == []
        finally:
            session.close()

    def test_session_stats_expose_pool_counters(self, compiled):
        _, result, feed = compiled
        session = create_session(result, executor="pool")
        try:
            session.run(feed)
            stats = session.stats()
            assert stats["pool"]["runs"] == 1
            assert stats["pool_clusters"] == stats["pool"]["clusters"]
        finally:
            session.close()


class TestExecuteGeneratedModuleTracing:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_one_shot_workers_ship_buffers(self, compiled, backend):
        _, result, feed = compiled
        weights = result.optimized_model.graph.initializers
        tracer = Tracer()
        collector: list = []
        outputs = execute_generated_module(
            result.parallel_module, feed, weights, backend=backend,
            tracer=tracer, collector=collector)
        assert outputs
        assert len(collector) == len(
            result.parallel_module.module.CLUSTER_FUNCTIONS)
        for buffer in collector:
            assert any(name == "worker.execute"
                       for name, *_ in buffer.events)
            assert buffer.clock_offset_ns == 0  # fork shares the clock
        coordinator = [e.name for e in tracer.events()]
        assert "runtime.parallel_run" in coordinator
        payload = merge_traces(tracer, collector)
        json.dumps(payload)

    def test_untraced_call_is_unchanged(self, compiled):
        _, result, feed = compiled
        weights = result.optimized_model.graph.initializers
        outputs = execute_generated_module(result.parallel_module, feed,
                                           weights, backend="thread")
        assert outputs


# ---------------------------------------------------------------------------
# Channel telemetry primitives
# ---------------------------------------------------------------------------
class TestChannelTelemetry:
    def test_payload_nbytes_counts_arrays_and_containers(self):
        arr = np.zeros((4, 4), np.float32)
        assert payload_nbytes(arr) == 64
        assert payload_nbytes({"a": arr, "b": arr}) == 128
        assert payload_nbytes([arr, (arr, b"xyz")]) == 131
        assert payload_nbytes(object()) == 0

    def test_instrumented_channel_accounts_puts_and_gets(self):
        telemetry = ChannelTelemetry()
        channels = instrument_channels(
            make_thread_channels(["c"]), telemetry)
        channel = channels["c"]
        assert isinstance(channel, InstrumentedChannel)
        payload = np.ones(10, np.float64)
        channel.put(payload)
        assert not channel.empty()
        out = channel.get()
        np.testing.assert_array_equal(out, payload)
        snap = telemetry.snapshot()
        assert snap["puts"] == snap["gets"] == 1
        assert snap["put_bytes"] == snap["get_bytes"] == 80
        assert snap["put_ns"] >= 0 and snap["get_ns"] > 0

    def test_delta_subtracts_field_wise(self):
        before = {"puts": 1, "gets": 2, "put_bytes": 10, "get_bytes": 20,
                  "put_ns": 5, "get_ns": 6}
        after = {"puts": 3, "gets": 2, "put_bytes": 40, "get_bytes": 20,
                 "put_ns": 9, "get_ns": 6}
        delta = ChannelTelemetry.delta(after, before)
        assert delta == {"puts": 2, "gets": 0, "put_bytes": 30,
                         "get_bytes": 0, "put_ns": 4, "get_ns": 0}
