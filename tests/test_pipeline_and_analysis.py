"""Tests for the Ramiel pipeline, the analysis harness and the CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reports import format_rows, render_comparison
from repro.analysis.slack import slack_report
from repro.analysis.speedup import (
    ExperimentConfig,
    cluster_model,
    hypercluster_speedups,
    measured_speedup,
    run_full_experiment,
    run_lc_experiment,
)
from repro.cli import main as cli_main
from repro.models import build_model
from repro.pipeline import PipelineConfig, RamielPipeline, ramiel_compile
from repro.runtime import execute_model


class TestPipeline:
    def test_compile_small_squeezenet(self, rng):
        model = build_model("squeezenet", variant="small")
        result = ramiel_compile(model)
        summary = result.summary()
        assert summary["clusters"] >= 2
        assert summary["clusters_before_merging"] >= summary["clusters"]
        assert result.compile_time_s > 0
        assert result.parallel_module is not None

    def test_pipeline_outputs_match_interpreter(self, rng):
        model = build_model("squeezenet", variant="small")
        result = ramiel_compile(model)
        x = rng.standard_normal((1, 3, 32, 32)).astype(np.float32)
        ref = execute_model(model, {"input": x})
        seq = result.run_sequential({"input": x})
        par = result.run_parallel({"input": x}, backend="thread")
        for key in ref:
            np.testing.assert_allclose(ref[key], seq[key], rtol=1e-4, atol=1e-5)
            np.testing.assert_allclose(ref[key], par[key], rtol=1e-4, atol=1e-5)

    def test_pruning_stage_runs_for_bert(self):
        model = build_model("bert", variant="small")
        result = ramiel_compile(model, prune=True)
        assert result.pruning_stats is not None
        assert result.pruning_stats["nodes_removed"] > 0
        assert result.optimized_model.num_nodes < model.num_nodes

    def test_cloning_stage(self):
        model = build_model("googlenet", variant="small")
        result = ramiel_compile(model, clone=True, prune=False)
        assert result.cloning_report is not None
        assert result.cloning_report.clones_created > 0

    def test_hypercluster_batch_mode(self):
        model = build_model("squeezenet", variant="small")
        result = ramiel_compile(model, batch_size=4, generate_code=False)
        base = ramiel_compile(model, generate_code=False)
        assert result.num_clusters == base.num_clusters
        assert len(result.clustering.dfg) == 4 * len(base.clustering.dfg)

    def test_generate_code_disabled(self):
        model = build_model("squeezenet", variant="small")
        result = ramiel_compile(model, generate_code=False)
        assert result.parallel_module is None
        with pytest.raises(RuntimeError):
            result.run_parallel({})

    def test_config_overrides(self):
        model = build_model("squeezenet", variant="small")
        config = PipelineConfig(prune=False, generate_code=False)
        result = ramiel_compile(model, config=config, num_cores=2)
        assert result.schedule.num_cores_used <= 2

    def test_pipeline_class_wrapper(self):
        model = build_model("squeezenet", variant="small")
        pipeline = RamielPipeline(PipelineConfig(generate_code=False))
        result = pipeline.compile(model)
        assert result.num_clusters >= 1

    def test_output_dir_used(self, tmp_path):
        model = build_model("squeezenet", variant="small")
        result = ramiel_compile(model, output_dir=str(tmp_path))
        assert result.parallel_module.path.parent == tmp_path


class TestAnalysisHarness:
    def test_lc_experiment_row(self):
        model = build_model("squeezenet")
        experiment = run_lc_experiment(model)
        row = experiment.as_table4_row()
        assert row["clusters"] == 2
        assert row["speedup"] == pytest.approx(experiment.speedup, abs=0.01)
        assert experiment.compile_time_s > 0

    def test_full_experiment_breakdown(self):
        model = build_model("yolo_v5")
        breakdown = run_full_experiment(model)
        assert breakdown.s_lc > 0
        assert breakdown.s_lc_dce is not None          # yolo prunes
        assert breakdown.s_overall >= breakdown.s_lc
        row = breakdown.as_row()
        assert set(row) == {"model", "s_lc", "s_lc_dce", "s_lc_clone", "s_overall"}

    def test_full_experiment_no_dce_for_squeezenet(self):
        breakdown = run_full_experiment(build_model("squeezenet"))
        assert breakdown.s_lc_dce is None               # nothing to prune
        assert breakdown.s_lc_clone is not None         # cloning applies

    def test_hypercluster_speedups_monotone_batches(self):
        model = build_model("squeezenet")
        speedups = hypercluster_speedups(model, [1, 2, 4])
        assert speedups[2] > speedups[1]
        assert speedups[4] >= speedups[2] * 0.95

    def test_intra_op_threads_reduce_simulated_times(self):
        model = build_model("inception_v3")
        config = ExperimentConfig()
        t1 = run_lc_experiment(model, config, num_threads=1)
        t4 = run_lc_experiment(model, config, num_threads=4)
        assert t4.par_time < t1.par_time
        assert t4.seq_time < t1.seq_time

    def test_measured_speedup_correctness(self, rng):
        model = build_model("squeezenet", variant="small")
        inputs = {"input": rng.standard_normal((1, 3, 32, 32)).astype(np.float32)}
        stats = measured_speedup(model, inputs, backend="thread", repeats=1)
        assert stats["max_abs_err"] < 1e-3
        assert stats["num_clusters"] == 2
        assert stats["seq_time_s"] > 0 and stats["par_time_s"] > 0

    def test_slack_report(self):
        model = build_model("squeezenet")
        config = ExperimentConfig()
        result = config.simulator().simulate(cluster_model(model, config))
        report = slack_report(result)
        assert report.total_slack >= 0
        assert 0 < report.mean_utilization <= 1.0
        assert set(report.as_row()) == {"model", "makespan", "total_slack", "mean_utilization"}

    def test_report_rendering(self):
        rows = [{"model": "a", "speedup": 1.2}, {"model": "b", "speedup": 0.9}]
        text = format_rows(rows)
        assert "model" in text and "speedup" in text and "a" in text
        comparison = render_comparison({"a": {"speedup": 1.2}}, {"a": {"speedup": 1.1}},
                                       keys=["speedup"])
        assert "speedup (measured)" in comparison and "speedup (paper)" in comparison


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "squeezenet" in out and "nasnet" in out

    def test_analyze(self, capsys):
        assert cli_main(["analyze", "squeezenet", "--variant", "small"]) == 0
        out = capsys.readouterr().out
        assert "parallelism" in out

    def test_compile_json(self, capsys, tmp_path):
        assert cli_main(["compile", "squeezenet", "--variant", "small",
                         "-o", str(tmp_path), "--json"]) == 0
        out = capsys.readouterr().out
        assert '"predicted_speedup"' in out
        assert list(tmp_path.glob("*.py"))

    def test_run_thread_backend(self, capsys):
        assert cli_main(["run", "squeezenet", "--variant", "small",
                         "--backend", "thread", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
