"""Tests for the numpy operator runtime (the PyTorch substitute)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.signal import correlate2d

import repro.runtime.functional as F
from repro.runtime.intra_op import get_num_threads, intra_op_threads, parallel_over_batch, set_num_threads
from repro.runtime.tensor_utils import im2col, normalize_pads, pad_nchw, sliding_windows


class TestTensorUtils:
    def test_pad_nchw(self):
        x = np.ones((1, 1, 2, 2), dtype=np.float32)
        padded = pad_nchw(x, (1, 2, 1, 2))
        assert padded.shape == (1, 1, 4, 6)
        assert padded[0, 0, 0, 0] == 0.0

    def test_normalize_pads(self):
        assert normalize_pads([1, 2]) == [1, 2, 1, 2]
        assert normalize_pads([1, 2, 3, 4]) == [1, 2, 3, 4]
        with pytest.raises(ValueError):
            normalize_pads([1, 2, 3])

    def test_sliding_windows_shape(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        win = sliding_windows(x, (2, 2), (2, 2))
        assert win.shape == (1, 1, 2, 2, 2, 2)
        np.testing.assert_array_equal(win[0, 0, 0, 0], [[0, 1], [4, 5]])

    def test_im2col_matches_manual(self):
        x = np.arange(9, dtype=np.float32).reshape(1, 1, 3, 3)
        cols, (oh, ow) = im2col(x, (2, 2), (1, 1), (0, 0, 0, 0))
        assert (oh, ow) == (2, 2)
        np.testing.assert_array_equal(cols[0], [0, 1, 3, 4])


class TestConv:
    def test_conv2d_matches_scipy(self, rng):
        x = rng.standard_normal((1, 3, 12, 12)).astype(np.float32)
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        y = F.conv2d(x, w, pads=(1, 1, 1, 1))
        ref = sum(correlate2d(x[0, c], w[0, c], mode="same") for c in range(3))
        np.testing.assert_allclose(y[0, 0], ref, atol=1e-4)

    def test_conv2d_stride_and_bias(self, rng):
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        w = rng.standard_normal((5, 3, 3, 3)).astype(np.float32)
        b = rng.standard_normal(5).astype(np.float32)
        y = F.conv2d(x, w, b, strides=(2, 2), pads=(1, 1, 1, 1))
        assert y.shape == (2, 5, 4, 4)
        y0 = F.conv2d(x, w, None, strides=(2, 2), pads=(1, 1, 1, 1))
        np.testing.assert_allclose(y, y0 + b.reshape(1, -1, 1, 1), rtol=1e-5)

    def test_grouped_conv_equals_split(self, rng):
        x = rng.standard_normal((1, 4, 6, 6)).astype(np.float32)
        w = rng.standard_normal((4, 2, 3, 3)).astype(np.float32)
        grouped = F.conv2d(x, w, pads=(1, 1, 1, 1), group=2)
        part0 = F.conv2d(x[:, :2], w[:2], pads=(1, 1, 1, 1))
        part1 = F.conv2d(x[:, 2:], w[2:], pads=(1, 1, 1, 1))
        np.testing.assert_allclose(grouped, np.concatenate([part0, part1], axis=1), rtol=1e-5)

    def test_depthwise(self, rng):
        x = rng.standard_normal((1, 3, 6, 6)).astype(np.float32)
        w = rng.standard_normal((3, 1, 3, 3)).astype(np.float32)
        y = F.depthwise_conv2d(x, w, pads=(1, 1, 1, 1))
        assert y.shape == (1, 3, 6, 6)

    def test_channel_mismatch_raises(self, rng):
        x = rng.standard_normal((1, 3, 6, 6)).astype(np.float32)
        w = rng.standard_normal((4, 2, 3, 3)).astype(np.float32)
        with pytest.raises(ValueError):
            F.conv2d(x, w)

    def test_conv_transpose_inverts_spatial_reduction(self, rng):
        x = rng.standard_normal((1, 2, 4, 4)).astype(np.float32)
        w = rng.standard_normal((2, 3, 2, 2)).astype(np.float32)
        y = F.conv_transpose2d(x, w, strides=(2, 2))
        assert y.shape == (1, 3, 8, 8)


class TestPooling:
    def test_max_pool_basic(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        y = F.max_pool2d(x, (2, 2), (2, 2))
        np.testing.assert_array_equal(y[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_counts(self):
        x = np.ones((1, 1, 4, 4), dtype=np.float32)
        y = F.avg_pool2d(x, (2, 2), (2, 2))
        np.testing.assert_allclose(y, np.ones((1, 1, 2, 2)))

    def test_avg_pool_exclude_pad(self):
        x = np.ones((1, 1, 2, 2), dtype=np.float32)
        incl = F.avg_pool2d(x, (3, 3), (1, 1), pads=(1, 1, 1, 1), count_include_pad=True)
        excl = F.avg_pool2d(x, (3, 3), (1, 1), pads=(1, 1, 1, 1), count_include_pad=False)
        assert excl[0, 0, 0, 0] == pytest.approx(1.0)
        assert incl[0, 0, 0, 0] < 1.0

    def test_ceil_mode_keeps_partial_window(self):
        x = np.arange(25, dtype=np.float32).reshape(1, 1, 5, 5)
        no_ceil = F.max_pool2d(x, (2, 2), (2, 2), ceil_mode=False)
        ceil = F.max_pool2d(x, (2, 2), (2, 2), ceil_mode=True)
        assert no_ceil.shape == (1, 1, 2, 2)
        assert ceil.shape == (1, 1, 3, 3)

    def test_global_pools(self, rng):
        x = rng.standard_normal((2, 3, 5, 5)).astype(np.float32)
        np.testing.assert_allclose(F.global_avg_pool2d(x)[..., 0, 0], x.mean(axis=(2, 3)), rtol=1e-5)
        np.testing.assert_allclose(F.global_max_pool2d(x)[..., 0, 0], x.max(axis=(2, 3)), rtol=1e-5)


class TestActivationsAndElementwise:
    def test_relu_and_leaky(self):
        x = np.array([-2.0, 0.0, 3.0], dtype=np.float32)
        np.testing.assert_array_equal(F.relu(x), [0, 0, 3])
        np.testing.assert_allclose(F.leaky_relu(x, 0.1), [-0.2, 0, 3], rtol=1e-6)

    def test_sigmoid_tanh_bounds(self, rng):
        x = rng.standard_normal(100).astype(np.float32) * 10
        s = F.sigmoid(x)
        assert np.all((s >= 0) & (s <= 1))
        assert float(F.sigmoid(np.float32(0.0))) == pytest.approx(0.5)
        assert np.all(np.abs(F.tanh(x)) <= 1)

    def test_softmax_normalizes(self, rng):
        x = rng.standard_normal((4, 7)).astype(np.float32)
        s = F.softmax(x, axis=-1)
        np.testing.assert_allclose(s.sum(axis=-1), np.ones(4), rtol=1e-5)
        np.testing.assert_allclose(F.log_softmax(x), np.log(s), atol=1e-5)

    def test_softmax_stability_large_values(self):
        x = np.array([[1e4, 1e4 + 1]], dtype=np.float32)
        s = F.softmax(x)
        assert np.isfinite(s).all()

    def test_gelu_erf_silu(self):
        x = np.linspace(-3, 3, 7).astype(np.float32)
        np.testing.assert_allclose(F.gelu(x), 0.5 * x * (1 + F.erf(x / np.sqrt(2))), rtol=1e-5)
        np.testing.assert_allclose(F.silu(x), x * F.sigmoid(x), rtol=1e-5)

    def test_clip(self):
        x = np.array([-5.0, 0.5, 9.0])
        np.testing.assert_array_equal(F.clip(x, 0.0, 1.0), [0, 0.5, 1])
        np.testing.assert_array_equal(F.clip(x, None, 1.0), [-5, 0.5, 1])

    def test_binary_broadcasting(self, rng):
        a = rng.standard_normal((2, 3, 4)).astype(np.float32)
        b = rng.standard_normal((4,)).astype(np.float32)
        np.testing.assert_allclose(F.add(a, b), a + b)
        np.testing.assert_allclose(F.mul(a, b), a * b)
        np.testing.assert_allclose(F.where(a > 0, a, b), np.where(a > 0, a, b))


class TestLinearAndNorm:
    def test_gemm_transposes(self, rng):
        a = rng.standard_normal((3, 4)).astype(np.float32)
        b = rng.standard_normal((5, 4)).astype(np.float32)
        c = rng.standard_normal((5,)).astype(np.float32)
        y = F.gemm(a, b, c, trans_b=True)
        np.testing.assert_allclose(y, a @ b.T + c, rtol=1e-5)

    def test_linear_bias(self, rng):
        x = rng.standard_normal((2, 3, 4)).astype(np.float32)
        w = rng.standard_normal((4, 6)).astype(np.float32)
        bias = rng.standard_normal(6).astype(np.float32)
        np.testing.assert_allclose(F.linear(x, w, bias), x @ w + bias, rtol=1e-5)

    def test_batch_norm_normalizes(self, rng):
        x = rng.standard_normal((2, 3, 4, 4)).astype(np.float32)
        mean = x.mean(axis=(0, 2, 3))
        var = x.var(axis=(0, 2, 3))
        y = F.batch_norm(x, np.ones(3), np.zeros(3), mean, var)
        assert abs(float(y.mean())) < 0.1

    def test_layer_norm_zero_mean_unit_var(self, rng):
        x = rng.standard_normal((2, 5, 8)).astype(np.float32)
        y = F.layer_norm(x, np.ones(8), np.zeros(8))
        np.testing.assert_allclose(y.mean(axis=-1), 0.0, atol=1e-4)
        np.testing.assert_allclose(y.var(axis=-1), 1.0, atol=1e-2)

    def test_attention_shapes_and_weights(self, rng):
        x = rng.standard_normal((1, 6, 16)).astype(np.float32)
        w = [rng.standard_normal((16, 16)).astype(np.float32) * 0.1 for _ in range(4)]
        out = F.multi_head_attention(x, w[0], w[1], w[2], w[3], num_heads=4)
        assert out.shape == (1, 6, 16)
        q = F.split_heads(F.linear(x, w[0]), 4)
        assert q.shape == (1, 4, 6, 4)
        np.testing.assert_allclose(F.merge_heads(q), F.linear(x, w[0]), rtol=1e-5)


class TestMovementAndReduction:
    def test_concat_split_roundtrip(self, rng):
        x = rng.standard_normal((1, 6, 2, 2)).astype(np.float32)
        parts = F.split(x, parts=3, axis=1)
        np.testing.assert_array_equal(F.concat(parts, axis=1), x)

    def test_reshape_zero_and_minus_one(self):
        x = np.zeros((2, 3, 4))
        assert F.reshape(x, [0, -1]).shape == (2, 12)
        assert F.reshape(x, [-1]).shape == (24,)

    def test_slice_negative_and_sentinel(self):
        x = np.arange(10)
        np.testing.assert_array_equal(F.slice_(x, [2], [2**31 + 10], [0]), x[2:])
        np.testing.assert_array_equal(F.slice_(x, [-3], [10], [0]), x[-3:])
        np.testing.assert_array_equal(F.slice_(x, [0], [10], [0], [2]), x[::2])

    def test_gather_and_gather_elements(self):
        data = np.arange(12).reshape(3, 4)
        np.testing.assert_array_equal(F.gather(data, np.array([2, 0]), axis=0), data[[2, 0]])
        idx = np.array([[0, 1, 2, 3], [3, 2, 1, 0], [0, 0, 0, 0]])
        np.testing.assert_array_equal(F.gather_elements(data, idx, axis=1),
                                      np.take_along_axis(data, idx, axis=1))

    def test_pad_expand_tile(self):
        x = np.ones((1, 2))
        assert F.pad(x, [0, 1, 0, 1]).shape == (1, 4)
        assert F.expand(x, [3, 2]).shape == (3, 2)
        assert F.tile(x, [2, 3]).shape == (2, 6)

    def test_resize_nearest_doubles(self):
        x = np.arange(4, dtype=np.float32).reshape(1, 1, 2, 2)
        y = F.resize_nearest(x, [1, 1, 2, 2])
        assert y.shape == (1, 1, 4, 4)
        assert y[0, 0, 0, 0] == y[0, 0, 1, 1] == 0

    def test_space_depth_roundtrip(self, rng):
        x = rng.standard_normal((1, 4, 4, 4)).astype(np.float32)
        np.testing.assert_allclose(F.depth_to_space(F.space_to_depth(x, 2), 2), x)

    def test_reductions(self, rng):
        x = rng.standard_normal((2, 3, 4)).astype(np.float32)
        np.testing.assert_allclose(F.reduce_mean(x, [1], keepdims=False), x.mean(axis=1), rtol=1e-5)
        np.testing.assert_allclose(F.reduce_sum(x, [-1]), x.sum(axis=-1, keepdims=True), rtol=1e-5)
        np.testing.assert_allclose(F.reduce_max(x, [0, 2], keepdims=False), x.max(axis=(0, 2)))
        np.testing.assert_allclose(F.reduce_l2(x, [2], keepdims=False),
                                   np.sqrt((x ** 2).sum(axis=2)), rtol=1e-5)

    def test_argmax_topk(self, rng):
        x = rng.standard_normal((3, 10)).astype(np.float32)
        np.testing.assert_array_equal(F.argmax(x, axis=1, keepdims=False), x.argmax(axis=1))
        values, idx = F.topk(x, 3, axis=1)
        assert values.shape == (3, 3)
        np.testing.assert_allclose(values[:, 0], x.max(axis=1), rtol=1e-6)

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])


class TestIntraOp:
    def test_default_single_thread(self):
        assert get_num_threads() >= 1

    def test_scoped_override(self):
        set_num_threads(1)
        with intra_op_threads(4):
            assert get_num_threads() == 4
        assert get_num_threads() == 1

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            set_num_threads(0)
        with pytest.raises(ValueError):
            with intra_op_threads(0):
                pass

    def test_parallel_over_batch_matches_serial(self, rng):
        x = rng.standard_normal((8, 3, 6, 6)).astype(np.float32)
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        serial = F.conv2d(x, w, pads=(1, 1, 1, 1))
        with intra_op_threads(4):
            parallel = F.conv2d(x, w, pads=(1, 1, 1, 1))
        np.testing.assert_allclose(parallel, serial, rtol=1e-5)

    def test_parallel_over_batch_single_item(self, rng):
        x = rng.standard_normal((1, 4)).astype(np.float32)
        with intra_op_threads(8):
            out = parallel_over_batch(lambda chunk: chunk * 2, x)
        np.testing.assert_array_equal(out, x * 2)
