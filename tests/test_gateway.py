"""Tests for the HTTP gateway: codec, HTTP/1.1 layer, server, lifecycle.

The codec tests pin the bitwise-exactness contract the acceptance bar
depends on; the HTTP tests drive the parser with in-memory streams (no
sockets); the server tests boot a real :class:`GatewayThread` over a real
engine serving the small conftest models and exercise routing, error
mapping (400/403/404/405/429/503/504 + Retry-After) and the graceful
drain contract: in-flight requests complete while new ones get 503.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.gateway import codec
from repro.gateway.http import (
    HTTPError,
    parse_response,
    read_request,
    render_response,
)
from repro.gateway.loadgen import LoadSpec, http_request, run_load
from repro.gateway.server import GatewayConfig, GatewayServer, GatewayThread
from repro.serving import (
    EngineConfig,
    InferenceEngine,
    QoSConfig,
    TenantConfig,
    TenantQueueFull,
    example_inputs,
)
from tests.conftest import build_chain_model, build_diamond_model


# ---------------------------------------------------------------------------
# Codec
# ---------------------------------------------------------------------------
class TestCodec:
    @pytest.mark.parametrize("dtype", ["float32", "float64", "int32", "int64"])
    def test_roundtrip_is_bitwise_exact(self, dtype, rng):
        if dtype.startswith("float"):
            array = rng.standard_normal((3, 4)).astype(dtype)
        else:
            array = rng.integers(-1000, 1000, size=(3, 4)).astype(dtype)
        # through the full JSON wire format, as the server does it
        wire = json.dumps(codec.encode_array(array)).encode()
        decoded = codec.decode_array(json.loads(wire))
        assert decoded.dtype == array.dtype
        assert decoded.shape == array.shape
        assert np.array_equal(
            decoded.view(np.uint8), array.view(np.uint8))  # bit-for-bit

    def test_extreme_float32_values_survive(self):
        array = np.array([np.finfo(np.float32).max, np.finfo(np.float32).tiny,
                          -0.0, 1e-45, np.pi], dtype=np.float32)
        wire = json.dumps(codec.encode_array(array)).encode()
        decoded = codec.decode_array(json.loads(wire))
        assert np.array_equal(decoded.view(np.uint8), array.view(np.uint8))

    def test_request_roundtrip(self, rng):
        feed = {"x": rng.standard_normal((1, 3)).astype(np.float32),
                "mask": rng.integers(0, 2, size=(1, 3)).astype(np.int64)}
        decoded = codec.decode_request(codec.encode_request(feed))
        for name, array in feed.items():
            np.testing.assert_array_equal(decoded[name], array)

    def test_nested_list_form_accepted(self):
        decoded = codec.decode_array([[1.0, 2.0], [3.0, 4.0]], "x")
        assert decoded.shape == (2, 2)
        assert decoded.dtype == np.float32

    def test_malformed_bodies_raise_codec_error(self):
        with pytest.raises(codec.CodecError):
            codec.decode_request(b"not json")
        with pytest.raises(codec.CodecError):
            codec.decode_request(b'{"outputs": {}}')
        with pytest.raises(codec.CodecError):
            codec.decode_request(b'{"inputs": {}}')
        with pytest.raises(codec.CodecError):
            codec.decode_request(
                b'{"inputs": {"x": {"data": [1, 2], "shape": [3]}}}')
        with pytest.raises(codec.CodecError):
            codec.decode_array({"shape": [1]}, "x")
        with pytest.raises(codec.CodecError):
            codec.decode_array("scalar?", "x")


# ---------------------------------------------------------------------------
# HTTP layer (in-memory streams, no sockets)
# ---------------------------------------------------------------------------
def parse(raw: bytes, max_body: int = 1 << 20):
    async def _run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, max_body=max_body)
    return asyncio.run(_run())


class TestHTTP:
    def test_parse_get(self):
        request = parse(b"GET /healthz?v=1 HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.query == "v=1"
        assert request.header("host") == "x"
        assert request.keep_alive

    def test_parse_post_with_body(self):
        request = parse(b"POST /p HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd")
        assert request.body == b"abcd"

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_connection_close_and_http10(self):
        assert not parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive
        assert not parse(b"GET / HTTP/1.0\r\n\r\n").keep_alive
        assert parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive

    def test_malformed_request_line(self):
        with pytest.raises(HTTPError) as excinfo:
            parse(b"GARBAGE\r\n\r\n")
        assert excinfo.value.status == 400

    def test_unsupported_version(self):
        with pytest.raises(HTTPError):
            parse(b"GET / HTTP/2\r\n\r\n")

    def test_chunked_rejected_with_501(self):
        with pytest.raises(HTTPError) as excinfo:
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        assert excinfo.value.status == 501

    def test_post_without_length_rejected(self):
        with pytest.raises(HTTPError) as excinfo:
            parse(b"POST / HTTP/1.1\r\n\r\n")
        assert excinfo.value.status == 400

    def test_oversize_body_rejected_with_413(self):
        with pytest.raises(HTTPError) as excinfo:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100,
                  max_body=10)
        assert excinfo.value.status == 413

    def test_render_and_parse_response(self):
        raw = render_response(429, b'{"e": 1}',
                              extra_headers={"Retry-After": "2"})
        status, headers, body = parse_response(raw)
        assert status == 429
        assert headers["retry-after"] == "2"
        assert headers["content-length"] == "8"
        assert body == b'{"e": 1}'


# ---------------------------------------------------------------------------
# Server over a real engine
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def gateway_stack():
    model = build_diamond_model()
    engine = InferenceEngine(EngineConfig(
        max_batch_size=4, max_wait_s=0.002,
        qos=QoSConfig(tenants=(TenantConfig("gold", weight=3.0),
                               TenantConfig("free", weight=1.0)))))
    server = GatewayServer(engine, {"diamond": model})
    thread = GatewayThread(server).start()
    yield engine, server, thread, model
    thread.stop()
    engine.shutdown()


def call(port, method, path, body=b"", headers=None):
    return asyncio.run(http_request("127.0.0.1", port, method, path,
                                    body=body, headers=headers or {}))


class TestGatewayServer:
    def test_healthz(self, gateway_stack):
        _, _, thread, _ = gateway_stack
        status, _, body = call(thread.port, "GET", "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["models"] == ["diamond"]

    def test_infer_matches_direct_submit_bitwise(self, gateway_stack):
        engine, _, thread, model = gateway_stack
        feed = example_inputs(model)
        reference = engine.submit(model, feed, tenant="gold").result(timeout=60)
        status, _, body = call(
            thread.port, "POST", "/v1/models/diamond/infer",
            body=codec.encode_request(feed), headers={"X-Tenant": "gold"})
        assert status == 200, body
        outputs = codec.decode_outputs(body)
        for name, ref in reference.items():
            ref = np.asarray(ref)
            assert outputs[name].dtype == ref.dtype
            assert np.array_equal(outputs[name].view(np.uint8),
                                  ref.view(np.uint8))

    def test_unknown_model_404(self, gateway_stack):
        _, _, thread, _ = gateway_stack
        status, _, body = call(thread.port, "POST", "/v1/models/nope/infer",
                               body=b'{"inputs": {"x": [1.0]}}')
        assert status == 404
        assert b"nope" in body

    def test_unknown_route_404(self, gateway_stack):
        _, _, thread, _ = gateway_stack
        assert call(thread.port, "GET", "/teapot")[0] == 404

    def test_wrong_method_405(self, gateway_stack):
        _, _, thread, _ = gateway_stack
        assert call(thread.port, "POST", "/healthz", body=b"{}")[0] == 405
        assert call(thread.port, "GET", "/v1/models/diamond/infer")[0] == 405

    def test_bad_body_400(self, gateway_stack):
        _, _, thread, _ = gateway_stack
        status, _, body = call(thread.port, "POST",
                               "/v1/models/diamond/infer", body=b"not json")
        assert status == 400
        assert b"error" in body

    def test_shape_mismatch_400(self, gateway_stack):
        _, _, thread, model = gateway_stack
        bogus = {"x": np.zeros((1, 2), dtype=np.float32)}
        status, _, _ = call(thread.port, "POST", "/v1/models/diamond/infer",
                            body=codec.encode_request(bogus))
        assert status == 400

    def test_expired_deadline_504(self, gateway_stack):
        _, _, thread, model = gateway_stack
        status, _, _ = call(thread.port, "POST", "/v1/models/diamond/infer",
                            body=codec.encode_request(example_inputs(model)),
                            headers={"X-Deadline-S": "0"})
        assert status == 504

    def test_malformed_deadline_400(self, gateway_stack):
        _, _, thread, model = gateway_stack
        status, _, _ = call(thread.port, "POST", "/v1/models/diamond/infer",
                            body=codec.encode_request(example_inputs(model)),
                            headers={"X-Deadline-S": "soon"})
        assert status == 400

    def test_metrics_exposition(self, gateway_stack):
        _, _, thread, _ = gateway_stack
        status, headers, body = call(thread.port, "GET", "/metrics")
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        for family in (b"gateway_requests_total", b"gateway_request_seconds",
                       b"qos_admitted_total", b"serving_cached_artifacts"):
            assert family in body, family

    def test_queue_full_maps_to_429_with_retry_after(self, gateway_stack):
        engine, server, thread, model = gateway_stack
        original = engine.submit

        def rejecting(*args, **kwargs):
            raise TenantQueueFull("tenant queue is full", retry_after_s=1.5)

        engine.submit = rejecting
        try:
            status, headers, _ = call(
                thread.port, "POST", "/v1/models/diamond/infer",
                body=codec.encode_request(example_inputs(model)))
        finally:
            engine.submit = original
        assert status == 429
        assert headers["retry-after"] == "1.5"

    def test_request_lifecycle_spans_recorded(self):
        from repro.observability import Tracer

        model = build_chain_model()
        tracer = Tracer()
        engine = InferenceEngine(
            EngineConfig(max_batch_size=2, qos=QoSConfig()), tracer=tracer)
        server = GatewayServer(engine, {"chain": model})
        try:
            with GatewayThread(server) as thread:
                status, _, _ = call(
                    thread.port, "POST", "/v1/models/chain/infer",
                    body=codec.encode_request(example_inputs(model)))
                assert status == 200
        finally:
            engine.shutdown()
        cats = {event.name for event in tracer.events()}
        for name in ("gateway.request", "qos.admit", "qos.queue",
                     "batch.execute", "batch.respond"):
            assert name in cats, name


class TestGracefulDrain:
    def test_inflight_completes_while_new_requests_get_503(self):
        """The drain contract: begin_drain() 503s new work, yet a request
        accepted *before* the drain still returns its real answer."""
        model = build_chain_model()
        engine = InferenceEngine(EngineConfig(max_batch_size=2))
        server = GatewayServer(engine, {"chain": model})
        thread = GatewayThread(server).start()
        feed = example_inputs(model)
        reference = engine.infer(model, feed)

        release = threading.Event()
        original = engine.submit

        def held_submit(*args, **kwargs):
            inner = original(*args, **kwargs)
            outer: Future = Future()

            def _forward():
                release.wait(timeout=10)
                outer.set_result(inner.result(timeout=10))
            threading.Thread(target=_forward, daemon=True).start()
            return outer

        engine.submit = held_submit
        results = {}

        def client():
            results["inflight"] = call(
                thread.port, "POST", "/v1/models/chain/infer",
                body=codec.encode_request(feed))

        try:
            worker = threading.Thread(target=client)
            worker.start()
            # Wait until the request is inside the gateway, then drain.
            deadline = time.monotonic() + 5
            while server._active == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server._active == 1
            thread.begin_drain()
            time.sleep(0.05)

            engine.submit = original
            status, _, _ = call(thread.port, "POST",
                                "/v1/models/chain/infer",
                                body=codec.encode_request(feed))
            assert status == 503  # new work rejected mid-drain
            status, _, body = call(thread.port, "GET", "/healthz")
            assert status == 503
            assert json.loads(body)["status"] == "draining"

            release.set()  # let the in-flight request finish
            worker.join(timeout=10)
            status, _, body = results["inflight"]
            assert status == 200
            outputs = codec.decode_outputs(body)
            for name, ref in reference.items():
                np.testing.assert_array_equal(outputs[name], np.asarray(ref))
            assert thread.stop()  # clean shutdown: nothing dropped
        finally:
            release.set()
            engine.submit = original
            thread.stop()
            engine.shutdown()


class TestOpenLoopHarness:
    def test_small_burst_no_drops_and_fair_outcomes(self):
        model = build_diamond_model()
        engine = InferenceEngine(EngineConfig(
            max_batch_size=4, max_wait_s=0.002,
            qos=QoSConfig(tenants=(TenantConfig("gold", weight=3.0),
                                   TenantConfig("free", weight=1.0)))))
        server = GatewayServer(engine, {"diamond": model})
        body = codec.encode_request(example_inputs(model))
        try:
            engine.warmup(model)
            with GatewayThread(server) as thread:
                report = asyncio.run(run_load(
                    "127.0.0.1", thread.port,
                    [LoadSpec("gold", "diamond", body, rate_rps=40.0),
                     LoadSpec("free", "diamond", body, rate_rps=15.0)],
                    duration_s=1.0, seed=7))
                assert thread.stop()
        finally:
            engine.shutdown()
        assert report.total_dropped == 0
        assert report.total_ok > 0
        for name in ("gold", "free"):
            tenant = report.tenants[name]
            assert tenant.sent == (tenant.ok + tenant.rejected
                                   + tenant.expired_504 + tenant.other_status)
        assert "gold" in report.render()
