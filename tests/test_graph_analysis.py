"""Tests for the dataflow graph, traversal, cost model, critical path and metrics."""

from __future__ import annotations

import pytest

from repro.graph import (
    DEFAULT_COST_MODEL,
    CostModel,
    compute_distance_to_end,
    compute_metrics,
    critical_path,
    critical_path_length,
    graph_levels,
    model_to_dataflow,
    potential_parallelism,
    topological_sort,
)
from repro.graph.critical_path import compute_distance_from_start, path_cost
from repro.graph.dataflow import DataflowGraph
from repro.graph.traversal import CycleError, ancestors, descendants, reachable_from, reaches
from repro.graph.visualize import clusters_to_dot, to_dot
from repro.ir.node import OpNode

from tests.conftest import make_dataflow


# ---------------------------------------------------------------------------
# DataflowGraph structure
# ---------------------------------------------------------------------------
class TestDataflowGraph:
    def test_add_and_query(self):
        dfg = make_dataflow([("a", "b"), ("b", "c"), ("a", "c")])
        assert len(dfg) == 3
        assert dfg.num_edges() == 3
        assert dfg.successors("a") == ["b", "c"]
        assert dfg.predecessors("c") == ["b", "a"]
        assert dfg.source_nodes() == ["a"]
        assert dfg.sink_nodes() == ["c"]

    def test_duplicate_node_rejected(self):
        dfg = DataflowGraph()
        dfg.add_node("a")
        with pytest.raises(ValueError):
            dfg.add_node("a")

    def test_self_edge_rejected(self):
        dfg = DataflowGraph()
        dfg.add_node("a")
        with pytest.raises(ValueError):
            dfg.add_edge("a", "a")

    def test_edge_to_unknown_node_rejected(self):
        dfg = DataflowGraph()
        dfg.add_node("a")
        with pytest.raises(KeyError):
            dfg.add_edge("a", "ghost")

    def test_remove_node_cleans_edges(self):
        dfg = make_dataflow([("a", "b"), ("b", "c")])
        dfg.remove_node("b")
        assert dfg.successors("a") == []
        assert dfg.predecessors("c") == []

    def test_copy_and_subgraph(self):
        dfg = make_dataflow([("a", "b"), ("b", "c")])
        clone = dfg.copy()
        clone.remove_node("c")
        assert "c" in dfg
        sub = dfg.subgraph(["a", "b"])
        assert len(sub) == 2 and sub.num_edges() == 1

    def test_to_networkx(self):
        dfg = make_dataflow([("a", "b")], costs={"a": 2.0})
        g = dfg.to_networkx()
        assert g.number_of_nodes() == 2
        assert g.nodes["a"]["cost"] == 2.0

    def test_model_conversion_edges(self, diamond_model):
        dfg = model_to_dataflow(diamond_model)
        assert len(dfg) == diamond_model.num_nodes
        # The stem relu feeds both branches: out-degree 2 somewhere.
        assert max(dfg.out_degree(n) for n in dfg.node_names()) >= 2


# ---------------------------------------------------------------------------
# traversal
# ---------------------------------------------------------------------------
class TestTraversal:
    def test_topological_order_respects_edges(self):
        dfg = make_dataflow([("a", "b"), ("b", "c"), ("a", "d"), ("d", "c")])
        order = topological_sort(dfg)
        assert order.index("a") < order.index("b") < order.index("c")
        assert order.index("d") < order.index("c")

    def test_cycle_detected(self):
        dfg = DataflowGraph()
        for n in "abc":
            dfg.add_node(n)
        dfg.add_edge("a", "b")
        dfg.add_edge("b", "c")
        # create a cycle directly in the adjacency structures
        dfg.add_edge("c", "a")
        with pytest.raises(CycleError):
            topological_sort(dfg)

    def test_ancestors_descendants(self):
        dfg = make_dataflow([("a", "b"), ("b", "c"), ("x", "c")])
        assert ancestors(dfg, "c") == {"a", "b", "x"}
        assert descendants(dfg, "a") == {"b", "c"}
        assert reachable_from(dfg, ["x"]) == {"x", "c"}
        assert reaches(dfg, ["b"]) == {"a", "b"}

    def test_levels(self):
        dfg = make_dataflow([("a", "b"), ("b", "c"), ("a", "c")])
        levels = graph_levels(dfg)
        assert levels == {"a": 0, "b": 1, "c": 2}


# ---------------------------------------------------------------------------
# cost model
# ---------------------------------------------------------------------------
class TestCostModel:
    def test_elementwise_costs_one(self):
        cm = CostModel()
        assert cm.node_cost(OpNode("Relu", ["x"], ["y"])) == 1.0
        assert cm.node_cost(OpNode("Add", ["a", "b"], ["c"])) == 1.0

    def test_shape_ops_cost_zero(self):
        cm = CostModel()
        assert cm.node_cost(OpNode("Shape", ["x"], ["y"])) == 0.0
        assert cm.node_cost(OpNode("Identity", ["x"], ["y"])) == 0.0

    def test_conv_kernel_buckets(self):
        cm = CostModel(conv_channel_scaling=False)
        small = OpNode.create("Conv", ["x", "w"], ["y"], kernel_shape=[1, 1])
        big = OpNode.create("Conv", ["x", "w"], ["y"], kernel_shape=[7, 7])
        assert cm.node_cost(big) > cm.node_cost(small)

    def test_conv_larger_than_biggest_bucket(self):
        cm = CostModel(conv_channel_scaling=False)
        huge = OpNode.create("Conv", ["x", "w"], ["y"], kernel_shape=[13, 13])
        assert cm.node_cost(huge) == max(cm.conv_kernel_costs.values())

    def test_depthwise_discount(self):
        cm = CostModel(conv_channel_scaling=False)
        dense = OpNode.create("Conv", ["x", "w"], ["y"], kernel_shape=[3, 3], group=1)
        depthwise = OpNode.create("Conv", ["x", "w"], ["y"], kernel_shape=[3, 3], group=16)
        assert cm.node_cost(depthwise) < cm.node_cost(dense)

    def test_override_wins(self):
        cm = DEFAULT_COST_MODEL.with_overrides(Relu=42.0)
        assert cm.node_cost(OpNode("Relu", ["x"], ["y"])) == 42.0

    def test_gemm_flops_scaling(self, diamond_model):
        graph = diamond_model.graph
        gemm = next(n for n in graph.nodes if n.op_type == "Gemm")
        cost = DEFAULT_COST_MODEL.node_cost(gemm, graph)
        assert cost >= 2.0

    def test_unregistered_op_uses_default(self):
        cm = CostModel()
        assert cm.node_cost(OpNode("MyCustomOp", ["x"], ["y"])) == cm.default_cost


# ---------------------------------------------------------------------------
# critical path / parallelism
# ---------------------------------------------------------------------------
class TestCriticalPath:
    def test_chain_distance(self):
        dfg = make_dataflow([("a", "b"), ("b", "c")], costs={"a": 1, "b": 2, "c": 3})
        dist = compute_distance_to_end(dfg)
        # c: 3; b: 2 + 1(edge) + 3 = 6; a: 1 + 1 + 6 = 8
        assert dist == {"c": 3.0, "b": 6.0, "a": 8.0}
        fwd = compute_distance_from_start(dfg)
        assert fwd["c"] == 8.0

    def test_critical_path_picks_heavier_branch(self):
        dfg = make_dataflow(
            [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
            costs={"a": 1, "b": 10, "c": 1, "d": 1},
        )
        path = critical_path(dfg)
        assert path == ["a", "b", "d"]
        assert critical_path_length(dfg) == pytest.approx(1 + 1 + 10 + 1 + 1)
        assert path_cost(dfg, path) == critical_path_length(dfg)

    def test_empty_graph(self):
        dfg = DataflowGraph()
        assert critical_path(dfg) == []
        assert critical_path_length(dfg) == 0.0

    def test_parallelism_chain_below_one(self, chain_model):
        report = potential_parallelism(chain_model)
        assert report.parallelism < 1.0

    def test_parallelism_wide_above_one(self, wide_model):
        report = potential_parallelism(wide_model)
        assert report.parallelism > 1.0

    def test_parallelism_definition(self, diamond_model):
        report = potential_parallelism(diamond_model)
        assert report.parallelism == pytest.approx(
            report.total_node_cost / report.critical_path_cost)

    def test_metrics_rows(self, diamond_model):
        metrics = compute_metrics(diamond_model)
        row = metrics.as_row()
        assert row["nodes"] == diamond_model.num_nodes
        assert row["max_fan_out"] >= 2
        assert metrics.depth >= 4


# ---------------------------------------------------------------------------
# visualization
# ---------------------------------------------------------------------------
class TestVisualize:
    def test_dot_contains_nodes_and_edges(self, diamond_dfg):
        dot = to_dot(diamond_dfg)
        assert "digraph" in dot
        assert "->" in dot
        for node in diamond_dfg.node_names()[:3]:
            assert node in dot

    def test_cluster_coloring(self, diamond_dfg):
        from repro.clustering import linear_clustering

        clustering = linear_clustering(diamond_dfg)
        dot = clusters_to_dot(diamond_dfg, clustering.clusters)
        assert "fillcolor" in dot
