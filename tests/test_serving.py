"""Tests for the serving subsystem: engine, micro-batcher, artifact cache.

Covers the batcher's edge cases (single request flushed at the wait
deadline, mismatched non-batch shapes rejected cleanly, cache eviction when
capacity is exceeded), compile-exactly-once caching, warm-pool reuse, and
numerical agreement of batched serving with the sequential reference.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.pipeline import (
    PipelineConfig,
    artifact_fingerprint,
    config_fingerprint,
    model_fingerprint,
    ramiel_compile,
)
from repro.runtime.worker_pool import WarmExecutorPool
from repro.serving import (
    ArtifactCache,
    ArtifactKey,
    BatcherClosed,
    BatchPolicy,
    EngineConfig,
    InferenceEngine,
    MicroBatcher,
    ShapeMismatchError,
    example_inputs,
    scatter_outputs,
)
from tests.conftest import build_chain_model, build_diamond_model


def tiny_engine(**overrides) -> InferenceEngine:
    defaults = dict(max_batch_size=4, max_wait_s=0.02, cache_capacity=4)
    defaults.update(overrides)
    return InferenceEngine(EngineConfig(**defaults))


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------
class TestFingerprints:
    def test_identical_models_share_fingerprint(self):
        assert model_fingerprint(build_diamond_model()) == \
            model_fingerprint(build_diamond_model())

    def test_different_models_differ(self):
        assert model_fingerprint(build_diamond_model()) != \
            model_fingerprint(build_chain_model())

    def test_config_fields_change_fingerprint(self):
        base = config_fingerprint(PipelineConfig())
        assert config_fingerprint(PipelineConfig(clone=True)) != base
        assert config_fingerprint(PipelineConfig(num_cores=4)) != base

    def test_output_dir_and_generate_code_ignored(self):
        assert config_fingerprint(PipelineConfig(output_dir="/tmp/x",
                                                 generate_code=False)) == \
            config_fingerprint(PipelineConfig())

    def test_artifact_fingerprint_includes_signature(self):
        model = build_diamond_model()
        assert artifact_fingerprint(model, input_signature=(("x", "float32", (3,)),)) != \
            artifact_fingerprint(model, input_signature=(("x", "float32", (4,)),))

    def test_memoized_fingerprint_not_persisted_through_serialization(self):
        """A saved/reloaded/mutated model must re-derive its fingerprint,
        not trust the stale memo — else the serving cache serves the wrong
        compiled artifact."""
        import tempfile
        from pathlib import Path

        from repro.ir.serialization import load_model, save_model

        model = build_diamond_model()
        original_fp = model_fingerprint(model)  # memoized into metadata
        with tempfile.TemporaryDirectory() as tmp:
            path = save_model(model, Path(tmp) / "m.json")
            loaded = load_model(path)
        assert "ramiel.fingerprint" not in loaded.metadata
        assert model_fingerprint(loaded) == original_fp  # content unchanged
        name = next(iter(loaded.graph.initializers))
        loaded.graph.initializers[name] = loaded.graph.initializers[name] + 1.0
        loaded.metadata.pop("ramiel.fingerprint", None)
        assert model_fingerprint(loaded) != original_fp


# ---------------------------------------------------------------------------
# Micro-batcher
# ---------------------------------------------------------------------------
class TestMicroBatcher:
    def test_single_request_flushed_at_deadline(self):
        """One lone in-flight request must not wait for a full batch."""
        batches = []

        def run_batch(stacked):
            batches.append({k: v.shape for k, v in stacked.items()})
            return {"y": stacked["x"] * 2}

        batcher = MicroBatcher(run_batch,
                               policy=BatchPolicy(max_batch_size=64, max_wait_s=0.01))
        try:
            start = time.perf_counter()
            fut = batcher.submit({"x": np.ones((1, 4))}, batch_len=1)
            result = fut.result(timeout=5.0)
            elapsed = time.perf_counter() - start
        finally:
            batcher.close()
        assert result["y"].shape == (1, 4)
        assert batches == [{"x": (1, 4)}]
        # flushed by the deadline, far before any "wait for 64 requests" hang
        assert elapsed < 2.0

    def test_concurrent_requests_are_fused(self):
        sizes = []

        def run_batch(stacked):
            sizes.append(stacked["x"].shape[0])
            return {"y": stacked["x"] + 1}

        batcher = MicroBatcher(run_batch,
                               policy=BatchPolicy(max_batch_size=8, max_wait_s=0.2))
        try:
            futures = [batcher.submit({"x": np.full((1, 2), i, dtype=np.float64)},
                                      batch_len=1)
                       for i in range(8)]
            results = [f.result(timeout=10.0) for f in futures]
        finally:
            batcher.close()
        # every request got its own row back, in order
        for i, result in enumerate(results):
            assert np.array_equal(result["y"], np.full((1, 2), i + 1))
        assert max(sizes) > 1  # at least one real fusion happened
        assert sum(sizes) == 8

    def test_batch_failure_fails_every_cobatched_request(self):
        def run_batch(stacked):
            raise ValueError("kernel exploded")

        batcher = MicroBatcher(run_batch,
                               policy=BatchPolicy(max_batch_size=4, max_wait_s=0.05))
        try:
            futures = [batcher.submit({"x": np.ones((1, 2))}, batch_len=1)
                       for _ in range(3)]
            for fut in futures:
                with pytest.raises(ValueError, match="kernel exploded"):
                    fut.result(timeout=5.0)
        finally:
            batcher.close()

    def test_close_fails_pending_and_rejects_new(self):
        release = threading.Event()

        def run_batch(stacked):
            release.wait(timeout=5.0)
            return {"y": stacked["x"]}

        batcher = MicroBatcher(run_batch,
                               policy=BatchPolicy(max_batch_size=1, max_wait_s=0.0))
        first = batcher.submit({"x": np.ones(1)}, batch_len=1)  # occupies the collector
        time.sleep(0.05)
        second = batcher.submit({"x": np.ones(1)}, batch_len=1)  # stays pending
        closer = threading.Thread(target=batcher.close)
        closer.start()
        release.set()
        closer.join(timeout=5.0)
        assert first.result(timeout=5.0)["y"].shape == (1,)
        with pytest.raises(BatcherClosed):
            second.result(timeout=5.0)
        with pytest.raises(BatcherClosed):
            batcher.submit({"x": np.ones(1)}, batch_len=1)

    def test_scatter_handles_unbatched_outputs(self):
        class Req:
            def __init__(self, n):
                self.batch_len = n

        outputs = {"batched": np.arange(6).reshape(3, 2), "scalar": np.float64(7.0)}
        parts = scatter_outputs(outputs, [Req(1), Req(2)])
        assert np.array_equal(parts[0]["batched"], [[0, 1]])
        assert np.array_equal(parts[1]["batched"], [[2, 3], [4, 5]])
        assert parts[0]["scalar"] == parts[1]["scalar"] == 7.0


# ---------------------------------------------------------------------------
# Artifact cache
# ---------------------------------------------------------------------------
def _key(tag: str) -> ArtifactKey:
    return ArtifactKey(tag, "cfg", ())


class TestArtifactCache:
    def test_compile_exactly_once_under_concurrency(self):
        cache = ArtifactCache(capacity=4)
        compiles = []
        barrier = threading.Barrier(4)
        results = []

        def factory():
            compiles.append(1)
            time.sleep(0.05)
            return "artifact"

        def lookup():
            barrier.wait()
            artifact, _ = cache.get_or_create(_key("m"), factory)
            results.append(artifact)

        threads = [threading.Thread(target=lookup) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert len(compiles) == 1
        assert results == ["artifact"] * 4
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 3

    def test_eviction_when_capacity_exceeded(self):
        evicted = []
        cache = ArtifactCache(capacity=2,
                              on_evict=lambda key, art: evicted.append(key))
        for tag in ("a", "b", "c"):
            cache.get_or_create(_key(tag), lambda tag=tag: f"artifact-{tag}")
        assert len(cache) == 2
        assert evicted == [_key("a")]  # LRU order
        assert cache.stats()["evictions"] == 1
        # the evicted key recompiles on next sight
        _, hit = cache.get_or_create(_key("a"), lambda: "artifact-a2")
        assert not hit

    def test_lru_order_updated_on_hit(self):
        evicted = []
        cache = ArtifactCache(capacity=2,
                              on_evict=lambda key, art: evicted.append(key))
        cache.get_or_create(_key("a"), lambda: "a")
        cache.get_or_create(_key("b"), lambda: "b")
        cache.get_or_create(_key("a"), lambda: "never")  # refresh "a"
        cache.get_or_create(_key("c"), lambda: "c")
        assert evicted == [_key("b")]

    def test_failed_factory_is_retryable(self):
        cache = ArtifactCache(capacity=2)
        with pytest.raises(RuntimeError, match="boom"):
            cache.get_or_create(_key("a"), lambda: (_ for _ in ()).throw(
                RuntimeError("boom")))
        artifact, hit = cache.get_or_create(_key("a"), lambda: "recovered")
        assert artifact == "recovered" and not hit


# ---------------------------------------------------------------------------
# Warm executor pool
# ---------------------------------------------------------------------------
class TestWarmExecutorPool:
    def test_repeated_runs_match_sequential(self):
        model = build_diamond_model()
        result = ramiel_compile(model)
        feed = example_inputs(model, seed=3)
        reference = result.run_sequential(feed)
        with WarmExecutorPool(result.parallel_module,
                              result.optimized_model.graph.initializers) as pool:
            for _ in range(3):
                outputs = pool.run(feed, timeout=60.0)
                for name, ref in reference.items():
                    np.testing.assert_allclose(outputs[name], ref, rtol=1e-5, atol=1e-6)

    def test_closed_pool_refuses_work(self):
        model = build_diamond_model()
        result = ramiel_compile(model)
        pool = WarmExecutorPool(result.parallel_module,
                                result.optimized_model.graph.initializers)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError):
            pool.run(example_inputs(model))


# ---------------------------------------------------------------------------
# Inference engine
# ---------------------------------------------------------------------------
class TestInferenceEngine:
    def test_serving_matches_sequential_reference(self):
        model = build_diamond_model()
        reference = ramiel_compile(model)
        with tiny_engine() as engine:
            for seed in range(3):
                feed = example_inputs(model, seed=seed)
                outputs = engine.infer(model, feed)
                expected = reference.run_sequential(feed)
                for name, ref in expected.items():
                    np.testing.assert_allclose(outputs[name], ref,
                                               rtol=1e-5, atol=1e-6)

    def test_second_request_is_cache_hit_with_zero_recompilation(self):
        model = build_diamond_model()
        with tiny_engine() as engine:
            engine.infer(model, example_inputs(model, seed=0))
            engine.infer(model, example_inputs(model, seed=1))
            cache = engine.metrics.snapshot()["cache"]
        assert cache["compiles"] == 1
        assert cache["misses"] == 1
        assert cache["hits"] == 1

    def test_equivalent_rebuilt_model_is_cache_hit(self):
        """The cache keys by content, not object identity."""
        with tiny_engine() as engine:
            engine.infer(build_diamond_model(), example_inputs(build_diamond_model()))
            engine.infer(build_diamond_model(), example_inputs(build_diamond_model()))
            assert engine.metrics.snapshot()["cache"]["compiles"] == 1

    def test_concurrent_load_is_batched(self):
        model = build_diamond_model()
        with tiny_engine(max_batch_size=4, max_wait_s=0.05) as engine:
            engine.warmup(model)
            threads = []
            errors = []

            def request(seed):
                try:
                    engine.infer(model, example_inputs(model, seed=seed))
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            for seed in range(8):
                threads.append(threading.Thread(target=request, args=(seed,)))
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
            snapshot = engine.metrics.snapshot()
        assert not errors
        assert snapshot["completed"] == 9  # warmup + 8 concurrent
        assert max(snapshot["batch_histogram"]) > 1

    def test_mismatched_non_batch_shape_rejected_cleanly(self):
        model = build_diamond_model()  # declares x: (1, 3, 16, 16)
        with tiny_engine() as engine:
            with pytest.raises(ShapeMismatchError, match="axis"):
                engine.submit(model, {"x": np.zeros((1, 3, 8, 8), dtype=np.float32)})
            with pytest.raises(ShapeMismatchError, match="dimensions"):
                engine.submit(model, {"x": np.zeros((1, 3, 16), dtype=np.float32)})
            with pytest.raises(ShapeMismatchError, match="missing"):
                engine.submit(model, {})
            with pytest.raises(ShapeMismatchError, match="no inputs named"):
                engine.submit(model, {"x": np.zeros((1, 3, 16, 16), dtype=np.float32),
                                      "bogus": np.zeros(1)})
            # a clean rejection must not poison the engine for valid requests
            outputs = engine.infer(model, example_inputs(model))
            assert outputs

    def test_request_with_larger_batch_dim(self):
        model = build_diamond_model()
        with tiny_engine() as engine:
            outputs = engine.infer(model, example_inputs(model, batch_size=3))
            (name, array), = outputs.items()
            assert array.shape[0] == 3

    def test_cache_eviction_closes_artifact_and_recompiles(self):
        with tiny_engine(cache_capacity=1) as engine:
            diamond, chain = build_diamond_model(), build_chain_model()
            engine.infer(diamond, example_inputs(diamond))
            engine.infer(chain, example_inputs(chain))   # evicts diamond
            snapshot = engine.metrics.snapshot()
            assert snapshot["cache"]["evictions"] == 1
            assert engine.cache_stats()["size"] == 1
            # diamond still serves correctly — via a fresh compilation
            engine.infer(diamond, example_inputs(diamond))
            assert engine.metrics.snapshot()["cache"]["compiles"] == 3

    def test_shutdown_rejects_new_requests(self):
        model = build_diamond_model()
        engine = tiny_engine()
        engine.infer(model, example_inputs(model))
        engine.shutdown()
        with pytest.raises(RuntimeError):
            engine.submit(model, example_inputs(model))

    def test_warmup_records_no_spurious_cache_hit(self):
        model = build_diamond_model()
        with tiny_engine() as engine:
            engine.warmup(model)
            cache = engine.metrics.snapshot()["cache"]
        assert cache["misses"] == 1
        assert cache["hits"] == 0

    def test_broken_pool_is_invalidated_and_recompiled(self):
        """A wedged warm pool must not poison the artifact forever."""
        model = build_diamond_model()
        with tiny_engine(executor="pool") as engine:
            feed = example_inputs(model)
            engine.infer(model, feed)
            arrays, _, signature = engine._validate(model, feed)
            artifact = engine._artifact_for(model, signature)
            artifact.pool._broken = True  # simulate a timed-out/failed run
            with pytest.raises(RuntimeError, match="broken"):
                engine.infer(model, feed)
            # the poisoned artifact was dropped; the next request recompiles
            outputs = engine.infer(model, feed)
            assert outputs
            snapshot = engine.metrics.snapshot()["cache"]
            assert snapshot["compiles"] == 2
            assert snapshot["evictions"] == 1

    def test_request_survives_artifact_closed_under_it(self):
        """Eviction racing the submit path retries with a fresh compile."""
        model = build_diamond_model()
        with tiny_engine() as engine:
            feed = example_inputs(model)
            engine.infer(model, feed)
            arrays, _, signature = engine._validate(model, feed)
            artifact = engine._artifact_for(model, signature)
            artifact.batcher.close()  # artifact dies while still cached
            outputs = engine.infer(model, feed)  # must not raise BatcherClosed
            assert outputs
            assert engine.metrics.snapshot()["cache"]["compiles"] == 2

    def test_pool_executor_serves_correctly(self):
        """The warm-pool execution path stays a first-class alternative."""
        model = build_diamond_model()
        reference = ramiel_compile(model)
        with tiny_engine(executor="pool") as engine:
            feed = example_inputs(model, seed=2)
            outputs = engine.infer(model, feed)
            expected = reference.run_sequential(feed)
            for name, ref in expected.items():
                np.testing.assert_allclose(outputs[name], ref, rtol=1e-5, atol=1e-6)
            arrays, _, signature = engine._validate(model, feed)
            artifact = engine._artifact_for(model, signature)
            assert artifact.pool is not None and artifact.plan is None

    def test_unknown_executor_rejected_eagerly_with_registry(self):
        """A typo'd executor fails at config construction, naming the
        known registry — not deep inside dispatch."""
        with pytest.raises(ValueError, match="plan, interp, pool, process"):
            EngineConfig(executor="bogus")
        with pytest.raises(ValueError, match="backend"):
            EngineConfig(backend="bogus")

    def test_plan_executor_routes_requests_through_execution_plan(self):
        """Default serving executes via the cached ExecutionPlan."""
        model = build_diamond_model()
        with tiny_engine() as engine:
            feed = example_inputs(model)
            engine.infer(model, feed)
            arrays, _, signature = engine._validate(model, feed)
            artifact = engine._artifact_for(model, signature)
            assert artifact.plan is not None
            assert artifact.pool is None
            # the artifact's plan is the compiled result's plan, built once
            assert artifact.plan is artifact.result.execution_plan
            runs_before = artifact.plan.stats()["arena"]["reuses"]
            engine.infer(model, feed)
            assert artifact.plan.stats()["arena"]["reuses"] >= runs_before

    def test_no_per_request_graph_executor_construction(self, monkeypatch):
        """Serving requests must not build fresh GraphExecutors (or plans).

        The interpreter is only allowed during compilation (constant
        folding); once the artifact is warm, N requests construct zero
        GraphExecutors and zero ExecutionPlans.
        """
        import repro.runtime.executor as executor_mod
        import repro.runtime.plan as plan_mod

        model = build_diamond_model()
        counters = {"executor": 0, "plan": 0}
        orig_executor_init = executor_mod.GraphExecutor.__init__
        orig_plan_init = plan_mod.ExecutionPlan.__init__

        def counting_executor_init(self, *args, **kwargs):
            counters["executor"] += 1
            return orig_executor_init(self, *args, **kwargs)

        def counting_plan_init(self, *args, **kwargs):
            counters["plan"] += 1
            return orig_plan_init(self, *args, **kwargs)

        monkeypatch.setattr(executor_mod.GraphExecutor, "__init__",
                            counting_executor_init)
        monkeypatch.setattr(plan_mod.ExecutionPlan, "__init__",
                            counting_plan_init)
        with tiny_engine() as engine:
            engine.warmup(model)
            counters["executor"] = 0
            counters["plan"] = 0
            for seed in range(4):
                engine.infer(model, example_inputs(model, seed=seed))
        assert counters["executor"] == 0
        assert counters["plan"] == 0

    def test_failed_requests_excluded_from_latency_percentiles(self):
        def run_batch(stacked):
            raise ValueError("boom")

        from repro.serving import ServingMetrics

        metrics = ServingMetrics()
        batcher = MicroBatcher(run_batch, policy=BatchPolicy(max_batch_size=2,
                                                             max_wait_s=0.01),
                               metrics=metrics)
        try:
            futures = [batcher.submit({"x": np.ones(1)}, batch_len=1)
                       for _ in range(2)]
            for fut in futures:
                with pytest.raises(ValueError):
                    fut.result(timeout=5.0)
        finally:
            batcher.close()
        snapshot = metrics.snapshot()
        assert snapshot["failed"] == 2
        assert snapshot["completed"] == 0
        assert snapshot["latency_ms"]["p50"] is None


# ---------------------------------------------------------------------------
# Session-era serving: pinned staging, plan-path watchdog, interp executor
# ---------------------------------------------------------------------------
class TestSessionServing:
    def test_artifacts_hold_sessions(self):
        model = build_diamond_model()
        with tiny_engine() as engine:
            feed = example_inputs(model)
            engine.infer(model, feed)
            _, _, signature = engine._validate(model, feed)
            artifact = engine._artifact_for(model, signature)
            assert artifact.session is not None
            assert artifact.session.executor == "plan"
            assert artifact.watchdog is not None
            assert artifact.plan is artifact.session.plan  # compat accessor

    def test_interp_executor_serves_correctly(self):
        model = build_diamond_model()
        reference = ramiel_compile(model)
        with tiny_engine(executor="interp") as engine:
            feed = example_inputs(model, seed=3)
            outputs = engine.infer(model, feed)
            expected = reference.session(executor="interp").run(feed)
            for name, ref in expected.items():
                np.testing.assert_array_equal(outputs[name], ref)
            _, _, signature = engine._validate(model, feed)
            artifact = engine._artifact_for(model, signature)
            assert artifact.session.interpreter is not None
            assert artifact.plan is None and artifact.pool is None

    def test_pinned_stacker_reuses_staging_and_matches_concatenate(self):
        """Fused batches land in session-pinned staging buffers: no new
        staging allocation once the largest batch has been seen, and the
        stacked feed is exactly what np.concatenate would have produced."""
        from repro.serving.batching import _Request, stack_requests
        from repro.serving.engine import _PinnedStacker
        from concurrent.futures import Future

        model = build_diamond_model()
        with tiny_engine() as engine:
            feed = example_inputs(model)
            engine.infer(model, feed)
            _, _, signature = engine._validate(model, feed)
            artifact = engine._artifact_for(model, signature)
            stacker = artifact.batcher._stack
            assert isinstance(stacker, _PinnedStacker)

            def requests(seed):
                return [
                    _Request(inputs=example_inputs(model, seed=seed + i),
                             batch_len=1, future=Future(), submit_t=0.0)
                    for i in range(3)
                ]

            batch = requests(seed=10)
            binding = stacker(batch)
            expected = stack_requests(batch)
            staged = {name: binding.inputs[name] for name in expected}
            for name, ref in expected.items():
                np.testing.assert_array_equal(staged[name], ref)
            first_buffers = {id(buf) for buf in stacker.staging_buffers}
            # a second batch of the same shape reuses the pinned staging
            batch2 = requests(seed=20)
            binding2 = stacker(batch2)
            assert {id(buf) for buf in stacker.staging_buffers} == first_buffers
            expected2 = stack_requests(batch2)
            for name, ref in expected2.items():
                np.testing.assert_array_equal(binding2.inputs[name], ref)
            # and the bound run agrees with the plain-feed run
            outputs = artifact.session.run_with_binding(binding2)
            reference = artifact.session.run(expected2)
            for name, ref in reference.items():
                np.testing.assert_array_equal(outputs[name], ref)

    def test_concurrent_requests_through_pinned_staging_stay_private(self):
        """Fused requests get private output slices: a later batch reusing
        the staging buffers must not corrupt earlier responses."""
        model = build_diamond_model()
        with tiny_engine(max_wait_s=0.05) as engine:
            engine.warmup(model)
            futures = [engine.submit(model, example_inputs(model, seed=s))
                       for s in range(6)]
            first = [dict(f.result(timeout=10.0)) for f in futures]
            snapshots = [{n: a.copy() for n, a in out.items()} for out in first]
            # drive more traffic over the same staging buffers
            for s in range(6, 12):
                engine.infer(model, example_inputs(model, seed=s))
            for out, snap in zip(first, snapshots):
                for name, array in out.items():
                    np.testing.assert_array_equal(array, snap[name])
            # per-request results match the unbatched reference
            for s, out in enumerate(first):
                reference = engine.infer(model, example_inputs(model, seed=s))
                for name, ref in reference.items():
                    np.testing.assert_allclose(out[name], ref,
                                               rtol=1e-5, atol=1e-6)

    def test_castable_dtype_requests_still_serve_when_fused(self):
        """Requests whose dtype passes serving validation but not the
        binding's strict declared-dtype check must keep serving via the
        stacker's plain-feed fallback, fused batches included."""
        model = build_diamond_model()  # declares float32 input
        with tiny_engine(max_wait_s=0.05) as engine:
            feeds = [{"x": example_inputs(model, seed=s)["x"].astype(np.float64)}
                     for s in range(4)]
            engine.infer(model, feeds[0])  # compile the float64 artifact
            futures = [engine.submit(model, feed) for feed in feeds]
            results = [f.result(timeout=10.0) for f in futures]
            for feed, out in zip(feeds, results):
                reference = engine.infer(model, feed)  # single-request path
                for name, ref in reference.items():
                    np.testing.assert_allclose(out[name], ref,
                                               rtol=1e-5, atol=1e-6)

    def test_plan_path_watchdog_times_out_and_invalidates(self):
        """A stuck batch on the default plan path must fail the request,
        break the session and invalidate the artifact — the pool path's
        recovery semantics, ported to in-process executors."""
        model = build_diamond_model()
        with tiny_engine(timeout_s=0.2) as engine:
            feed = example_inputs(model)
            engine.infer(model, feed)
            _, _, signature = engine._validate(model, feed)
            artifact = engine._artifact_for(model, signature)

            def stuck_run(stacked, **kwargs):
                time.sleep(1.5)
                return {}

            artifact.session.run = stuck_run  # wedge the next batch
            with pytest.raises(RuntimeError, match="timed out"):
                engine.infer(model, feed)
            assert artifact.session.broken
            assert artifact.watchdog.broken
            # the poisoned artifact was dropped; the next request recompiles
            outputs = engine.infer(model, feed)
            assert outputs
            snapshot = engine.metrics.snapshot()["cache"]
            assert snapshot["compiles"] == 2
            assert snapshot["evictions"] == 1

    def test_broken_watchdog_refuses_further_batches(self):
        from repro.serving.engine import _BatchWatchdog

        watchdog = _BatchWatchdog("test")
        with pytest.raises(RuntimeError, match="timed out"):
            watchdog.run(lambda _: time.sleep(1.0), None, timeout=0.05)
        assert watchdog.broken
        with pytest.raises(RuntimeError, match="broken"):
            watchdog.run(lambda _: {}, None, timeout=1.0)
        watchdog.close()
