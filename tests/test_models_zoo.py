"""Tests for the model zoo: structure, validity, executability, Table-I bands."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import compute_metrics, model_to_dataflow, potential_parallelism
from repro.ir.validation import validate_model
from repro.models import (
    MODEL_REGISTRY,
    PAPER_TABLE1,
    build_model,
    list_models,
    paper_reference,
)
from repro.runtime import execute_model

ALL_MODELS = list_models()


class TestRegistry:
    def test_all_paper_models_registered(self):
        assert set(ALL_MODELS) == set(PAPER_TABLE1)

    def test_aliases(self):
        assert build_model("yolo", variant="small").name == "yolo_v5"
        assert build_model("inception", variant="small").name == "inception_v3"

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            build_model("resnet9000")

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            MODEL_REGISTRY["squeezenet"].build(variant="huge")

    def test_paper_reference_tables(self):
        assert paper_reference("table1")["nasnet"]["parallelism"] == 3.7
        assert paper_reference("table2")["squeezenet"]["after"] == 2
        with pytest.raises(KeyError):
            paper_reference("table99")


@pytest.mark.parametrize("name", ALL_MODELS)
class TestEveryModel:
    def test_builds_and_validates(self, name):
        model = build_model(name, variant="small")
        validate_model(model)
        assert model.num_nodes > 10

    def test_small_variant_executes(self, name, rng):
        model = build_model(name, variant="small")
        inputs = {}
        for info in model.graph.inputs:
            shape = tuple(1 if d is None else d for d in info.shape)
            if info.dtype.value.startswith("int"):
                inputs[info.name] = rng.integers(0, 50, size=shape).astype(np.int64)
            else:
                inputs[info.name] = rng.standard_normal(shape).astype(np.float32)
        outputs = execute_model(model, inputs)
        assert outputs
        for value in outputs.values():
            assert np.isfinite(value).all()

    def test_deterministic_build(self, name):
        a = build_model(name, variant="small")
        b = build_model(name, variant="small")
        assert [n.op_type for n in a.graph.nodes] == [n.op_type for n in b.graph.nodes]


class TestTable1Bands:
    """Full-size graphs land in the paper's Table-I bands (shape, not exact values)."""

    @pytest.fixture(scope="class")
    def metrics(self):
        return {name: compute_metrics(build_model(name)) for name in ALL_MODELS}

    def test_node_counts_within_tolerance(self, metrics):
        for name, met in metrics.items():
            paper_nodes = PAPER_TABLE1[name]["nodes"]
            assert 0.5 * paper_nodes <= met.num_nodes <= 1.5 * paper_nodes, (
                f"{name}: {met.num_nodes} nodes vs paper {paper_nodes}")

    def test_squeezenet_below_one(self, metrics):
        assert metrics["squeezenet"].parallelism < 1.0

    def test_nasnet_has_highest_parallelism(self, metrics):
        nasnet = metrics["nasnet"].parallelism
        assert nasnet > 2.0
        assert all(nasnet > met.parallelism for name, met in metrics.items()
                   if name != "nasnet")

    def test_inception_band(self, metrics):
        for name in ("inception_v3", "inception_v4", "googlenet"):
            assert 1.1 <= metrics[name].parallelism <= 1.7, name

    def test_ordering_roughly_matches_paper(self, metrics):
        # Models the paper ranks clearly above Squeezenet must also rank above it here.
        squeeze = metrics["squeezenet"].parallelism
        for name in ("googlenet", "inception_v3", "inception_v4", "retinanet", "nasnet"):
            assert metrics[name].parallelism > squeeze, name

    def test_squeezenet_node_count_exact(self, metrics):
        assert metrics["squeezenet"].num_nodes == 66


class TestModelStructure:
    def test_squeezenet_fire_modules(self):
        model = build_model("squeezenet")
        hist = model.graph.op_type_histogram()
        assert hist["Conv"] == 26      # stem + 8 fire modules x 3 + classifier
        assert hist["Concat"] == 8     # one concat per fire module

    def test_bert_has_attention_structure(self):
        model = build_model("bert", variant="small", num_layers=2)
        hist = model.graph.op_type_histogram()
        assert hist["Softmax"] >= 2          # one per layer
        assert hist["MatMul"] >= 12          # QKV + scores + context + proj per layer
        assert hist.get("Erf", 0) >= 2       # decomposed GELU

    def test_yolo_has_prunable_grid_chains(self):
        model = build_model("yolo_v5", variant="small")
        hist = model.graph.op_type_histogram()
        assert hist.get("Shape", 0) >= 3     # one grid chain per detect level
        assert hist.get("Resize", 0) == 2    # FPN upsampling

    def test_nasnet_fan_out(self):
        model = build_model("nasnet", variant="small")
        dfg = model_to_dataflow(model)
        assert max(dfg.out_degree(n) for n in dfg.node_names()) >= 5

    def test_retinanet_two_outputs(self):
        model = build_model("retinanet", variant="small")
        assert len(model.graph.outputs) == 2

    def test_channel_scale_changes_width_not_topology(self):
        a = build_model("googlenet", channel_scale=0.25)
        b = build_model("googlenet", channel_scale=0.5)
        assert a.num_nodes == b.num_nodes
        wa = a.graph.initializers[next(iter(a.graph.initializers))]
        wb = b.graph.initializers[next(iter(b.graph.initializers))]
        assert wa.shape != wb.shape or wa.size != wb.size
