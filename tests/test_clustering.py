"""Tests for linear clustering, merging, cloning, hyperclustering and scheduling."""

from __future__ import annotations

import pytest

from repro.clustering import (
    ScheduleSimulator,
    SimulationConfig,
    build_hyperclusters,
    build_switched_hyperclusters,
    clone_cheap_producers,
    linear_clustering,
    merge_clusters_fixpoint,
    merge_clusters_once,
    replicate_for_batch,
)
from repro.clustering.cluster import Cluster, Clustering
from repro.clustering.schedule import intra_op_node_scale
from repro.clustering.validation import (
    ClusteringError,
    check_acyclic_clusters,
    check_linear,
    check_partition,
    validate_clustering,
)
from repro.graph import compute_distance_to_end, critical_path, model_to_dataflow
from repro.baselines import list_schedule, sequential_clustering

from tests.conftest import make_dataflow


class TestLinearClustering:
    def test_first_cluster_is_critical_path(self):
        dfg = make_dataflow(
            [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
            costs={"a": 1, "b": 10, "c": 1, "d": 1},
        )
        clustering = linear_clustering(dfg)
        assert clustering.clusters[0].nodes == critical_path(dfg) == ["a", "b", "d"]
        assert clustering.clusters[1].nodes == ["c"]

    def test_partition_and_linearity(self, diamond_dfg):
        clustering = linear_clustering(diamond_dfg)
        check_partition(clustering)
        check_linear(clustering)
        check_acyclic_clusters(clustering)

    def test_chain_is_single_cluster(self, chain_model):
        dfg = model_to_dataflow(chain_model)
        clustering = linear_clustering(dfg)
        assert clustering.num_clusters == 1
        assert len(clustering.clusters[0]) == len(dfg)

    def test_wide_graph_one_cluster_per_branch(self, wide_model):
        dfg = model_to_dataflow(wide_model)
        clustering = linear_clustering(dfg)
        # stem+one branch+concat form the first cluster, remaining branches
        # one cluster each (each branch is conv+relu).
        assert clustering.num_clusters == 4

    def test_deterministic(self, diamond_dfg):
        c1 = linear_clustering(diamond_dfg)
        c2 = linear_clustering(diamond_dfg)
        assert [c.nodes for c in c1.clusters] == [c.nodes for c in c2.clusters]

    def test_empty_graph(self):
        from repro.graph.dataflow import DataflowGraph

        clustering = linear_clustering(DataflowGraph("empty"))
        assert clustering.num_clusters == 0


class TestClusterDataStructures:
    def test_cluster_spans(self):
        dfg = make_dataflow([("a", "b"), ("b", "c")], costs={"a": 1, "b": 1, "c": 1})
        dist = compute_distance_to_end(dfg)
        cluster = Cluster(0, ["a", "b", "c"])
        assert cluster.entry_node == "a" and cluster.exit_node == "c"
        assert cluster.start_span(dist) > cluster.end_span(dist)
        assert cluster.cost(dfg) == 3.0

    def test_empty_cluster_entry_raises(self):
        with pytest.raises(ValueError):
            Cluster(0, []).entry_node

    def test_clustering_queries(self, diamond_dfg):
        clustering = linear_clustering(diamond_dfg)
        some_node = diamond_dfg.node_names()[0]
        cid = clustering.owner_of(some_node)
        assert some_node in clustering.cluster_by_id(cid).nodes
        assert clustering.cluster_of(some_node).cluster_id == cid
        assert sum(clustering.sizes()) == len(diamond_dfg)
        assert clustering.summary()["num_clusters"] == clustering.num_clusters

    def test_cross_cluster_edges_match_ownership(self, diamond_dfg):
        clustering = linear_clustering(diamond_dfg)
        owner = clustering.assignment()
        for edge in clustering.cross_cluster_edges():
            assert owner[edge.src] != owner[edge.dst]


class TestMerging:
    def test_merging_reduces_clusters(self, diamond_dfg):
        lc = linear_clustering(diamond_dfg)
        merged = merge_clusters_fixpoint(lc)
        assert merged.num_clusters <= lc.num_clusters
        check_partition(merged)
        check_acyclic_clusters(merged)

    def test_merge_only_span_disjoint(self):
        # Two parallel long paths with overlapping spans must NOT merge.
        dfg = make_dataflow(
            [("a", "b"), ("b", "c"), ("x", "y"), ("y", "z")],
            costs={n: 5 for n in "abcxyz"},
        )
        lc = linear_clustering(dfg)
        merged = merge_clusters_fixpoint(lc)
        assert merged.num_clusters == 2

    def test_merge_sequential_side_chains(self):
        # A long main path with two tiny side nodes at different depths: the
        # side nodes' spans are disjoint so they end up in one merged cluster.
        edges = [(f"m{i}", f"m{i+1}") for i in range(6)]
        edges += [("m0", "s_early"), ("s_early", "m2"), ("m3", "s_late"), ("s_late", "m5")]
        costs = {f"m{i}": 4 for i in range(7)}
        costs.update({"s_early": 1, "s_late": 1})
        dfg = make_dataflow(edges, costs=costs)
        lc = linear_clustering(dfg)
        merged = merge_clusters_fixpoint(lc)
        assert lc.num_clusters == 3
        assert merged.num_clusters == 2

    def test_merge_once_flag(self, diamond_dfg):
        lc = linear_clustering(diamond_dfg)
        merged, merge_done = merge_clusters_once(lc)
        assert isinstance(merge_done, bool)
        assert merged.num_clusters <= lc.num_clusters

    def test_renumbered_ids_contiguous(self, diamond_dfg):
        merged = merge_clusters_fixpoint(linear_clustering(diamond_dfg))
        assert [c.cluster_id for c in merged.clusters] == list(range(merged.num_clusters))

    def test_paper_squeezenet_cluster_counts(self):
        from repro.models import build_model

        dfg = model_to_dataflow(build_model("squeezenet"))
        lc = linear_clustering(dfg)
        merged = merge_clusters_fixpoint(lc)
        assert lc.num_clusters == 9       # paper Table II: 9 before merging
        assert merged.num_clusters == 2   # paper Table II: 2 after merging


class TestValidationInvariants:
    def test_partition_detects_duplicates(self, diamond_dfg):
        clustering = linear_clustering(diamond_dfg)
        bad = Clustering(diamond_dfg,
                         clustering.clusters + [Cluster(99, [diamond_dfg.node_names()[0]])],
                         clustering.distance_to_end)
        with pytest.raises(ClusteringError, match="appears in clusters"):
            check_partition(bad)

    def test_partition_detects_missing(self, diamond_dfg):
        clustering = linear_clustering(diamond_dfg)
        bad = Clustering(diamond_dfg, clustering.clusters[:-1], clustering.distance_to_end)
        with pytest.raises(ClusteringError, match="not covered"):
            check_partition(bad)

    def test_acyclic_check_detects_bad_order(self):
        dfg = make_dataflow([("a", "b"), ("c", "d"), ("b", "c")])
        # Program order d before c in one cluster, while c depends on b which
        # depends on a in the other cluster, and d depends on c -> cycle.
        bad = Clustering(dfg, [Cluster(0, ["a", "b"]), Cluster(1, ["d", "c"])],
                         compute_distance_to_end(dfg))
        with pytest.raises(ClusteringError, match="cycle"):
            check_acyclic_clusters(bad)

    def test_linearity_violation_detected(self, diamond_dfg):
        names = diamond_dfg.node_names()
        bad = Clustering(diamond_dfg, [Cluster(0, [names[0], names[-1]]),
                                       Cluster(1, names[1:-1])],
                         compute_distance_to_end(diamond_dfg))
        with pytest.raises(ClusteringError, match="not linear"):
            check_linear(bad)


class TestCloning:
    def test_clones_created_for_fanout_model(self):
        from repro.models import build_model

        model = build_model("inception_v3", variant="small")
        cloned, report = clone_cheap_producers(model)
        assert report.clones_created > 0
        assert cloned.num_nodes == model.num_nodes + report.clones_created
        assert report.growth_ratio >= 1.0
        from repro.ir.validation import validate_graph

        validate_graph(cloned.graph)

    def test_cloning_preserves_semantics(self, rng):
        import numpy as np
        from repro.models import build_model
        from repro.runtime import execute_model

        model = build_model("squeezenet", variant="small")
        cloned, report = clone_cheap_producers(model)
        x = rng.standard_normal((1, 3, 32, 32)).astype(np.float32)
        before = execute_model(model, {"input": x})
        after = execute_model(cloned, {"input": x})
        for key in before:
            np.testing.assert_allclose(before[key], after[key], rtol=1e-4, atol=1e-5)

    def test_max_clones_respected(self):
        from repro.models import build_model

        model = build_model("googlenet", variant="small")
        _, report = clone_cheap_producers(model, max_clones=3)
        assert report.clones_created <= 3

    def test_original_model_untouched(self, diamond_model):
        before = diamond_model.num_nodes
        clone_cheap_producers(diamond_model)
        assert diamond_model.num_nodes == before


class TestHyperclustering:
    def test_replication_counts(self, diamond_dfg):
        batched = replicate_for_batch(diamond_dfg, 3)
        assert len(batched) == 3 * len(diamond_dfg)
        assert batched.num_edges() == 3 * diamond_dfg.num_edges()

    def test_invalid_batch(self, diamond_dfg):
        with pytest.raises(ValueError):
            replicate_for_batch(diamond_dfg, 0)

    def test_hypercluster_partition_and_acyclicity(self, diamond_dfg):
        merged = merge_clusters_fixpoint(linear_clustering(diamond_dfg))
        for batch in (2, 3):
            hc = build_hyperclusters(merged, batch)
            validate_clustering(hc)
            assert hc.num_clusters == merged.num_clusters
            shc = build_switched_hyperclusters(merged, batch)
            validate_clustering(shc)
            assert shc.num_clusters == merged.num_clusters

    def test_hyperclustering_improves_throughput(self):
        from repro.models import build_model

        dfg = model_to_dataflow(build_model("squeezenet"))
        merged = merge_clusters_fixpoint(linear_clustering(dfg))
        sim = ScheduleSimulator()
        base = sim.simulate(merged).speedup
        hc4 = sim.simulate(build_hyperclusters(merged, 4)).speedup
        assert hc4 > base

    def test_switched_balances_load(self):
        from repro.models import build_model

        dfg = model_to_dataflow(build_model("squeezenet"))
        merged = merge_clusters_fixpoint(linear_clustering(dfg))
        sim = ScheduleSimulator()
        plain = sim.simulate(build_hyperclusters(merged, 2))
        switched = sim.simulate(build_switched_hyperclusters(merged, 2))
        assert switched.speedup >= plain.speedup


class TestScheduleSimulator:
    def test_single_cluster_equals_sequential(self, diamond_dfg):
        clustering = sequential_clustering(diamond_dfg)
        sim = ScheduleSimulator(SimulationConfig(per_cluster_overhead=0.0,
                                                 message_latency=0.0))
        result = sim.simulate(clustering)
        assert result.makespan == pytest.approx(result.sequential_time)
        assert result.speedup == pytest.approx(1.0)
        assert result.num_messages == 0

    def test_makespan_bounded_by_cp_and_sequential(self, diamond_dfg):
        clustering = merge_clusters_fixpoint(linear_clustering(diamond_dfg))
        sim = ScheduleSimulator(SimulationConfig(per_cluster_overhead=0.0,
                                                 message_latency=0.0))
        result = sim.simulate(clustering)
        cp = max(compute_distance_to_end(diamond_dfg).values())
        assert result.makespan <= result.sequential_time + 1e-9
        # The simulator charges no intra-cluster edge cost, so compare
        # against the node-cost-only critical path.
        cp_nodes_only = max(compute_distance_to_end(diamond_dfg, include_edge_cost=False).values())
        assert result.makespan >= cp_nodes_only - 1e-9

    def test_message_latency_increases_makespan(self, diamond_dfg):
        clustering = merge_clusters_fixpoint(linear_clustering(diamond_dfg))
        cheap = ScheduleSimulator(SimulationConfig(message_latency=0.0,
                                                   per_cluster_overhead=0.0)).simulate(clustering)
        pricey = ScheduleSimulator(SimulationConfig(message_latency=50.0,
                                                    per_cluster_overhead=0.0)).simulate(clustering)
        assert pricey.makespan > cheap.makespan
        assert pricey.message_cost > 0

    def test_core_limit_serializes(self, wide_model):
        dfg = model_to_dataflow(wide_model)
        clustering = linear_clustering(dfg)
        many = ScheduleSimulator(SimulationConfig(num_cores=8, per_cluster_overhead=0.0,
                                                  message_latency=0.0)).simulate(clustering)
        one = ScheduleSimulator(SimulationConfig(num_cores=1, per_cluster_overhead=0.0,
                                                 message_latency=0.0)).simulate(clustering)
        assert one.makespan >= many.makespan
        assert one.makespan == pytest.approx(one.sequential_time)

    def test_cost_provider_override(self, diamond_dfg):
        clustering = merge_clusters_fixpoint(linear_clustering(diamond_dfg))
        provider = {name: 1.0 for name in diamond_dfg.node_names()}
        sim = ScheduleSimulator(SimulationConfig(per_cluster_overhead=0.0,
                                                 message_latency=0.0))
        result = sim.simulate(clustering, cost_provider=provider)
        assert result.sequential_time == pytest.approx(len(diamond_dfg))

    def test_intra_op_scale_monotone(self):
        assert intra_op_node_scale(1) == pytest.approx(1.0)
        assert intra_op_node_scale(4) < intra_op_node_scale(2) < 1.0
        with pytest.raises(ValueError):
            intra_op_node_scale(0)

    def test_result_row_shape(self, diamond_dfg):
        clustering = merge_clusters_fixpoint(linear_clustering(diamond_dfg))
        row = ScheduleSimulator().simulate(clustering).as_row()
        assert set(row) == {"model", "clusters", "seq_time", "par_time", "speedup"}


class TestBaselines:
    def test_list_schedule_bounds(self, diamond_dfg):
        result = list_schedule(diamond_dfg, num_cores=4)
        assert result.makespan <= result.sequential_time
        assert result.speedup >= 1.0
        assert set(result.core_of) == set(diamond_dfg.node_names())

    def test_list_schedule_single_core(self, diamond_dfg):
        result = list_schedule(diamond_dfg, num_cores=1)
        assert result.makespan == pytest.approx(result.sequential_time)

    def test_list_schedule_invalid_cores(self, diamond_dfg):
        with pytest.raises(ValueError):
            list_schedule(diamond_dfg, num_cores=0)

    def test_ios_scheduler_on_diamond(self, diamond_dfg):
        from repro.baselines import ios_schedule

        result = ios_schedule(diamond_dfg, num_cores=4)
        assert sum(len(s) for s in result.stages) == len(diamond_dfg)
        assert result.makespan > 0
        assert result.compile_time_s >= 0
        assert set(result.as_row()) == {"model", "stages", "speedup", "compile_time_s"}

    def test_ios_stage_members_are_independent(self, diamond_dfg):
        from repro.baselines import ios_schedule
        from repro.graph.traversal import descendants

        result = ios_schedule(diamond_dfg, num_cores=4)
        for stage in result.stages:
            for node in stage:
                assert not (descendants(diamond_dfg, node) & set(stage)), \
                    "stage contains dependent operators"

    def test_sequential_clustering_covers_graph(self, diamond_dfg):
        clustering = sequential_clustering(diamond_dfg)
        assert clustering.num_clusters == 1
        check_partition(clustering)
