"""Tests for SSA naming, the emitter, op lowering and generated-code execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import linear_clustering, merge_clusters_fixpoint
from repro.codegen import (
    CodeEmitter,
    SSANamer,
    generate_parallel_module,
    generate_parallel_source,
    generate_sequential_module,
    generate_sequential_source,
    lower_node,
)
from repro.codegen.op_lowering import LoweringError, supported_ops
from repro.codegen.parallel_codegen import channel_name, collect_channels
from repro.codegen.ssa import sanitize_identifier
from repro.graph import model_to_dataflow
from repro.ir.node import OpNode
from repro.runtime import execute_model
from repro.runtime.process_runtime import (
    ParallelExecutionError,
    execute_generated_module,
    run_sequential_module,
    time_callable,
)


class TestSSANamer:
    def test_stable_mapping(self):
        namer = SSANamer()
        a = namer.name_for("conv/out:0")
        assert namer.name_for("conv/out:0") == a
        assert a.isidentifier()

    def test_collision_avoidance(self):
        namer = SSANamer()
        a = namer.name_for("x.y")
        b = namer.name_for("x:y")
        assert a != b

    def test_keyword_and_digit_handling(self):
        namer = SSANamer(prefix="")
        assert namer.name_for("class") != "class"
        assert namer.name_for("1value").isidentifier()
        assert sanitize_identifier("for") != "for"


class TestEmitter:
    def test_indentation_blocks(self):
        em = CodeEmitter()
        with em.block("def f():"):
            em.line("return 1")
        assert em.source() == "def f():\n    return 1\n"

    def test_dedent_guard(self):
        with pytest.raises(ValueError):
            CodeEmitter().dedent()

    def test_docstring_multiline(self):
        em = CodeEmitter()
        em.docstring("line one\nline two")
        assert '"""line one' in em.source()


class TestOpLowering:
    def test_conv_lowering_text(self):
        node = OpNode.create("Conv", ["x", "w", "b"], ["y"],
                             kernel_shape=[3, 3], strides=[1, 1], pads=[1, 1, 1, 1],
                             dilations=[1, 1], group=1)
        (stmt,) = lower_node(node, ["v_x", "weights['w']", "weights['b']"], ["v_y"])
        assert stmt.startswith("v_y = F.conv2d(v_x")
        assert "pads=[1, 1, 1, 1]" in stmt

    def test_concat_and_softmax(self):
        concat = OpNode.create("Concat", ["a", "b"], ["c"], axis=1)
        (stmt,) = lower_node(concat, ["v_a", "v_b"], ["v_c"])
        assert stmt == "v_c = F.concat([v_a, v_b], axis=1)"
        softmax = OpNode.create("Softmax", ["x"], ["y"], axis=-1)
        (stmt,) = lower_node(softmax, ["v_x"], ["v_y"])
        assert "F.softmax(v_x, axis=-1)" in stmt

    def test_multi_output_dropout(self):
        node = OpNode.create("Dropout", ["x"], ["y", "mask"], ratio=0.5)
        stmts = lower_node(node, ["v_x"], ["v_y", "v_mask"])
        assert len(stmts) == 2

    def test_unknown_op_raises(self):
        node = OpNode("FancyCustomOp", ["x"], ["y"])
        with pytest.raises(LoweringError):
            lower_node(node, ["v_x"], ["v_y"])

    def test_lowering_statements_compile(self):
        # Every generated statement must be syntactically valid Python.
        node = OpNode.create("Gemm", ["a", "b", "c"], ["y"], alpha=1.0, beta=1.0,
                             transA=0, transB=1)
        for stmt in lower_node(node, ["v_a", "v_b", "v_c"], ["v_y"]):
            compile(stmt, "<generated>", "exec")

    def test_supported_ops_cover_zoo(self):
        from repro.models import build_all_models

        ops_needed = set()
        for model in build_all_models(variant="small").values():
            ops_needed.update(n.op_type for n in model.graph.nodes)
        missing = ops_needed - set(supported_ops())
        assert not missing, f"model zoo uses ops without lowering rules: {missing}"


class TestSequentialCodegen:
    def test_source_structure(self, diamond_model):
        source = generate_sequential_source(diamond_model)
        assert "def run(inputs, weights):" in source
        assert "GRAPH_OUTPUTS" in source
        compile(source, "<generated>", "exec")

    def test_matches_interpreter(self, diamond_model, rng):
        module = generate_sequential_module(diamond_model)
        x = rng.standard_normal((1, 3, 16, 16)).astype(np.float32)
        ref = execute_model(diamond_model, {"x": x})
        out = run_sequential_module(module, {"x": x}, diamond_model.graph.initializers)
        for key in ref:
            np.testing.assert_allclose(ref[key], out[key], rtol=1e-4, atol=1e-5)


class TestParallelCodegen:
    def _compile(self, model):
        clustering = merge_clusters_fixpoint(linear_clustering(model_to_dataflow(model)))
        return clustering, generate_parallel_module(model, clustering)

    def test_source_mentions_channels(self, diamond_model):
        clustering = merge_clusters_fixpoint(linear_clustering(model_to_dataflow(diamond_model)))
        source = generate_parallel_source(diamond_model, clustering)
        compile(source, "<generated>", "exec")
        assert ".put(" in source and ".get(" in source
        assert "CLUSTER_FUNCTIONS" in source

    def test_channel_names_deterministic(self):
        assert channel_name("v", 0, 1) == "c0_to_c1__v"
        assert channel_name("a@b1", 2, 3) == "c2_to_c3__a_b1"

    def test_channel_list_matches_cross_edges(self, diamond_model):
        clustering = merge_clusters_fixpoint(linear_clustering(model_to_dataflow(diamond_model)))
        channels = collect_channels(diamond_model.graph, clustering)
        assert len(channels) == len(set(channels))
        # every channel corresponds to at least one cross-cluster edge value
        assert len(channels) <= len(clustering.cross_cluster_edges())

    def test_thread_and_process_match_reference(self, diamond_model, rng):
        clustering, module = self._compile(diamond_model)
        x = rng.standard_normal((1, 3, 16, 16)).astype(np.float32)
        weights = diamond_model.graph.initializers
        ref = execute_model(diamond_model, {"x": x})
        thread_out = execute_generated_module(module, {"x": x}, weights, backend="thread")
        process_out = execute_generated_module(module, {"x": x}, weights,
                                               backend="process", timeout=120)
        for key in ref:
            np.testing.assert_allclose(ref[key], thread_out[key], rtol=1e-4, atol=1e-5)
            np.testing.assert_allclose(ref[key], process_out[key], rtol=1e-4, atol=1e-5)

    def test_unknown_backend_rejected(self, diamond_model, rng):
        _, module = self._compile(diamond_model)
        with pytest.raises(ValueError):
            execute_generated_module(module, {}, {}, backend="gpu")

    def test_clustering_model_mismatch_detected(self, diamond_model, chain_model):
        clustering = merge_clusters_fixpoint(linear_clustering(model_to_dataflow(chain_model)))
        with pytest.raises(ValueError, match="absent from the model graph"):
            generate_parallel_source(diamond_model, clustering)

    def test_worker_failure_surfaces(self, diamond_model, rng):
        _, module = self._compile(diamond_model)
        # Omit the weights: every cluster will fail with a KeyError, which
        # must surface as ParallelExecutionError rather than a hang.
        with pytest.raises(ParallelExecutionError):
            execute_generated_module(module, {"x": rng.standard_normal((1, 3, 16, 16))
                                              .astype(np.float32)}, {}, backend="thread",
                                     timeout=30)

    def test_time_callable(self):
        median, result = time_callable(lambda: 42, repeats=3, warmup=0)
        assert result == 42
        assert median >= 0
