"""Unit tests for the IR core: dtypes, tensors, attributes, nodes, models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir import (
    Attribute,
    AttributeType,
    DType,
    Graph,
    Model,
    OpNode,
    TensorInfo,
    dtype_to_numpy,
    numpy_to_dtype,
)
from repro.ir.dtypes import parse_dtype, promote
from repro.ir.tensor import broadcast_shapes, conv_output_dim, normalize_shape, num_elements, pool_output_dim


# ---------------------------------------------------------------------------
# dtypes
# ---------------------------------------------------------------------------
class TestDTypes:
    def test_roundtrip_numpy(self):
        for dtype in DType:
            assert numpy_to_dtype(dtype_to_numpy(dtype)) is dtype

    def test_unknown_numpy_dtype_rejected(self):
        with pytest.raises(ValueError):
            numpy_to_dtype(np.dtype("complex128"))

    def test_parse_from_string(self):
        assert parse_dtype("float32") is DType.FLOAT32
        with pytest.raises(ValueError):
            parse_dtype("floatzz")

    def test_is_floating_and_integer(self):
        assert DType.FLOAT32.is_floating and not DType.FLOAT32.is_integer
        assert DType.INT64.is_integer and not DType.INT64.is_floating

    def test_itemsize(self):
        assert DType.FLOAT32.itemsize == 4
        assert DType.INT64.itemsize == 8
        assert DType.FLOAT16.itemsize == 2

    def test_promotion_float_beats_int(self):
        assert promote(DType.INT64, DType.FLOAT32) is DType.FLOAT32
        assert promote(DType.FLOAT32, DType.FLOAT32) is DType.FLOAT32
        assert promote(DType.BOOL, DType.INT32) is DType.INT32


# ---------------------------------------------------------------------------
# tensor shapes
# ---------------------------------------------------------------------------
class TestShapes:
    def test_normalize_rejects_negative(self):
        with pytest.raises(ValueError):
            normalize_shape([1, -2])

    def test_normalize_preserves_none(self):
        assert normalize_shape([None, 3]) == (None, 3)
        assert normalize_shape(None) is None

    def test_num_elements(self):
        assert num_elements((2, 3, 4)) == 24
        assert num_elements((2, None)) is None
        assert num_elements(()) == 1

    def test_broadcast_simple(self):
        assert broadcast_shapes((1, 3, 4), (3, 4)) == (1, 3, 4)
        assert broadcast_shapes((5, 1), (1, 6)) == (5, 6)

    def test_broadcast_missing_dims_act_as_one(self):
        assert broadcast_shapes((1, 64, 256), (256,)) == (1, 64, 256)

    def test_broadcast_incompatible(self):
        with pytest.raises(ValueError):
            broadcast_shapes((2, 3), (4, 5))

    def test_conv_output_dim(self):
        assert conv_output_dim(32, 3, stride=1, pad_begin=1, pad_end=1) == 32
        assert conv_output_dim(32, 3, stride=2, pad_begin=1, pad_end=1) == 16
        assert conv_output_dim(None, 3) is None

    def test_pool_output_dim_ceil(self):
        assert pool_output_dim(16, 3, stride=2, ceil_mode=False) == 7
        assert pool_output_dim(16, 3, stride=2, ceil_mode=True) == 8


class TestTensorInfo:
    def test_basic_properties(self):
        info = TensorInfo("x", DType.FLOAT32, (1, 3, 8, 8))
        assert info.rank == 4
        assert info.num_elements == 192
        assert info.nbytes == 192 * 4
        assert info.is_static()

    def test_dynamic_shape(self):
        info = TensorInfo("x", DType.FLOAT32, (None, 3))
        assert info.num_elements is None
        assert not info.is_static()

    def test_requires_name(self):
        with pytest.raises(ValueError):
            TensorInfo("")

    def test_with_shape_and_name(self):
        info = TensorInfo("x", DType.INT64, (4,))
        assert info.with_shape((2, 2)).shape == (2, 2)
        assert info.with_name("y").name == "y"

    def test_dict_roundtrip(self):
        info = TensorInfo("x", DType.FLOAT32, (1, None, 4))
        assert TensorInfo.from_dict(info.to_dict()) == info


# ---------------------------------------------------------------------------
# attributes
# ---------------------------------------------------------------------------
class TestAttributes:
    def test_infer_int_float_string_bool(self):
        assert Attribute.from_value("a", 3).type is AttributeType.INT
        assert Attribute.from_value("a", 3.5).type is AttributeType.FLOAT
        assert Attribute.from_value("a", "x").type is AttributeType.STRING
        assert Attribute.from_value("a", True).type is AttributeType.BOOL

    def test_infer_lists(self):
        assert Attribute.from_value("a", [1, 2]).type is AttributeType.INTS
        assert Attribute.from_value("a", [1.0, 2.5]).type is AttributeType.FLOATS
        assert Attribute.from_value("a", ["x", "y"]).type is AttributeType.STRINGS

    def test_tensor_attribute_roundtrip(self):
        arr = np.arange(6, dtype=np.float32).reshape(2, 3)
        attr = Attribute.from_value("value", arr)
        restored = Attribute.from_dict(attr.to_dict())
        np.testing.assert_array_equal(restored.value, arr)

    def test_copy_is_independent(self):
        attr = Attribute.from_value("a", [1, 2, 3])
        clone = attr.copy()
        clone.value.append(4)
        assert attr.value == [1, 2, 3]

    def test_coercion(self):
        assert Attribute("a", AttributeType.INT, 3.7).value == 3
        assert Attribute("a", AttributeType.INTS, (1.0, 2.0)).value == [1, 2]


# ---------------------------------------------------------------------------
# nodes
# ---------------------------------------------------------------------------
class TestOpNode:
    def test_create_with_attrs(self):
        node = OpNode.create("Conv", ["x", "w"], ["y"], kernel_shape=[3, 3], group=1)
        assert node.get_attr("kernel_shape") == [3, 3]
        assert node.get_attr("missing", 7) == 7
        assert node.has_attr("group")

    def test_auto_name_unique(self):
        a = OpNode("Relu", ["x"], ["y1"])
        b = OpNode("Relu", ["x"], ["y2"])
        assert a.name != b.name

    def test_rename_input_output(self):
        node = OpNode("Add", ["a", "b", "a"], ["c"])
        assert node.rename_input("a", "z") == 2
        assert node.inputs == ["z", "b", "z"]
        assert node.rename_output("c", "d") == 1

    def test_present_inputs_filters_optional(self):
        node = OpNode("Clip", ["x", "", "hi"], ["y"])
        assert node.present_inputs == ["x", "hi"]

    def test_copy_deep(self):
        node = OpNode.create("Conv", ["x", "w"], ["y"], kernel_shape=[3, 3])
        clone = node.copy(name="other")
        clone.set_attr("kernel_shape", [5, 5])
        assert node.get_attr("kernel_shape") == [3, 3]
        assert clone.name == "other"

    def test_dict_roundtrip(self):
        node = OpNode.create("Gemm", ["a", "b", "c"], ["y"], alpha=1.0, transB=1)
        restored = OpNode.from_dict(node.to_dict())
        assert restored.op_type == "Gemm"
        assert restored.get_attr("transB") == 1

    def test_requires_op_type_and_primary_output(self):
        with pytest.raises(ValueError):
            OpNode("", ["x"], ["y"])
        with pytest.raises(ValueError):
            OpNode("Relu", ["x"], []).primary_output


# ---------------------------------------------------------------------------
# graph / model containers
# ---------------------------------------------------------------------------
class TestGraphContainer:
    def _graph(self) -> Graph:
        g = Graph(name="g")
        g.inputs.append(TensorInfo("x", DType.FLOAT32, (1, 4)))
        g.add_initializer("w", np.ones((4, 2), dtype=np.float32))
        g.add_node(OpNode("MatMul", ["x", "w"], ["y"], name="mm"))
        g.add_node(OpNode("Relu", ["y"], ["z"], name="act"))
        g.outputs.append(TensorInfo("z", DType.FLOAT32, (1, 2)))
        return g

    def test_producers_consumers(self):
        g = self._graph()
        assert g.producers()["y"].name == "mm"
        assert [n.name for n in g.consumers()["y"]] == ["act"]

    def test_node_lookup_and_removal(self):
        g = self._graph()
        assert g.node_by_name("act").op_type == "Relu"
        with pytest.raises(KeyError):
            g.node_by_name("nope")
        assert g.remove_nodes(["act"]) == 1
        assert len(g) == 1

    def test_value_names_and_histogram(self):
        g = self._graph()
        assert {"x", "w", "y", "z"} <= g.all_value_names()
        assert g.op_type_histogram() == {"MatMul": 1, "Relu": 1}

    def test_copy_independent(self):
        g = self._graph()
        g2 = g.copy()
        g2.initializers["w"][0, 0] = 99.0
        assert g.initializers["w"][0, 0] == 1.0

    def test_model_wrapper(self):
        model = Model(graph=self._graph())
        assert model.name == "g"
        assert model.num_nodes == 2
        assert model.copy().num_nodes == 2
