"""Destination-passing (`out=` / `workspace=`) tests for the heavy operators.

Every heavy kernel must produce **bitwise-identical** results with and
without a destination, across edge shapes (1x1 kernels, grouped / dilated /
strided convs), with aliasing destinations (``out`` is an input) and with
non-contiguous destinations.  Workspace reuse across calls must neither
change results nor grow without bound.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.runtime.functional as F
from repro.runtime.tensor_utils import Workspace, im2col, pad_nchw


@pytest.fixture()
def rng():
    return np.random.default_rng(20260726)


def _check_conv(rng, x_shape, w_shape, ws=None, **kwargs):
    x = rng.standard_normal(x_shape).astype(np.float32)
    w = rng.standard_normal(w_shape).astype(np.float32)
    b = rng.standard_normal(w_shape[0]).astype(np.float32)
    expected = F.conv2d(x, w, b, **kwargs)
    out = np.empty_like(expected)
    got = F.conv2d(x, w, b, out=out, workspace=ws, **kwargs)
    assert got is out
    np.testing.assert_array_equal(got, expected)
    return expected


class TestConvDestinations:
    def test_plain_conv_bitwise(self, rng):
        _check_conv(rng, (2, 3, 10, 10), (6, 3, 3, 3), pads=(1, 1, 1, 1))

    def test_one_by_one_kernel(self, rng):
        _check_conv(rng, (2, 8, 7, 7), (4, 8, 1, 1))

    def test_strided_dilated(self, rng):
        _check_conv(rng, (1, 4, 13, 13), (5, 4, 3, 3),
                    strides=(2, 2), pads=(2, 2, 2, 2), dilations=(2, 2))

    def test_grouped_and_depthwise(self, rng):
        _check_conv(rng, (2, 6, 9, 9), (6, 3, 3, 3), pads=(1, 1, 1, 1), group=2)
        x = rng.standard_normal((1, 5, 8, 8)).astype(np.float32)
        w = rng.standard_normal((5, 1, 3, 3)).astype(np.float32)
        expected = F.depthwise_conv2d(x, w)
        out = np.empty_like(expected)
        np.testing.assert_array_equal(
            F.depthwise_conv2d(x, w, out=out, workspace=Workspace()), expected)

    def test_grouped_strided_dilated_combinations(self, rng):
        for group, strides, dilations in [(2, (1, 1), (2, 2)), (4, (2, 2), (1, 1)),
                                          (2, (2, 1), (1, 2))]:
            _check_conv(rng, (1, 8, 11, 11), (8, 8 // group, 3, 3),
                        pads=(2, 2, 2, 2), group=group, strides=strides,
                        dilations=dilations)

    def test_out_aliasing_input(self, rng):
        """A shape-preserving 1x1 conv may write over its own input."""
        x = rng.standard_normal((2, 4, 6, 6)).astype(np.float32)
        w = rng.standard_normal((4, 4, 1, 1)).astype(np.float32)
        expected = F.conv2d(x.copy(), w)
        got = F.conv2d(x, w, out=x, workspace=Workspace())
        assert got is x
        np.testing.assert_array_equal(got, expected)

    def test_non_contiguous_out(self, rng):
        x = rng.standard_normal((1, 3, 8, 8)).astype(np.float32)
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        expected = F.conv2d(x, w, pads=(1, 1, 1, 1))
        wide = np.zeros((1, 8, 8, 8), dtype=np.float32)
        out = wide[:, ::2]  # non-contiguous channel-strided destination
        got = F.conv2d(x, w, pads=(1, 1, 1, 1), out=out, workspace=Workspace())
        np.testing.assert_array_equal(got, expected)
        np.testing.assert_array_equal(wide[:, 1::2], 0.0)

    def test_bad_out_shape_raises(self, rng):
        x = rng.standard_normal((1, 3, 8, 8)).astype(np.float32)
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        with pytest.raises(ValueError, match="out buffer"):
            F.conv2d(x, w, out=np.empty((1, 4, 3, 3), dtype=np.float32))

    def test_bad_out_shape_raises_on_threaded_path_too(self, rng):
        from repro.runtime.intra_op import intra_op_threads
        x = rng.standard_normal((4, 3, 8, 8)).astype(np.float32)
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        with intra_op_threads(2):
            with pytest.raises(ValueError, match="out buffer"):
                F.conv2d(x, w, out=np.empty((4, 4, 3, 3), dtype=np.float32))

    def test_workspace_reuse_across_shapes_is_stable(self, rng):
        """One workspace serving several distinct convs stays bitwise-correct
        and reaches a steady state where no further buffers are allocated."""
        ws = Workspace()
        _check_conv(rng, (2, 3, 10, 10), (6, 3, 3, 3), ws=ws, pads=(1, 1, 1, 1))
        _check_conv(rng, (1, 4, 13, 13), (5, 4, 3, 3), ws=ws,
                    strides=(2, 2), pads=(2, 2, 2, 2), dilations=(2, 2))
        warm = ws.stats()["allocations"]
        for _ in range(3):
            _check_conv(rng, (2, 3, 10, 10), (6, 3, 3, 3), ws=ws, pads=(1, 1, 1, 1))
        assert ws.stats()["allocations"] == warm
        assert ws.stats()["reuses"] > 0

    def test_conv_transpose_out_and_inplace_bias(self, rng):
        x = rng.standard_normal((1, 2, 5, 5)).astype(np.float32)
        w = rng.standard_normal((2, 3, 2, 2)).astype(np.float32)
        b = rng.standard_normal(3).astype(np.float32)
        expected = F.conv_transpose2d(x, w, b, strides=(2, 2))
        out = np.empty_like(expected)
        got = F.conv_transpose2d(x, w, b, strides=(2, 2), out=out,
                                 workspace=Workspace())
        assert got is out
        np.testing.assert_array_equal(got, expected)
        # bias must match the no-bias result plus a broadcast add, bitwise
        plain = F.conv_transpose2d(x, w, strides=(2, 2))
        np.testing.assert_array_equal(expected, plain + b.reshape(1, -1, 1, 1))


class TestLinearDestinations:
    def test_matmul_out_bitwise(self, rng):
        a = rng.standard_normal((5, 7)).astype(np.float32)
        b = rng.standard_normal((7, 3)).astype(np.float32)
        expected = F.matmul(a, b)
        out = np.empty_like(expected)
        assert F.matmul(a, b, out=out) is out
        np.testing.assert_array_equal(out, expected)

    def test_matmul_out_aliases_operand(self, rng):
        a = rng.standard_normal((4, 4)).astype(np.float32)
        b = rng.standard_normal((4, 4)).astype(np.float32)
        expected = F.matmul(a.copy(), b)
        np.testing.assert_array_equal(F.matmul(a, b, out=a), expected)

    def test_matmul_non_contiguous_out(self, rng):
        a = rng.standard_normal((4, 6)).astype(np.float32)
        b = rng.standard_normal((6, 5)).astype(np.float32)
        expected = F.matmul(a, b)
        backing = np.zeros((4, 10), dtype=np.float32)
        out = backing[:, ::2]
        np.testing.assert_array_equal(F.matmul(a, b, out=out), expected)
        bad = np.zeros((2, 4, 10), dtype=np.float32)[:, :, ::2]
        with pytest.raises(ValueError, match="out buffer"):
            F.matmul(a, b, out=bad)  # broadcast-compatible but wrong shape

    @pytest.mark.parametrize("alpha,beta,trans_a,trans_b", [
        (1.0, 1.0, False, False),
        (0.5, 2.0, False, True),
        (2.0, 0.0, True, False),
        (1.5, 1.0, True, True),
    ])
    def test_gemm_out_bitwise(self, rng, alpha, beta, trans_a, trans_b):
        a = rng.standard_normal((6, 4) if not trans_a else (4, 6)).astype(np.float32)
        b = rng.standard_normal((4, 5) if not trans_b else (5, 4)).astype(np.float32)
        c = rng.standard_normal((5,)).astype(np.float32)
        expected = F.gemm(a, b, c, alpha=alpha, beta=beta,
                          trans_a=trans_a, trans_b=trans_b)
        out = np.empty_like(expected)
        got = F.gemm(a, b, c, alpha=alpha, beta=beta,
                     trans_a=trans_a, trans_b=trans_b, out=out)
        assert got is out
        np.testing.assert_array_equal(got, expected)
        np.testing.assert_allclose(
            expected, alpha * ((a.T if trans_a else a) @ (b.T if trans_b else b))
            + beta * c, rtol=1e-5)

    def test_gemm_out_aliases_c_operand(self, rng):
        """Regression: the product must not overwrite C before beta*C reads it."""
        a = rng.standard_normal((4, 4)).astype(np.float32)
        b = rng.standard_normal((4, 4)).astype(np.float32)
        c = rng.standard_normal((4, 4)).astype(np.float32)
        expected = F.gemm(a, b, c.copy())
        got = F.gemm(a, b, c, out=c)
        assert got is c
        np.testing.assert_array_equal(got, expected)

    def test_linear_out_aliases_bias(self, rng):
        x = rng.standard_normal((3, 3)).astype(np.float32)
        w = rng.standard_normal((3, 3)).astype(np.float32)
        bias = rng.standard_normal((3, 3)).astype(np.float32)
        expected = F.linear(x, w, bias.copy())
        np.testing.assert_array_equal(F.linear(x, w, bias, out=bias), expected)

    def test_linear_out_and_inplace_bias(self, rng):
        x = rng.standard_normal((2, 3, 4)).astype(np.float32)
        w = rng.standard_normal((4, 6)).astype(np.float32)
        bias = rng.standard_normal(6).astype(np.float32)
        expected = F.linear(x, w, bias)
        out = np.empty_like(expected)
        assert F.linear(x, w, bias, out=out) is out
        np.testing.assert_array_equal(out, expected)
        np.testing.assert_allclose(expected, x @ w + bias, rtol=1e-5)


class TestPoolingDestinations:
    def test_max_pool_out_bitwise(self, rng):
        x = rng.standard_normal((2, 3, 9, 9)).astype(np.float32)
        for kwargs in ({"kernel": (3, 3), "strides": (2, 2), "pads": (1, 1, 1, 1)},
                       {"kernel": (2, 2), "strides": (2, 2), "ceil_mode": True},
                       {"kernel": (1, 1)}):
            expected = F.max_pool2d(x, **kwargs)
            out = np.empty_like(expected)
            got = F.max_pool2d(x, out=out, workspace=Workspace(), **kwargs)
            assert got is out
            np.testing.assert_array_equal(got, expected)

    def test_avg_pool_out_bitwise_both_count_modes(self, rng):
        x = rng.standard_normal((1, 4, 10, 10)).astype(np.float32)
        for include in (False, True):
            expected = F.avg_pool2d(x, kernel=(3, 3), strides=(2, 2),
                                    pads=(1, 1, 1, 1), count_include_pad=include)
            out = np.empty_like(expected)
            got = F.avg_pool2d(x, kernel=(3, 3), strides=(2, 2),
                               pads=(1, 1, 1, 1), count_include_pad=include,
                               out=out, workspace=Workspace())
            np.testing.assert_array_equal(got, expected)

    def test_pool_out_aliasing_input(self, rng):
        """kernel=1, stride=1 pooling is shape-preserving: out may be x."""
        x = rng.standard_normal((1, 2, 6, 6)).astype(np.float32)
        expected = F.max_pool2d(x.copy(), kernel=(1, 1))
        got = F.max_pool2d(x, kernel=(1, 1), out=x, workspace=Workspace())
        assert got is x
        np.testing.assert_array_equal(got, expected)

    def test_pool_bad_out_shape_raises(self, rng):
        x = rng.standard_normal((1, 2, 6, 6)).astype(np.float32)
        with pytest.raises(ValueError, match="out buffer"):
            F.max_pool2d(x, kernel=(2, 2), strides=(2, 2),
                         out=np.empty((1, 2, 6, 6), dtype=np.float32))


class TestWorkspaceAndHelpers:
    def test_workspace_leases_distinct_buffers(self):
        ws = Workspace()
        a = ws.take((4, 4))
        b = ws.take((4, 4))
        assert a is not b
        ws.reset()
        c = ws.take((4, 4))
        assert c is a or c is b  # recycled, not fresh
        assert ws.stats()["allocations"] == 2
        assert ws.stats()["reuses"] == 1

    def test_pad_nchw_out_matches_np_pad(self, rng):
        x = rng.standard_normal((2, 3, 4, 5)).astype(np.float32)
        pads = (1, 2, 3, 0)
        expected = pad_nchw(x, pads, value=-1.5)
        out = np.empty(expected.shape, dtype=np.float32)
        got = pad_nchw(x, pads, value=-1.5, out=out)
        assert got is out
        np.testing.assert_array_equal(got, expected)
        with pytest.raises(ValueError, match="pad_nchw out"):
            pad_nchw(x, pads, out=np.empty((1, 1, 1, 1), dtype=np.float32))

    def test_im2col_out_matches_allocating_path(self, rng):
        x = rng.standard_normal((2, 3, 6, 6)).astype(np.float32)
        cols, (oh, ow) = im2col(x, (3, 3), (1, 1), (1, 1, 1, 1))
        out = np.empty_like(cols)
        pad_out = np.empty((2, 3, 8, 8), dtype=np.float32)
        cols2, (oh2, ow2) = im2col(x, (3, 3), (1, 1), (1, 1, 1, 1),
                                   out=out, pad_out=pad_out)
        assert cols2 is out and (oh, ow) == (oh2, ow2)
        np.testing.assert_array_equal(cols2, cols)
