"""Perf-trajectory analysis and the ``ramiel bench-report`` gate.

``BENCH_exec.json`` artifacts were write-only until this PR; these tests
pin the read side: loading a history (files and directories, ordered by
the embedded ``created_unix`` stamp, tolerant of junk), rolling-baseline
regression detection over the machine-independent ratio metrics, the
rendered trend table, and the CLI exit codes that turn the artifact
upload into a CI gate.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.observability.trajectory import (
    MODEL_RATIO_METRICS,
    analyze_trajectory,
    load_trajectory,
    render_trend_table,
)


def bench_entry(created: int, speedup: float, heavy: float = 1.5,
                binding: float = 1.2, conv: float = 1.8) -> dict:
    return {
        "schema": "repro-exec-bench/2",
        "created_unix": created,
        "models": [{
            "model": "squeezenet",
            "speedup": speedup,
            "heavy_speedup": heavy,
            "binding_speedup": binding,
            # machine-dependent milliseconds must be ignored by the trend
            "interp_ms": 120.0,
            "plan_ms": 60.0,
        }],
        "conv_op_pr3_comparison": [{"case": "3x3s1", "speedup": conv}],
    }


def write_history(directory, entries) -> list:
    paths = []
    for index, entry in enumerate(entries):
        path = directory / f"BENCH_exec_{index}.json"
        path.write_text(json.dumps(entry))
        paths.append(str(path))
    return paths


# ---------------------------------------------------------------------------
# Loading
# ---------------------------------------------------------------------------
class TestLoadTrajectory:
    def test_orders_by_created_unix_not_filename(self, tmp_path):
        # files written newest-first: the loader must reorder by stamp
        write_history(tmp_path, [bench_entry(300, 2.0), bench_entry(100, 1.0),
                                 bench_entry(200, 1.5)])
        entries = load_trajectory([str(tmp_path)])
        assert [e["created_unix"] for e in entries] == [100, 200, 300]
        assert all("_path" in e for e in entries)

    def test_mixes_files_and_directories(self, tmp_path):
        sub = tmp_path / "history"
        sub.mkdir()
        write_history(sub, [bench_entry(1, 1.0)])
        single = tmp_path / "latest.json"
        single.write_text(json.dumps(bench_entry(2, 1.1)))
        entries = load_trajectory([str(sub), str(single)])
        assert len(entries) == 2

    def test_skips_junk_and_non_bench_json(self, tmp_path):
        (tmp_path / "broken.json").write_text("{not json")
        (tmp_path / "other.json").write_text(json.dumps({"foo": 1}))
        (tmp_path / "notes.txt").write_text("ignored entirely")
        write_history(tmp_path, [bench_entry(1, 1.0)])
        entries = load_trajectory([str(tmp_path)])
        assert len(entries) == 1

    def test_missing_path_is_skipped(self, tmp_path):
        assert load_trajectory([str(tmp_path / "nope.json")]) == []


# ---------------------------------------------------------------------------
# Analysis
# ---------------------------------------------------------------------------
class TestAnalyzeTrajectory:
    def test_flat_history_is_ok(self):
        report = analyze_trajectory([bench_entry(i, 2.0) for i in range(4)])
        assert report.ok
        assert all(row.status == "ok" for row in report.rows
                   if row.baseline is not None)
        # every trended metric is a ratio; ms never appear
        assert {row.metric for row in report.rows} <= set(
            MODEL_RATIO_METRICS) | {"speedup"}
        assert not any("ms" in row.metric for row in report.rows)

    def test_detects_regression_past_threshold(self):
        entries = [bench_entry(1, 2.0), bench_entry(2, 2.1),
                   bench_entry(3, 2.0), bench_entry(4, 1.4)]
        report = analyze_trajectory(entries, threshold=0.10, window=3)
        regressed = {(r.benchmark, r.metric) for r in report.regressions}
        assert regressed == {("squeezenet", "speedup")}
        assert not report.ok
        row = report.regressions[0]
        assert row.baseline == pytest.approx(2.0333, abs=1e-3)
        assert row.delta_pct < -10
        assert row.status == "REGRESSED"

    def test_drop_within_threshold_is_ok(self):
        entries = [bench_entry(1, 2.0), bench_entry(2, 2.0),
                   bench_entry(3, 1.85)]  # -7.5% < 10%
        assert analyze_trajectory(entries, threshold=0.10).ok

    def test_first_appearance_is_new_not_regressed(self):
        report = analyze_trajectory([bench_entry(1, 2.0)])
        assert report.ok
        assert all(row.status == "new" and row.baseline is None
                   for row in report.rows)

    def test_rolling_window_bounds_the_baseline(self):
        # 10 old good runs then 3 bad ones: with window=3 the baseline
        # reflects the recent bad plateau, so the last entry is not
        # flagged against ancient glory
        entries = [bench_entry(i, 2.0) for i in range(10)]
        entries += [bench_entry(10 + i, 1.0) for i in range(4)]
        report = analyze_trajectory(entries, threshold=0.10, window=3)
        speedup_row = next(r for r in report.rows
                           if r.benchmark == "squeezenet"
                           and r.metric == "speedup")
        assert speedup_row.baseline == pytest.approx(1.0)
        assert not speedup_row.regressed

    def test_metric_appearing_midway_uses_its_own_history(self):
        old = bench_entry(1, 2.0)
        del old["conv_op_pr3_comparison"]
        report = analyze_trajectory([old, bench_entry(2, 2.0, conv=1.8)])
        conv_row = next(r for r in report.rows
                        if r.benchmark == "conv:3x3s1")
        assert conv_row.status == "new"

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            analyze_trajectory([], threshold=-0.1)
        with pytest.raises(ValueError):
            analyze_trajectory([], window=0)

    def test_as_dict_is_json_serializable(self):
        report = analyze_trajectory([bench_entry(1, 2.0),
                                     bench_entry(2, 1.0)])
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["ok"] is False
        assert payload["rows"][0]["status"]


class TestRenderTrendTable:
    def test_table_and_verdict(self):
        entries = [bench_entry(1, 2.0), bench_entry(2, 1.0)]
        text = render_trend_table(analyze_trajectory(entries))
        assert "REGRESSED" in text
        assert "REGRESSION: 1 metric(s)" in text
        ok_text = render_trend_table(
            analyze_trajectory([bench_entry(1, 2.0), bench_entry(2, 2.0)]))
        assert "ok: no metric fell" in ok_text

    def test_empty_report(self):
        text = render_trend_table(analyze_trajectory([]))
        assert "no trend data" in text


# ---------------------------------------------------------------------------
# CLI gate
# ---------------------------------------------------------------------------
class TestBenchReportCli:
    def _history(self, tmp_path, regressed: bool):
        values = [2.0, 2.1, 2.0] + ([1.4] if regressed else [2.05])
        return write_history(
            tmp_path, [bench_entry(i, v) for i, v in enumerate(values)])

    def test_exits_nonzero_on_regression(self, tmp_path, capsys):
        self._history(tmp_path, regressed=True)
        code = cli_main(["bench-report", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSED" in out

    def test_exits_zero_when_ok(self, tmp_path, capsys):
        self._history(tmp_path, regressed=False)
        assert cli_main(["bench-report", str(tmp_path)]) == 0
        assert "ok: no metric fell" in capsys.readouterr().out

    def test_warn_only_reports_but_passes(self, tmp_path, capsys):
        self._history(tmp_path, regressed=True)
        code = cli_main(["bench-report", str(tmp_path), "--warn-only"])
        captured = capsys.readouterr()
        assert code == 0
        assert "REGRESSED" in captured.out
        assert "not failing the gate" in captured.err

    def test_json_output(self, tmp_path, capsys):
        self._history(tmp_path, regressed=True)
        code = cli_main(["bench-report", str(tmp_path), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["ok"] is False

    def test_empty_history_passes(self, tmp_path, capsys):
        code = cli_main(["bench-report", str(tmp_path)])
        assert code == 0
        assert "no parsable" in capsys.readouterr().out

    def test_threshold_flag_controls_the_gate(self, tmp_path):
        self._history(tmp_path, regressed=True)  # latest is ~31% down
        assert cli_main(["bench-report", str(tmp_path),
                         "--threshold", "0.5"]) == 0
        assert cli_main(["bench-report", str(tmp_path),
                         "--threshold", "0.05"]) == 1

    def test_invalid_threshold_is_a_usage_error(self, tmp_path, capsys):
        self._history(tmp_path, regressed=False)
        code = cli_main(["bench-report", str(tmp_path),
                         "--threshold", "-1"])
        assert code == 2
        assert "threshold" in capsys.readouterr().err
