"""BERT: constant propagation + DCE before clustering (Table III / VI scenario).

Exported transformer graphs carry hundreds of shape-manipulation nodes
(Shape/Gather/Concat chains for the attention-head reshapes, decomposed
LayerNorm constants) whose inputs are entirely static.  This example shows
what the paper's Section III-C does for BERT:

1. build the BERT encoder graph,
2. prune it with constant propagation + dead-code elimination,
3. compare cluster counts and predicted speedups before and after pruning,
4. generate the parallel code for the pruned graph and verify it still
   computes the same outputs as the unpruned sequential reference.

Run with::

    python examples/bert_pruning_and_clustering.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.speedup import ExperimentConfig, cluster_model
from repro.models import build_model
from repro.passes import optimize_model
from repro.pipeline import ramiel_compile
from repro.runtime import execute_model


def main() -> None:
    # Reduced BERT (2 layers) so the example runs in seconds; the full
    # 12-layer graph is what the benchmarks use.
    model = build_model("bert", variant="small")
    print(f"model: {model.name} with {model.num_nodes} nodes")

    # --- pruning --------------------------------------------------------
    pruned, stats = optimize_model(model)
    print("\n--- constant propagation + dead-code elimination -------------")
    print(f"  nodes before: {stats['nodes_before']}")
    print(f"  nodes after:  {stats['nodes_after']}  "
          f"({stats['nodes_removed']} removed in {stats['iterations']} iterations)")

    # --- clustering before vs after pruning ------------------------------
    config = ExperimentConfig()
    unpruned_clusters = cluster_model(model, config)
    pruned_clusters = cluster_model(pruned, config)
    sim = config.simulator()
    s_unpruned = sim.simulate(unpruned_clusters)
    s_pruned = sim.simulate(pruned_clusters)
    # Both parallel variants are compared against the same (unpruned)
    # sequential baseline, as in Table VI.
    seq_time = s_unpruned.sequential_time
    print("\n--- clustering --------------------------------------------------")
    print(f"  clusters (LC, unpruned): {unpruned_clusters.num_clusters}  "
          f"predicted speedup {seq_time / s_unpruned.makespan:.2f}x")
    print(f"  clusters (LC + CP/DCE):  {pruned_clusters.num_clusters}  "
          f"predicted speedup {seq_time / s_pruned.makespan:.2f}x")

    # --- run the generated code -----------------------------------------
    result = ramiel_compile(model, prune=True)
    rng = np.random.default_rng(1)
    seq_len = model.graph.inputs[0].shape[1]
    inputs = {"input_ids": rng.integers(0, 200, size=(1, seq_len)).astype(np.int64)}

    reference = execute_model(model, inputs)          # unpruned interpreter
    parallel_out = result.run_parallel(inputs, backend="thread")
    for name, ref in reference.items():
        assert np.allclose(ref, parallel_out[name], atol=1e-3), \
            f"pruned parallel output {name} diverges from the unpruned reference"
    print("\n  pruned parallel outputs match the unpruned reference ✓")
    print(f"  generated parallel module: {result.parallel_module.path}")


if __name__ == "__main__":
    main()
