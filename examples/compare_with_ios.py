"""Compare Ramiel's linear clustering with the IOS dynamic-programming scheduler.

Reproduces the Table VIII scenario on a reduced scale: for Squeezenet,
Inception V3 and NASNet it runs both schedulers, printing the predicted
speedup and — the paper's main point — the compile-time gap: linear
clustering is a near-linear-time algorithm while IOS solves a subset
dynamic program per stage.

Run with::

    python examples/compare_with_ios.py          # full-size graphs (slow-ish)
    python examples/compare_with_ios.py --small  # reduced graphs
"""

from __future__ import annotations

import argparse
import time

from repro.analysis.speedup import ExperimentConfig, run_lc_experiment
from repro.baselines import ios_schedule
from repro.graph import model_to_dataflow
from repro.models import build_model


def main(variant: str = "default") -> None:
    config = ExperimentConfig()
    print(f"{'model':14s} {'Ramiel speedup':>14s} {'Ramiel CT(s)':>13s} "
          f"{'IOS speedup':>12s} {'IOS CT(s)':>10s}")
    for name in ["squeezenet", "inception_v3", "nasnet"]:
        model = build_model(name, variant=variant)
        experiment = run_lc_experiment(model, config)
        dfg = model_to_dataflow(model, cost_model=config.cost_model)
        start = time.perf_counter()
        ios = ios_schedule(dfg, num_cores=config.num_cores)
        ios_ct = time.perf_counter() - start
        print(f"{name:14s} {experiment.speedup:14.2f} {experiment.compile_time_s:13.2f} "
              f"{ios.speedup:12.2f} {ios_ct:10.2f}")
    print("\nRamiel's clustering finishes in a fraction of the IOS search time "
          "while producing comparable (NASNet: better) schedules — the Table VIII story.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--small", action="store_true", help="use reduced-size graphs")
    args = parser.parse_args()
    main(variant="small" if args.small else "default")
