"""Serving demo: one engine, two models, concurrent request traffic.

Demonstrates the `repro.serving` subsystem end to end:

1. build two zoo models (reduced-size variants keep the demo fast),
2. warm the engine up — each model is Ramiel-compiled exactly once into
   the compiled-artifact cache, served through its cached execution plan,
3. fire concurrent requests from many threads; the dynamic micro-batcher
   fuses simultaneous requests along the batch axis,
4. print the serving metrics report: throughput, latency percentiles,
   batch-size histogram and cache hit rate.

Run with::

    python examples/serving_demo.py

With ``--gateway`` the same engine is additionally fronted by the HTTP
gateway: the demo boots :class:`repro.gateway.GatewayServer` on a free
port with two QoS tenants (``gold`` at weight 3, ``free`` at weight 1),
drives concurrent open-loop HTTP clients from both tenants, and prints a
per-tenant latency report before draining the server::

    python examples/serving_demo.py --gateway
"""

from __future__ import annotations

import asyncio
import sys
import threading

from repro.analysis.reports import render_serving_report
from repro.models import build_model
from repro.serving import EngineConfig, InferenceEngine, example_inputs

MODELS = ["squeezenet", "googlenet"]
REQUESTS_PER_MODEL = 24
CONCURRENCY = 6


def main() -> None:
    engine = InferenceEngine(EngineConfig(max_batch_size=8, max_wait_s=0.005))
    models = [build_model(name, variant="small") for name in MODELS]

    print("--- warmup (compile once per model) ------------------------")
    for model in models:
        summary = engine.warmup(model)
        print(f"  {summary['model']:12s} compiled in {summary['warmup_time_s']:.3f}s "
              f"(batchable={summary['batchable']})")

    # Concurrent traffic: CONCURRENCY worker threads per model, each sending
    # a stream of requests.  Simultaneous requests against the same model
    # are fused by the micro-batcher.
    print("\n--- serving concurrent traffic -----------------------------")
    errors = []

    def client(model, worker_index: int) -> None:
        per_worker = REQUESTS_PER_MODEL // CONCURRENCY
        for i in range(per_worker):
            try:
                engine.infer(model, example_inputs(model, seed=worker_index * 1000 + i))
            except Exception as exc:  # noqa: BLE001 - report at the end
                errors.append(exc)

    threads = [threading.Thread(target=client, args=(model, w))
               for model in models for w in range(CONCURRENCY)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if errors:
        raise SystemExit(f"serving failed: {errors[:3]}")

    print(f"  served {len(models) * REQUESTS_PER_MODEL} requests "
          f"across {len(models)} models with zero recompilation")

    print("\n--- metrics -------------------------------------------------")
    print(render_serving_report(engine.registry))
    engine.shutdown()


def gateway_main() -> None:
    """Front the engine with the HTTP gateway and drive two tenants."""
    from repro.gateway import GatewayServer, GatewayThread, LoadSpec, codec, run_load
    from repro.serving import QoSConfig, TenantConfig

    engine = InferenceEngine(EngineConfig(
        max_batch_size=8,
        max_wait_s=0.005,
        qos=QoSConfig(tenants=(TenantConfig("gold", weight=3.0),
                               TenantConfig("free", weight=1.0)))))
    models = {name: build_model(name, variant="small") for name in MODELS}

    print("--- warmup (compile once per model) ------------------------")
    for model in models.values():
        summary = engine.warmup(model)
        print(f"  {summary['model']:12s} compiled in "
              f"{summary['warmup_time_s']:.3f}s")

    server = GatewayServer(engine, models)
    with GatewayThread(server) as gateway:
        print(f"\n--- gateway listening on 127.0.0.1:{gateway.port} ----------")
        print("  POST /v1/models/{name}/infer   (X-Tenant: gold|free)")

        # Open-loop HTTP traffic: each tenant Poisson-fires against its
        # model on fresh connections, independent of completions — the
        # QoS admission queue arbitrates by weight.
        specs = [
            LoadSpec("gold", MODELS[0],
                     codec.encode_request(example_inputs(models[MODELS[0]])),
                     rate_rps=30.0),
            LoadSpec("free", MODELS[1],
                     codec.encode_request(example_inputs(models[MODELS[1]])),
                     rate_rps=30.0),
        ]
        report = asyncio.run(run_load("127.0.0.1", gateway.port, specs,
                                      duration_s=3.0, seed=1))

        print("\n--- per-tenant latency report ------------------------------")
        print(report.render())
        drained = gateway.stop()

    print(f"\n  drained cleanly: {drained}")
    print("\n--- metrics -------------------------------------------------")
    print(render_serving_report(engine.registry))
    engine.shutdown()
    if report.total_dropped or not drained:
        raise SystemExit("gateway demo failed: dropped requests or dirty drain")


if __name__ == "__main__":
    if "--gateway" in sys.argv[1:]:
        gateway_main()
    else:
        main()
