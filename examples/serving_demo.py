"""Serving demo: one engine, two models, concurrent request traffic.

Demonstrates the `repro.serving` subsystem end to end:

1. build two zoo models (reduced-size variants keep the demo fast),
2. warm the engine up — each model is Ramiel-compiled exactly once into
   the compiled-artifact cache, served through its cached execution plan,
3. fire concurrent requests from many threads; the dynamic micro-batcher
   fuses simultaneous requests along the batch axis,
4. print the serving metrics report: throughput, latency percentiles,
   batch-size histogram and cache hit rate.

Run with::

    python examples/serving_demo.py
"""

from __future__ import annotations

import threading

from repro.analysis.reports import render_serving_report
from repro.models import build_model
from repro.serving import EngineConfig, InferenceEngine, example_inputs

MODELS = ["squeezenet", "googlenet"]
REQUESTS_PER_MODEL = 24
CONCURRENCY = 6


def main() -> None:
    engine = InferenceEngine(EngineConfig(max_batch_size=8, max_wait_s=0.005))
    models = [build_model(name, variant="small") for name in MODELS]

    print("--- warmup (compile once per model) ------------------------")
    for model in models:
        summary = engine.warmup(model)
        print(f"  {summary['model']:12s} compiled in {summary['warmup_time_s']:.3f}s "
              f"(batchable={summary['batchable']})")

    # Concurrent traffic: CONCURRENCY worker threads per model, each sending
    # a stream of requests.  Simultaneous requests against the same model
    # are fused by the micro-batcher.
    print("\n--- serving concurrent traffic -----------------------------")
    errors = []

    def client(model, worker_index: int) -> None:
        per_worker = REQUESTS_PER_MODEL // CONCURRENCY
        for i in range(per_worker):
            try:
                engine.infer(model, example_inputs(model, seed=worker_index * 1000 + i))
            except Exception as exc:  # noqa: BLE001 - report at the end
                errors.append(exc)

    threads = [threading.Thread(target=client, args=(model, w))
               for model in models for w in range(CONCURRENCY)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if errors:
        raise SystemExit(f"serving failed: {errors[:3]}")

    print(f"  served {len(models) * REQUESTS_PER_MODEL} requests "
          f"across {len(models)} models with zero recompilation")

    print("\n--- metrics -------------------------------------------------")
    print(render_serving_report(engine.registry))
    engine.shutdown()


if __name__ == "__main__":
    main()
