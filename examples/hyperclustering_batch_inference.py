"""Hyperclustering: batched inference on SqueezeNet (Figs. 8, 9, 13, 14 scenario).

Batch-size-1 SqueezeNet is the paper's canonical "don't parallelize this"
case: the potential parallelism is below 1 and LC alone produces a
slowdown.  With a small batch in flight, however, the slack each cluster
spends waiting on cross-cluster messages can be filled with work from the
other samples — that is hyperclustering, and its switched variant
additionally balances the per-core load.

This example sweeps batch sizes, prints the simulated speedups of plain and
switched hyperclusters (the Fig. 13/14 series), and shows the per-cluster
slack shrinking.

Run with::

    python examples/hyperclustering_batch_inference.py
"""

from __future__ import annotations

from repro.analysis.slack import slack_report
from repro.analysis.speedup import ExperimentConfig, cluster_model, hypercluster_speedups
from repro.clustering import build_hyperclusters, build_switched_hyperclusters
from repro.models import build_model


def main() -> None:
    model = build_model("squeezenet")
    config = ExperimentConfig()
    print(f"model: {model.name} ({model.num_nodes} nodes)")

    merged = cluster_model(model, config)
    sim = config.simulator()
    base = sim.simulate(merged)
    print(f"\nbatch size 1: {merged.num_clusters} clusters, "
          f"speedup {base.speedup:.2f}x, total slack {base.total_slack:.1f} cost units")

    batch_sizes = [2, 4, 8, 12]
    plain = hypercluster_speedups(model, batch_sizes, config, switched=False)
    switched = hypercluster_speedups(model, batch_sizes, config, switched=True)

    print("\nbatch  hyperclustered  switched-hyperclustered")
    for batch in batch_sizes:
        print(f"{batch:5d}  {plain[batch]:14.2f}  {switched[batch]:23.2f}")

    print("\nper-batch slack (plain hyperclusters):")
    for batch in batch_sizes:
        hc = build_hyperclusters(merged, batch)
        report = slack_report(sim.simulate(hc))
        print(f"  batch {batch:2d}: total slack {report.total_slack:8.1f}, "
              f"mean cluster utilization {report.mean_utilization:.2f}")

    print("\nInterpretation: speedup rises with the batch size as slack is filled, "
          "and switched hyperclusters add a further uplift by balancing cluster loads "
          "(the Fig. 13 / Fig. 14 shapes).")


if __name__ == "__main__":
    main()
