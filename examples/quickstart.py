"""Quickstart: compile a model with Ramiel and run the generated parallel code.

This walks the full pipeline of the paper on SqueezeNet:

1. build the ONNX-like model graph,
2. report its potential parallelism (Table I metric),
3. run linear clustering + cluster merging,
4. generate readable sequential and parallel Python code,
5. execute both and check they agree, printing the measured speedup.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ramiel_compile
from repro.models import build_model
from repro.runtime.process_runtime import time_callable


def main() -> None:
    # A reduced-size SqueezeNet keeps this example fast; use
    # build_model("squeezenet") for the full Table-I sized graph.
    model = build_model("squeezenet", variant="small")
    print(f"model: {model.name} with {model.num_nodes} nodes")

    result = ramiel_compile(model)
    summary = result.summary()
    print("\n--- Ramiel pipeline summary -------------------------------")
    for key, value in summary.items():
        print(f"  {key:26s} {value}")

    print("\n--- generated parallel code (first 25 lines) ---------------")
    for line in result.parallel_module.source.splitlines()[:25]:
        print(f"  {line}")

    # Execute the generated code on a random input and compare.
    rng = np.random.default_rng(0)
    inputs = {"input": rng.standard_normal((1, 3, 32, 32)).astype(np.float32)}

    seq_time, seq_out = time_callable(lambda: result.run_sequential(inputs), repeats=3)
    par_time, par_out = time_callable(lambda: result.run_parallel(inputs, backend="thread"),
                                      repeats=3)

    for name in seq_out:
        assert np.allclose(seq_out[name], par_out[name], atol=1e-4), \
            f"parallel output {name} diverges from sequential"

    print("\n--- execution ------------------------------------------------")
    print(f"  sequential: {seq_time * 1e3:8.2f} ms")
    print(f"  parallel:   {par_time * 1e3:8.2f} ms  "
          f"({result.num_clusters} clusters, thread backend)")
    print(f"  measured speedup: {seq_time / par_time:.2f}x "
          f"(simulator predicted {result.predicted_speedup:.2f}x)")
    print("  outputs match the sequential reference ✓")


if __name__ == "__main__":
    main()
