"""Gateway load harness: backpressure, fairness and bitwise parity gates.

Two acceptance bars for the HTTP gateway + QoS subsystem:

1. **Backpressure correctness at 2x capacity** — the engine's serial
   capacity is *measured* (median warm latency of the served model with
   batching and concurrency pinned to one), then the open-loop harness
   (:mod:`repro.gateway.loadgen`) offers twice that rate from two tenants
   with a 3:1 weight skew.  Under that saturation:

   * zero requests drop without an HTTP answer,
   * every non-2xx answer is an explicit 429/503/504,
   * some requests *are* rejected (the load really saturated; admission
     really pushed back),
   * p99 of the admitted requests stays bounded by the queue depth the
     config allows (depth x measured service time, with slack) — latency
     does not grow with offered load,
   * the engine keeps doing useful work (goodput at least half the
     measured capacity), and no tenant receives less than half its
     weighted share of the completed work.

2. **Bitwise parity for every zoo model** — a response served over HTTP
   (JSON tensor codec and all) is bit-for-bit identical to calling
   ``InferenceEngine.submit`` directly with the same inputs.

Environment knobs:

* ``REPRO_GATEWAY_MODELS``   — parity-model list (default: the whole zoo)
* ``REPRO_GATEWAY_DURATION`` — saturation window seconds (default 4)
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np
import pytest

from repro.gateway import GatewayServer, GatewayThread, LoadSpec, codec, run_load
from repro.models import build_model, list_models
from repro.serving import (
    EngineConfig,
    InferenceEngine,
    QoSConfig,
    TenantConfig,
    example_inputs,
)

GATEWAY_MODELS = [name.strip() for name in os.environ.get(
    "REPRO_GATEWAY_MODELS", ",".join(list_models())).split(",") if name.strip()]
DURATION_S = float(os.environ.get("REPRO_GATEWAY_DURATION", "4"))

#: slow enough (~45 ms serial) that 2x capacity is a modest connection
#: rate (~45 rps), and with a sub-KB request body — so the in-process
#: load harness does not meaningfully distort the service time it is
#: measuring against.  Image models at this tier ship ~500 KB JSON
#: bodies whose encode/decode cost drowns the signal.
SATURATION_MODEL = "bert"
SATURATION_VARIANT = "default"

GOLD_WEIGHT, FREE_WEIGHT = 3.0, 1.0
TOTAL_WEIGHT = GOLD_WEIGHT + FREE_WEIGHT
TENANT_QUEUE, GLOBAL_QUEUE = 8, 16


def test_backpressure_correctness_at_2x_capacity():
    model = build_model(SATURATION_MODEL, variant=SATURATION_VARIANT)
    engine = InferenceEngine(EngineConfig(
        # Pin capacity to serial execution so "2x capacity" is a measured,
        # well-defined number: no batch fusion, one request in flight.
        max_batch_size=1,
        qos=QoSConfig(
            tenants=(TenantConfig("gold", weight=GOLD_WEIGHT,
                                  max_queue=TENANT_QUEUE),
                     TenantConfig("free", weight=FREE_WEIGHT,
                                  max_queue=TENANT_QUEUE)),
            max_queue_depth=GLOBAL_QUEUE,
            max_artifact_inflight=1)))
    feed = example_inputs(model)
    body = codec.encode_request(feed)
    try:
        engine.warmup(model)
        # Measured serial capacity: median warm latency of the direct path.
        samples = []
        for _ in range(10):
            start = time.perf_counter()
            engine.submit(model, feed, tenant="gold").result(timeout=60)
            samples.append(time.perf_counter() - start)
        service_s = sorted(samples)[len(samples) // 2]
        capacity_rps = 1.0 / service_s

        server = GatewayServer(engine, {SATURATION_MODEL: model})
        with GatewayThread(server) as gateway:
            # Open loop at 2x capacity, split evenly across the tenants —
            # both saturate, and the 3:1 weights decide who gets served.
            report = asyncio.run(run_load(
                "127.0.0.1", gateway.port,
                [LoadSpec("gold", SATURATION_MODEL, body,
                          rate_rps=capacity_rps),
                 LoadSpec("free", SATURATION_MODEL, body,
                          rate_rps=capacity_rps)],
                duration_s=DURATION_S, seed=42))
            drained = gateway.stop()
    finally:
        engine.shutdown()

    print(f"\nmeasured capacity {capacity_rps:.1f} rps "
          f"(service {service_s * 1e3:.1f} ms), offered {2 * capacity_rps:.1f} rps "
          f"for {report.duration_s:.1f}s")
    print(report.render())

    # -- zero dropped, clean shutdown ---------------------------------
    assert report.total_dropped == 0, "requests vanished without an answer"
    assert drained, "gateway shutdown left requests in flight"
    # -- every rejection is explicit (429/503/504, nothing else) ------
    for tenant in report.tenants.values():
        assert tenant.other_status == 0, \
            f"{tenant.tenant} saw unexpected status codes"
    # -- the offered load genuinely saturated admission ----------------
    assert report.total_rejected > 0, \
        "2x-capacity load produced no backpressure — not saturated"
    # -- p99 of admitted requests is bounded by the queueing the config
    #    allows, not by the offered load.  A request admitted at the back
    #    of its tenant queue waits at most TENANT_QUEUE predecessors,
    #    each accompanied by the other tenant's weighted share of
    #    dispatches (its queue refills continuously under open-loop
    #    saturation): worst case TENANT_QUEUE * total_weight / weight
    #    serial dispatch slots.  Without admission control the backlog —
    #    and hence p99 — would instead grow with the window duration.
    for name, weight in (("gold", GOLD_WEIGHT), ("free", FREE_WEIGHT)):
        worst_slots = TENANT_QUEUE * TOTAL_WEIGHT / weight
        p99_bound_s = 2.0 * worst_slots * service_s + 0.75
        p99_s = report.tenants[name].percentile_ms(99) / 1e3
        assert p99_s <= p99_bound_s, (
            f"{name} p99 {p99_s * 1e3:.0f} ms exceeds bound "
            f"{p99_bound_s * 1e3:.0f} ms ({worst_slots:.0f} slots x "
            f"{service_s * 1e3:.1f} ms service)")
    # -- goodput under saturation: overload costs rejections, not work --
    goodput = report.total_ok / report.duration_s
    assert goodput >= 0.5 * capacity_rps, (
        f"goodput {goodput:.1f} rps fell below half the measured "
        f"capacity {capacity_rps:.1f} rps")
    # -- weighted fairness: nobody below half their weighted share -----
    total_weight = GOLD_WEIGHT + FREE_WEIGHT
    for name, weight in (("gold", GOLD_WEIGHT), ("free", FREE_WEIGHT)):
        share = report.tenants[name].ok
        floor = 0.5 * (weight / total_weight) * report.total_ok
        assert share >= floor, (
            f"tenant {name} completed {share} requests, below half its "
            f"weighted share ({floor:.0f} of {report.total_ok})")


@pytest.mark.parametrize("name", GATEWAY_MODELS)
def test_gateway_response_bitwise_matches_direct_submit(name):
    model = build_model(name, variant="small")
    engine = InferenceEngine(EngineConfig(
        max_batch_size=4, max_wait_s=0.002, qos=QoSConfig()))
    feed = example_inputs(model)
    try:
        reference = engine.submit(model, feed).result(timeout=300)
        server = GatewayServer(engine, {name: model})
        with GatewayThread(server) as gateway:
            from repro.gateway.loadgen import http_request

            status, _, body = asyncio.run(http_request(
                "127.0.0.1", gateway.port, "POST",
                f"/v1/models/{name}/infer", body=codec.encode_request(feed),
                timeout=300.0))
    finally:
        engine.shutdown()
    assert status == 200, body[:500]
    outputs = codec.decode_outputs(body)
    assert sorted(outputs) == sorted(reference)
    for out_name, ref in reference.items():
        ref = np.asarray(ref)
        got = outputs[out_name]
        assert got.dtype == ref.dtype, out_name
        assert got.shape == ref.shape, out_name
        assert np.array_equal(got.view(np.uint8), ref.view(np.uint8)), (
            f"{name}/{out_name}: HTTP response differs from direct submit")
