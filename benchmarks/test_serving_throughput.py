"""Serving-engine throughput: cached+batched engine vs naive compile-per-request.

The acceptance bar for the serving subsystem:

* the engine's cached + micro-batched path sustains strictly more
  requests/sec than the naive pre-serving path (a full ``ramiel_compile``
  plus one parallel execution per request) on the same workload, and
* a second compilation of an identical (model, config, input signature)
  triple is a cache hit with zero recompilation.

Reduced-size model variants keep the harness fast; the relative comparison
is what matters, exactly like the measured-speedup benchmarks.  Run with
``-s`` to see the per-model table and the serving metrics report.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reports import format_rows, render_serving_report
from repro.models import build_model
from repro.pipeline import ramiel_compile
from repro.serving import (
    EngineConfig,
    InferenceEngine,
    drive_load,
    example_inputs,
    naive_throughput,
)

#: three zoo models of different topology (fire modules, inception blocks,
#: transformer layers) served from one engine
SERVED_MODELS = ["squeezenet", "googlenet", "bert"]

NUM_REQUESTS = 16
CONCURRENCY = 8
NAIVE_REQUESTS = 2


@pytest.fixture(scope="module")
def served_models():
    return {name: build_model(name, variant="small") for name in SERVED_MODELS}


@pytest.fixture(scope="module")
def engine():
    eng = InferenceEngine(EngineConfig(max_batch_size=8, max_wait_s=0.005))
    yield eng
    eng.shutdown()


def test_engine_beats_naive_per_request_compile(served_models, engine):
    rows = []
    for name, model in served_models.items():
        engine.warmup(model)
        load = drive_load(engine, model, num_requests=NUM_REQUESTS,
                          concurrency=CONCURRENCY)
        naive = naive_throughput(model, num_requests=NAIVE_REQUESTS)
        rows.append({
            "model": name,
            "engine_rps": round(load["rps"], 2),
            "naive_rps": round(naive["rps"], 2),
            "speedup": round(load["rps"] / naive["rps"], 1),
        })
    print()
    print(format_rows(rows))
    print()
    print(render_serving_report(engine.registry))
    for row in rows:
        assert row["engine_rps"] > row["naive_rps"], (
            f"{row['model']}: serving engine ({row['engine_rps']} rps) must beat "
            f"naive compile-per-request ({row['naive_rps']} rps)")


def test_identical_triple_is_cache_hit_with_zero_recompilation(served_models, engine):
    model = served_models["squeezenet"]
    engine.warmup(model)  # may or may not compile, depending on test order
    compiles_before = engine.metrics.snapshot()["cache"]["compiles"]
    hits_before = engine.metrics.snapshot()["cache"]["hits"]

    # identical (model fingerprint, config, input signature) → pure hit
    engine.infer(model, example_inputs(model, seed=123))
    snapshot = engine.metrics.snapshot()["cache"]
    assert snapshot["compiles"] == compiles_before, "cache hit must not recompile"
    assert snapshot["hits"] == hits_before + 1

    # even a freshly rebuilt—but identical—model object is a hit
    rebuilt = build_model("squeezenet", variant="small")
    engine.infer(rebuilt, example_inputs(rebuilt, seed=124))
    assert engine.metrics.snapshot()["cache"]["compiles"] == compiles_before


def test_unbatchable_model_degrades_gracefully(served_models, engine):
    """BERT's generated code bakes the batch size into attention reshapes, so
    the engine must serve it unfused — but still cached, warm and correct."""
    model = served_models["bert"]
    info = engine.warmup(model)
    assert info["batchable"] is False

    reference = ramiel_compile(model)
    feed = example_inputs(model, seed=5)
    outputs = engine.infer(model, feed)
    expected = reference.run_sequential(feed)
    for name, ref in expected.items():
        np.testing.assert_allclose(outputs[name], ref, rtol=1e-4, atol=1e-5)

    load = drive_load(engine, model, num_requests=8, concurrency=4)
    assert load["requests"] == 8
    assert engine.metrics.snapshot()["failed"] == 0

    # a multi-sample request must be rejected cleanly, not fed to the pool
    # (whose generated reshapes would fail and wedge the warm workers)
    compiles_before = engine.metrics.snapshot()["cache"]["compiles"]
    with pytest.raises(RuntimeError, match="single sample"):
        engine.infer(model, example_inputs(model, batch_size=2))
    engine.infer(model, example_inputs(model, seed=6))  # artifact still warm
    assert engine.metrics.snapshot()["cache"]["compiles"] == compiles_before


def test_concurrent_load_actually_batches(served_models, engine):
    model = served_models["googlenet"]
    engine.warmup(model)
    engine.metrics.reset()
    drive_load(engine, model, num_requests=NUM_REQUESTS, concurrency=CONCURRENCY)
    snapshot = engine.metrics.snapshot()
    assert snapshot["completed"] == NUM_REQUESTS
    assert snapshot["failed"] == 0
    assert max(snapshot["batch_histogram"]) > 1, (
        "concurrent requests against one artifact should fuse into batches; "
        f"histogram: {snapshot['batch_histogram']}")
