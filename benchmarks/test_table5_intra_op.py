"""Table V — LC + downstream intra-op parallelism vs pure intra-op parallelism.

The paper enables 2 and 4 OpenMP threads inside PyTorch operators and
compares LC+intra-op against sequential-with-intra-op.  The simulator models
intra-op parallelism as an Amdahl-style per-node scaling, so both the
parallel and the sequential baseline speed up, and what remains is the
extra benefit of the task-level clustering — including the paper's
observed plateau when moving from 2 to 4 threads (oversubscription).
"""

from __future__ import annotations

from repro.analysis.reports import format_rows

from benchmarks.conftest import print_table

MODELS = ["squeezenet", "googlenet", "inception_v3", "inception_v4", "retinanet", "nasnet"]
PAPER_TABLE5 = {
    "squeezenet": {"speedup_t2": 0.78, "speedup_t4": 0.67},
    "googlenet": {"speedup_t2": 1.14, "speedup_t4": 1.00},
    "inception_v3": {"speedup_t2": 1.27, "speedup_t4": 1.23},
    "inception_v4": {"speedup_t2": 1.45, "speedup_t4": 1.18},
    "retinanet": {"speedup_t2": 1.23, "speedup_t4": 1.12},
    "nasnet": {"speedup_t2": 1.3, "speedup_t4": None},
}


def _intra_op_rows(zoo_merged_clusterings, config):
    rows = {}
    for name in MODELS:
        clustering = zoo_merged_clusterings[name]
        row = {}
        for threads in (2, 4):
            sim = config.simulator(num_threads=threads)
            result = sim.simulate(clustering)
            # Both Par and Seq have intra-op enabled (footnote of Table V).
            row[f"par_t{threads}"] = round(result.makespan, 1)
            row[f"seq_t{threads}"] = round(result.sequential_time, 1)
            row[f"speedup_t{threads}"] = round(result.speedup, 2)
        rows[name] = row
    return rows


def test_table5_lc_plus_intra_op(benchmark, zoo_merged_clusterings, experiment_config):
    rows = benchmark.pedantic(_intra_op_rows, args=(zoo_merged_clusterings, experiment_config),
                              rounds=1, iterations=1)
    table = [{"model": name, **row,
              "paper_t2": PAPER_TABLE5[name]["speedup_t2"],
              "paper_t4": PAPER_TABLE5[name]["speedup_t4"]} for name, row in rows.items()]
    print_table("Table V — LC + downstream intra-op parallelism", format_rows(table))
    benchmark.extra_info["rows"] = rows

    for name in MODELS:
        # LC still helps the models with real task parallelism even when
        # intra-op threads are enabled (the relative gain shrinks because
        # the node durations shrink for both sides, diminishing-return shape).
        if name != "squeezenet":
            assert rows[name]["speedup_t2"] > 1.0, name
    # Squeezenet keeps losing, as in the paper.
    assert rows["squeezenet"]["speedup_t2"] < 1.05
