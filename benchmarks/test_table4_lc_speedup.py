"""Table IV — sequential vs LC-parallel execution time and speedup (batch size 1).

The paper times Ramiel-generated sequential and parallel PyTorch code on a
12-core Xeon.  This harness regenerates the table with the deterministic
schedule simulator (static cost model + the calibrated runtime overheads),
which reproduces the table's *shape*: Squeezenet slows down, Yolo/BERT gain
little, the Inceptions and Retinanet gain 1.2-1.6x, NASNet gains the most.
"""

from __future__ import annotations

from repro.analysis.reports import render_comparison
from repro.models import paper_reference

from benchmarks.conftest import print_table


def _simulate_all(zoo_merged_clusterings, config):
    sim = config.simulator()
    return {name: sim.simulate(clustering).as_row()
            for name, clustering in zoo_merged_clusterings.items()}


def test_table4_lc_speedups(benchmark, zoo_merged_clusterings, experiment_config):
    rows = benchmark.pedantic(_simulate_all, args=(zoo_merged_clusterings, experiment_config),
                              rounds=1, iterations=1)
    paper = paper_reference("table4")
    text = render_comparison(rows, paper, keys=["clusters", "speedup"])
    print_table("Table IV — LC speedup over sequential (measured vs paper)", text)
    benchmark.extra_info["rows"] = rows

    speedups = {name: row["speedup"] for name, row in rows.items()}
    # Shape assertions mirroring the paper's findings:
    assert speedups["squeezenet"] < 1.0                      # slowdown, as predicted
    assert speedups["nasnet"] == max(speedups.values())      # biggest winner
    assert speedups["nasnet"] > 1.5
    for name in ("googlenet", "inception_v3", "inception_v4", "retinanet"):
        assert speedups[name] > 1.0, name
    assert speedups["bert"] < 1.4                            # only a modest gain
    assert speedups["yolo_v5"] < 1.3                         # marginal, like the paper's 0.96


def test_table4_clustering_compile_speed(benchmark, zoo_dataflow):
    """Compile-time microbenchmark: LC + merging over the whole zoo."""
    from repro.clustering import linear_clustering, merge_clusters_fixpoint

    def compile_all():
        return {name: merge_clusters_fixpoint(linear_clustering(dfg)).num_clusters
                for name, dfg in zoo_dataflow.items()}

    result = benchmark(compile_all)
    assert result["squeezenet"] == 2
