"""Table III — cluster counts after constant propagation and dead-code elimination.

The paper reports the number of parallel clusters for Yolo V5, NASNet and
BERT before and after the CP+DCE pruning: the prunable shape/constant
chains otherwise generate their own clusters.
"""

from __future__ import annotations

from repro.analysis.reports import render_comparison
from repro.analysis.speedup import ExperimentConfig, cluster_model
from repro.models import paper_reference
from repro.passes import optimize_model

from benchmarks.conftest import print_table

MODELS = ["yolo_v5", "nasnet", "bert"]


def _cluster_counts(zoo_models, zoo_merged_clusterings, config):
    rows = {}
    for name in MODELS:
        pruned, stats = optimize_model(zoo_models[name])
        pruned_clustering = cluster_model(pruned, config)
        rows[name] = {
            "before_cp": zoo_merged_clusterings[name].num_clusters,
            "after_cp": pruned_clustering.num_clusters,
            "nodes_removed": stats["nodes_removed"],
        }
    return rows


def test_table3_cluster_counts_after_cp_dce(benchmark, zoo_models,
                                            zoo_merged_clusterings, experiment_config):
    rows = benchmark.pedantic(
        _cluster_counts, args=(zoo_models, zoo_merged_clusterings, experiment_config),
        rounds=1, iterations=1)
    paper = paper_reference("table3")
    text = render_comparison(rows, paper, keys=["before_cp", "after_cp"])
    print_table("Table III — clusters after constant propagation + DCE", text)
    benchmark.extra_info["rows"] = rows

    for name in MODELS:
        # The paper's shape: all three models have prunable structure and the
        # cluster count never grows (it shrinks for the models with whole
        # prunable chains).
        assert rows[name]["nodes_removed"] > 0, name
        assert rows[name]["after_cp"] <= rows[name]["before_cp"], name
    assert rows["nasnet"]["after_cp"] < rows["nasnet"]["before_cp"]
    assert rows["bert"]["after_cp"] < rows["bert"]["before_cp"]
