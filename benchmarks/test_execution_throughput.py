"""Planned vs interpreted execution: wall-clock and allocation behaviour.

The acceptance bar for the planned execution engine
(:mod:`repro.runtime.plan`):

* :class:`ExecutionPlan` beats the naive node-by-node ``GraphExecutor``
  interpreter on wall-clock for every benchmarked zoo model,
* once warm, the plan's buffer arena performs **zero** new allocations per
  run — *including the heavy conv/GEMM/pooling operators*, whose outputs
  come from the liveness-managed arena and whose im2col/padding/GEMM
  scratch is leased from arena-backed workspaces —
* the destination-passing heavy kernels beat the PR-3-era implementation
  (per-call weight reshape/transpose, allocating im2col, ``concatenate``
  group assembly) on a conv-dominated workload, and
* a warm ``Session.run_with_binding`` loop (the IOBinding surface) performs
  zero arena allocations **and zero graph-output allocations**: every
  output is written directly into its bound buffer (direct writes only, no
  end-of-run copies), bitwise-identical to the interpreter.

Inputs use a serving-shaped batch (the micro-batcher's fused requests are
exactly this workload), where the in-place fusion and arena reuse pay for
real memory traffic, not just dispatch overhead.

Environment knobs (used by the CI perf-smoke job):

* ``REPRO_PERF_MODELS`` — comma-separated registry names
  (default ``squeezenet,googlenet,yolo_v5``)
* ``REPRO_PERF_ROUNDS`` — timing rounds per engine, best-of (default 5)
* ``REPRO_PERF_BATCH``  — input batch size (default 8)
* ``REPRO_BENCH_JSON``  — when set, write the measured trajectory
  (throughput, allocs/run, arena stats per model plus the op-level PR-3
  comparison) to this path; CI uploads it as the ``BENCH_exec.json``
  artifact so future PRs can gate against a recorded baseline instead of
  only a same-run paired ratio.

Run with ``-s`` to see the comparison tables.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

import numpy as np
import pytest

from repro.analysis.reports import format_rows
from repro.models import build_model
from repro.runtime.executor import GraphExecutor
from repro.runtime.plan import ExecutionPlan
from repro.runtime.session import create_session
from repro.runtime.tensor_utils import Workspace, im2col
import repro.runtime.functional as F
from repro.serving.engine import example_inputs

PERF_MODELS = [name.strip() for name in os.environ.get(
    "REPRO_PERF_MODELS", "squeezenet,googlenet,yolo_v5").split(",") if name.strip()]
PERF_ROUNDS = int(os.environ.get("REPRO_PERF_ROUNDS", "5"))
PERF_BATCH = int(os.environ.get("REPRO_PERF_BATCH", "8"))
BENCH_JSON = os.environ.get("REPRO_BENCH_JSON", "")

#: tolerance for "must be faster" claims; absorbs scheduler noise on
#: short CI runs without letting a real regression through
GATE = 1.02

#: per-model tolerance for the planned-vs-interpreter check.  The heavy
#: kernels (cached weight layouts, single-copy finalization) are shared
#: with the interpreter, so on BLAS-dominated default-size models the two
#: engines run near parity and only dispatch/arena savings separate them;
#: this bounds regressions without flaking on parity-class models, while
#: ``test_planned_path_beats_interpreter`` still requires a real win on at
#: least one model
INTERP_REGRESSION_GATE = 1.08

#: the destination-passing plan must never be materially slower than the
#: PR-3-style plan (heavy ops allocating per run); allocator reuse can make
#: the two nearly tie on small models, so this only catches regressions
HEAVY_REGRESSION_GATE = 1.10


def _paired_timings(fn_a, fn_b, rounds: int):
    """Interleaved A/B timing pairs.

    Returns the best time of each engine plus the per-round ratio list.
    Pairing each A round with an immediately following B round makes the
    comparison robust to slow machine-state drift (frequency scaling,
    cache pressure from co-tenants): the gate uses the median of per-pair
    ratios, not a ratio of two absolute numbers taken seconds apart."""
    best_a = best_b = float("inf")
    ratios = []
    for _ in range(max(rounds, 1)):
        start = time.perf_counter()
        fn_a()
        time_a = time.perf_counter() - start
        start = time.perf_counter()
        fn_b()
        time_b = time.perf_counter() - start
        best_a = min(best_a, time_a)
        best_b = min(best_b, time_b)
        ratios.append(time_a / time_b)
    ratios.sort()
    return best_a, best_b, ratios[len(ratios) // 2]


def _measure(model_name: str) -> Dict:
    model = build_model(model_name, variant="default")
    feed = example_inputs(model, batch_size=PERF_BATCH, seed=1)
    interp = GraphExecutor(model)
    plan = ExecutionPlan(model)
    base_plan = ExecutionPlan(model, heavy_out=False)  # PR-3-style baseline

    # Warm all paths symmetrically: page in weights, let the plans
    # specialize their shapes and populate the arenas, and give the
    # BLAS/OS state two full alternating passes before anything is timed.
    for _ in range(2):
        interp.run(feed)
        base_plan.run(feed)
        plan.run(feed)

    allocs_warm = plan.stats()["arena"]["allocations"]
    interp_s, plan_s, median_ratio = _paired_timings(
        lambda: interp.run(feed), lambda: plan.run(feed), PERF_ROUNDS)
    _, _, heavy_ratio = _paired_timings(
        lambda: base_plan.run(feed), lambda: plan.run(feed), PERF_ROUNDS)
    stats = plan.stats()
    #: every node output is a fresh allocation per interpreter run
    interp_allocs = sum(len([o for o in n.outputs if o])
                        for n in model.graph.nodes)
    row = {
        "model": model_name,
        "interp_ms": round(interp_s * 1e3, 2),
        "planned_ms": round(plan_s * 1e3, 2),
        "speedup": round(median_ratio, 3),
        "heavy_speedup": round(heavy_ratio, 3),
        "fused_nodes": stats["fused_nodes"],
        "heavy_steps": stats["heavy_steps"],
        "interp_allocs_per_run": interp_allocs,
        "arena_allocs_delta": stats["arena"]["allocations"] - allocs_warm,
        "arena_reuses": stats["arena"]["reuses"],
        "arena_slots": stats["arena"]["slots"],
    }
    row.update(_measure_binding(model, plan, interp, feed))
    return row


def _measure_binding(model, plan: ExecutionPlan, interp: GraphExecutor,
                     feed) -> Dict:
    """The IOBinding gate: warm bound runs allocate nothing, anywhere.

    Wraps the already-warm plan in a Session, binds the feed and
    session-managed output buffers, and measures a warm
    ``run_with_binding`` loop: arena allocations and graph-output copies
    must both stay flat (every output is a direct in-place write into its
    bound buffer), the returned arrays must *be* the bound buffers, and
    the results must stay bitwise-identical to the interpreter.
    """
    session = create_session(plan)
    binding = session.bind()
    for name, array in feed.items():
        binding.bind_input(name, array)
    for name in session.output_names:
        binding.bind_output(name)
    for _ in range(2):  # materialize output buffers + specialize dest heads
        session.run_with_binding(binding)

    stats = plan.stats()
    allocs_warm = stats["arena"]["allocations"]
    copies_warm = stats["output_binding"]["copy_writes"]
    direct_warm = stats["output_binding"]["direct_writes"]

    plan_s, bound_s, median_ratio = _paired_timings(
        lambda: plan.run(feed), lambda: session.run_with_binding(binding),
        PERF_ROUNDS)

    buffers = binding.get_outputs()
    outputs = session.run_with_binding(binding)
    outputs_pinned = all(outputs[name] is buffers[name] for name in buffers)
    reference = interp.run(feed)
    bitwise_ok = all(
        np.array_equal(np.asarray(outputs[name]), np.asarray(ref))
        for name, ref in reference.items())

    stats = plan.stats()
    return {
        "bound_ms": round(bound_s * 1e3, 2),
        "binding_speedup": round(median_ratio, 3),
        "binding_allocs_delta": stats["arena"]["allocations"] - allocs_warm,
        "binding_output_copies": stats["output_binding"]["copy_writes"] - copies_warm,
        "binding_direct_writes": stats["output_binding"]["direct_writes"] - direct_warm,
        "binding_outputs_pinned": outputs_pinned,
        "binding_bitwise_ok": bitwise_ok,
    }


# ---------------------------------------------------------------------------
# Op-level PR-3 reference: the conv implementation before destination
# passing, pinned here so the benchmark measures exactly what this PR
# removed — per-call weight reshape + transposed-view GEMM, an allocating
# im2col, a fresh output per call and ``concatenate`` group assembly.
# ---------------------------------------------------------------------------
def _pr3_conv2d(x, weight, strides=(1, 1), pads=(1, 1, 1, 1), group=1):
    n = x.shape[0]
    m, c_per_group, kh, kw = weight.shape
    if group == 1:
        cols, (oh, ow) = im2col(x, (kh, kw), strides, pads)
        w_mat = weight.reshape(m, -1)
        out = cols @ w_mat.T
        out = out.reshape(n, oh, ow, m).transpose(0, 3, 1, 2)
        return np.ascontiguousarray(out)
    out_groups = []
    m_per_group = m // group
    for g in range(group):
        xs = x[:, g * c_per_group:(g + 1) * c_per_group]
        ws = weight[g * m_per_group:(g + 1) * m_per_group]
        cols, (oh, ow) = im2col(xs, (kh, kw), strides, pads)
        res = cols @ ws.reshape(m_per_group, -1).T
        out_groups.append(res.reshape(n, oh, ow, m_per_group).transpose(0, 3, 1, 2))
    return np.ascontiguousarray(np.concatenate(out_groups, axis=1))


def _measure_conv_op() -> List[Dict]:
    rng = np.random.default_rng(0)
    cases = [
        ("conv3x3_64to128_56", (PERF_BATCH, 64, 56, 56), (128, 64, 3, 3), 1),
        ("grouped_conv_g8_28", (PERF_BATCH, 64, 28, 28), (128, 8, 3, 3), 8),
    ]
    rows = []
    for label, x_shape, w_shape, group in cases:
        x = rng.standard_normal(x_shape).astype(np.float32)
        w = rng.standard_normal(w_shape).astype(np.float32)
        ws = Workspace()
        out = F.conv2d(x, w, pads=(1, 1, 1, 1), group=group, workspace=ws)
        for _ in range(2):
            _pr3_conv2d(x, w, group=group)
            F.conv2d(x, w, pads=(1, 1, 1, 1), group=group, out=out, workspace=ws)
        pr3_s, new_s, median_ratio = _paired_timings(
            lambda: _pr3_conv2d(x, w, group=group),
            lambda: F.conv2d(x, w, pads=(1, 1, 1, 1), group=group,
                             out=out, workspace=ws),
            max(PERF_ROUNDS, 3))
        rows.append({
            "case": label,
            "pr3_ms": round(pr3_s * 1e3, 3),
            "dest_ms": round(new_s * 1e3, 3),
            "speedup": round(median_ratio, 3),
            "workspace_allocs": ws.stats()["allocations"],
            "workspace_reuses": ws.stats()["reuses"],
        })
    return rows


def _emit_trajectory(model_rows: List[Dict], conv_rows: List[Dict],
                     path: str) -> None:
    payload = {
        "schema": "repro-exec-bench/2",
        "created_unix": time.time(),
        "config": {"models": PERF_MODELS, "rounds": PERF_ROUNDS,
                   "batch": PERF_BATCH},
        "models": model_rows,
        "conv_op_pr3_comparison": conv_rows,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)


@pytest.fixture(scope="module")
def throughput_rows():
    return [_measure(name) for name in PERF_MODELS]


@pytest.fixture(scope="module")
def conv_op_rows():
    return _measure_conv_op()


@pytest.fixture(scope="module", autouse=True)
def bench_artifact(throughput_rows, conv_op_rows):
    if BENCH_JSON:
        _emit_trajectory(throughput_rows, conv_op_rows, BENCH_JSON)
    return BENCH_JSON


def test_planned_path_beats_interpreter(throughput_rows):
    print()
    print(format_rows(throughput_rows))
    for row in throughput_rows:
        assert row["speedup"] * INTERP_REGRESSION_GATE >= 1.0, (
            f"{row['model']}: planned execution is materially slower than "
            f"the interpreter (median per-pair speedup {row['speedup']}x, "
            f"best planned {row['planned_ms']} ms vs interp "
            f"{row['interp_ms']} ms)")
    best = max(row["speedup"] for row in throughput_rows)
    assert best * GATE >= 1.0, (
        "the planned engine must beat the interpreter on at least one "
        f"benchmarked model; got {[(r['model'], r['speedup']) for r in throughput_rows]}")


def test_planned_path_is_zero_alloc_once_warm(throughput_rows):
    for row in throughput_rows:
        assert row["arena_allocs_delta"] == 0, (
            f"{row['model']}: the warm arena allocated "
            f"{row['arena_allocs_delta']} new buffers during timed runs; "
            "the steady-state hot path must be allocation-free, heavy ops "
            "included")
        assert row["interp_allocs_per_run"] > 0
        assert row["fused_nodes"] > 0
        # Heavy ops must actually be on the destination-passing path, not
        # silently falling back to allocating binders.
        assert row["heavy_steps"] > 0


def test_heavy_destination_passing_never_regresses_plan(throughput_rows):
    """The destination-passing plan vs the PR-3-style plan, whole model.

    Allocator reuse means the two can nearly tie on small models, so this
    is a regression gate, not a speedup claim — the speedup claim is the
    op-level test below, where the PR-3 implementation is pinned."""
    for row in throughput_rows:
        assert row["heavy_speedup"] * HEAVY_REGRESSION_GATE >= 1.0, (
            f"{row['model']}: heavy destination passing made the planned "
            f"engine materially slower ({row['heavy_speedup']}x vs the "
            "heavy_out=False baseline)")


def test_bound_runs_zero_output_alloc_and_bitwise(throughput_rows):
    """The IOBinding acceptance gate: a warm ``run_with_binding`` loop
    performs zero arena allocations and zero graph-output allocations —
    every graph output is written directly into its bound buffer — and the
    bound outputs are bitwise-identical to the interpreter."""
    for row in throughput_rows:
        assert row["binding_allocs_delta"] == 0, (
            f"{row['model']}: warm bound runs allocated "
            f"{row['binding_allocs_delta']} arena buffers")
        assert row["binding_output_copies"] == 0, (
            f"{row['model']}: {row['binding_output_copies']} graph outputs "
            "were finalized by copy instead of written in place — the "
            "bound hot path must be allocation-free end to end")
        assert row["binding_direct_writes"] > 0
        assert row["binding_outputs_pinned"], (
            f"{row['model']}: run_with_binding returned arrays that are "
            "not the bound buffers")
        assert row["binding_bitwise_ok"], (
            f"{row['model']}: bound outputs diverged from GraphExecutor")


def test_bound_runs_do_not_regress_unbound_plan(throughput_rows):
    """Binding removes the per-run output allocation; it must never make
    the planned path materially slower (regression bound, not a claim)."""
    for row in throughput_rows:
        assert row["binding_speedup"] * INTERP_REGRESSION_GATE >= 1.0, (
            f"{row['model']}: run_with_binding is materially slower than "
            f"the unbound plan ({row['binding_speedup']}x)")


def test_heavy_conv_beats_pr3_implementation(conv_op_rows):
    print()
    print(format_rows(conv_op_rows))
    best = max(row["speedup"] for row in conv_op_rows)
    assert best * GATE >= 1.0, (
        "destination-passing conv2d (cached transposed weights, "
        "workspace-backed im2col, out= finalization) must beat the "
        f"PR-3-era implementation on at least one conv case; got {conv_op_rows}")
    for row in conv_op_rows:
        # Once warm the workspace serves every scratch buffer from its
        # pools: the timed rounds must not have allocated at all.
        assert row["workspace_allocs"] <= 4, row


def test_trajectory_artifact_schema(tmp_path, throughput_rows, conv_op_rows):
    """The BENCH_exec.json trajectory artifact is valid, loadable JSON."""
    path = tmp_path / "BENCH_exec.json"
    _emit_trajectory(throughput_rows, conv_op_rows, str(path))
    payload = json.loads(path.read_text())
    assert payload["schema"] == "repro-exec-bench/2"
    assert [row["model"] for row in payload["models"]] == PERF_MODELS
    for row in payload["models"]:
        assert {"speedup", "heavy_speedup", "arena_allocs_delta",
                "heavy_steps", "arena_reuses", "binding_speedup",
                "binding_allocs_delta", "binding_output_copies",
                "binding_outputs_pinned", "binding_bitwise_ok"} <= set(row)
    assert payload["conv_op_pr3_comparison"]
