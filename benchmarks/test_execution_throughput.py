"""Planned vs interpreted execution: wall-clock and allocation behaviour.

The acceptance bar for the planned execution engine
(:mod:`repro.runtime.plan`):

* :class:`ExecutionPlan` beats the naive node-by-node ``GraphExecutor``
  interpreter on wall-clock for every benchmarked zoo model, and
* once warm, the plan's buffer arena performs **zero** new allocations per
  run — every elementwise intermediate is served from a recycled
  ``(shape, dtype)`` slot or written in place by a fused tail — while the
  interpreter allocates a fresh array for every node output on every run.

Inputs use a serving-shaped batch (the micro-batcher's fused requests are
exactly this workload), where the in-place fusion and arena reuse pay for
real memory traffic, not just dispatch overhead.

Environment knobs (used by the CI perf-smoke job):

* ``REPRO_PERF_MODELS`` — comma-separated registry names
  (default ``squeezenet,googlenet,yolo_v5``)
* ``REPRO_PERF_ROUNDS`` — timing rounds per engine, best-of (default 5)
* ``REPRO_PERF_BATCH``  — input batch size (default 8)

Run with ``-s`` to see the comparison table.
"""

from __future__ import annotations

import os
import time
from typing import Dict

import pytest

from repro.analysis.reports import format_rows
from repro.models import build_model
from repro.runtime.executor import GraphExecutor
from repro.runtime.plan import ExecutionPlan
from repro.serving.engine import example_inputs

PERF_MODELS = [name.strip() for name in os.environ.get(
    "REPRO_PERF_MODELS", "squeezenet,googlenet,yolo_v5").split(",") if name.strip()]
PERF_ROUNDS = int(os.environ.get("REPRO_PERF_ROUNDS", "5"))
PERF_BATCH = int(os.environ.get("REPRO_PERF_BATCH", "8"))

#: the planned path must be at least this close to (in practice: faster
#: than) the interpreter; the small tolerance absorbs scheduler noise on
#: single-round CI runs without letting a real regression through
GATE = 1.02


def _paired_timings(fn_a, fn_b, rounds: int):
    """Interleaved A/B timing pairs.

    Returns the best time of each engine plus the per-round ratio list.
    Pairing each interpreter round with an immediately following planned
    round makes the comparison robust to slow machine-state drift
    (frequency scaling, cache pressure from co-tenants): the gate uses the
    median of per-pair ratios, not a ratio of two absolute numbers taken
    seconds apart."""
    best_a = best_b = float("inf")
    ratios = []
    for _ in range(max(rounds, 1)):
        start = time.perf_counter()
        fn_a()
        time_a = time.perf_counter() - start
        start = time.perf_counter()
        fn_b()
        time_b = time.perf_counter() - start
        best_a = min(best_a, time_a)
        best_b = min(best_b, time_b)
        ratios.append(time_a / time_b)
    ratios.sort()
    return best_a, best_b, ratios[len(ratios) // 2]


def _measure(model_name: str) -> Dict:
    model = build_model(model_name, variant="default")
    feed = example_inputs(model, batch_size=PERF_BATCH, seed=1)
    interp = GraphExecutor(model)
    plan = ExecutionPlan(model)

    # Warm both paths symmetrically: page in weights, let the plan
    # specialize its shapes and populate the arena, and give the BLAS/OS
    # state two full alternating passes before anything is timed.
    for _ in range(2):
        interp.run(feed)
        plan.run(feed)

    allocs_warm = plan.stats()["arena"]["allocations"]
    interp_s, plan_s, median_ratio = _paired_timings(
        lambda: interp.run(feed), lambda: plan.run(feed), PERF_ROUNDS)
    stats = plan.stats()
    #: every node output is a fresh allocation per interpreter run
    interp_allocs = sum(len([o for o in n.outputs if o])
                        for n in model.graph.nodes)
    return {
        "model": model_name,
        "interp_ms": round(interp_s * 1e3, 2),
        "planned_ms": round(plan_s * 1e3, 2),
        "speedup": round(median_ratio, 3),
        "fused_nodes": stats["fused_nodes"],
        "interp_allocs_per_run": interp_allocs,
        "arena_allocs_delta": stats["arena"]["allocations"] - allocs_warm,
        "arena_reuses": stats["arena"]["reuses"],
    }


@pytest.fixture(scope="module")
def throughput_rows():
    return [_measure(name) for name in PERF_MODELS]


def test_planned_path_beats_interpreter(throughput_rows):
    print()
    print(format_rows(throughput_rows))
    for row in throughput_rows:
        assert row["speedup"] * GATE >= 1.0, (
            f"{row['model']}: planned execution is slower than the "
            f"interpreter (median per-pair speedup {row['speedup']}x, "
            f"best planned {row['planned_ms']} ms vs interp "
            f"{row['interp_ms']} ms)")


def test_planned_path_is_zero_alloc_once_warm(throughput_rows):
    for row in throughput_rows:
        assert row["arena_allocs_delta"] == 0, (
            f"{row['model']}: the warm arena allocated "
            f"{row['arena_allocs_delta']} new buffers during timed runs; "
            "the steady-state hot path must be allocation-free")
        assert row["interp_allocs_per_run"] > 0
        assert row["fused_nodes"] > 0
