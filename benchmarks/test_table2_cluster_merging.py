"""Table II — number of clusters before and after cluster merging."""

from __future__ import annotations

from repro.analysis.reports import render_comparison
from repro.clustering import merge_clusters_fixpoint
from repro.models import paper_reference

from benchmarks.conftest import print_table


def _merge_all(zoo_lc_clusterings):
    return {name: merge_clusters_fixpoint(lc) for name, lc in zoo_lc_clusterings.items()}


def test_table2_cluster_counts(benchmark, zoo_lc_clusterings):
    merged = benchmark.pedantic(_merge_all, args=(zoo_lc_clusterings,), rounds=1, iterations=1)
    rows = {
        name: {"before": zoo_lc_clusterings[name].num_clusters,
               "after": merged[name].num_clusters}
        for name in zoo_lc_clusterings
    }
    paper = paper_reference("table2")
    text = render_comparison(rows, paper, keys=["before", "after"])
    print_table("Table II — clusters before/after merging (measured vs paper)", text)
    benchmark.extra_info["rows"] = rows

    for name, row in rows.items():
        # Merging never increases the cluster count and, as in the paper,
        # reduces it substantially for every model with many linear clusters.
        assert row["after"] <= row["before"]
        if row["before"] >= 20:
            assert row["after"] <= row["before"] * 0.6 + 1, name
    # The paper's exactly-reproduced cases.
    assert rows["squeezenet"]["before"] == 9 and rows["squeezenet"]["after"] == 2
    assert rows["retinanet"]["before"] == 16 and rows["retinanet"]["after"] == 10
