"""Tracing overhead gates for the planned execution hot path.

The observability layer's first design constraint is *zero cost when
absent*: :class:`~repro.runtime.plan.ExecutionPlan` compiles its traced
stepper as a separate closure at ``enable_tracing`` time, so the default
path carries no per-step tracer branches.  These benchmarks hold that
claim to the same paired-ratio standard as
``benchmarks/test_execution_throughput.py``:

* a plan that went through an enable→disable tracing round trip must run
  at parity with a plan that never saw a tracer (the untraced closure is
  restored, not rebuilt around dead branches),
* with tracing *enabled*, the warm hot path must still perform zero arena
  allocations and zero graph-output allocations — spans record
  timestamps, they do not perturb buffer reuse, and
* an untraced :class:`~repro.runtime.worker_pool.WarmExecutorPool`
  dispatch must run at parity with a pool that went through a
  ``set_tracer`` attach→detach round trip: the cross-boundary tracing
  rides the job tuple as a ``None`` and costs one ``is None`` check per
  worker job when absent (a looser gate than the plan's, since pool runs
  include queue hand-off noise), and
* a *hardened* pool — live :class:`~repro.resilience.PoolSupervisor`
  plus a :class:`~repro.resilience.FaultInjector` with no specs armed —
  must dispatch at parity with a pristine pool: resilience, like
  tracing, is zero-cost when faults are absent.

Environment knobs (shared with the execution benchmark):

* ``REPRO_PERF_ROUNDS`` — timing rounds, best-of (default 5)
* ``REPRO_PERF_BATCH``  — input batch size (default 8)

Run with ``-s`` to see the measured table.
"""

from __future__ import annotations

import os
import time
from typing import Dict

import numpy as np
import pytest

from repro.analysis.reports import format_rows
from repro.models import build_model
from repro.observability import Tracer
from repro.runtime.plan import ExecutionPlan
from repro.serving.engine import example_inputs

OVERHEAD_MODELS = [name.strip() for name in os.environ.get(
    "REPRO_OBS_MODELS", "squeezenet").split(",") if name.strip()]
PERF_ROUNDS = int(os.environ.get("REPRO_PERF_ROUNDS", "5"))
PERF_BATCH = int(os.environ.get("REPRO_PERF_BATCH", "8"))

#: a tracing-disabled plan must run at parity with a never-traced plan;
#: this absorbs the same scheduler noise budget as the interpreter
#: regression gate in the execution benchmark
DISABLED_OVERHEAD_GATE = 1.08


def _paired_timings(fn_a, fn_b, rounds: int):
    """Interleaved A/B timing pairs (same scheme as the execution bench).

    Returns the best time of each side plus the median per-pair ratio, so
    slow machine-state drift cancels instead of biasing the gate."""
    best_a = best_b = float("inf")
    ratios = []
    for _ in range(max(rounds, 1)):
        start = time.perf_counter()
        fn_a()
        time_a = time.perf_counter() - start
        start = time.perf_counter()
        fn_b()
        time_b = time.perf_counter() - start
        best_a = min(best_a, time_a)
        best_b = min(best_b, time_b)
        ratios.append(time_a / time_b)
    ratios.sort()
    return best_a, best_b, ratios[len(ratios) // 2]


def _measure(model_name: str) -> Dict:
    model = build_model(model_name, variant="default")
    feed = example_inputs(model, batch_size=PERF_BATCH, seed=1)

    pristine = ExecutionPlan(model)          # never sees a tracer
    toggled = ExecutionPlan(model)           # enable → disable round trip
    tracer = Tracer()
    toggled.enable_tracing(tracer)
    toggled.run(feed)
    toggled.disable_tracing()

    for _ in range(2):                       # warm both symmetrically
        pristine.run(feed)
        toggled.run(feed)

    pristine_s, toggled_s, disabled_ratio = _paired_timings(
        lambda: pristine.run(feed), lambda: toggled.run(feed), PERF_ROUNDS)

    # traced runs: informational overhead + the zero-alloc invariant
    toggled.enable_tracing(tracer)
    toggled.run(feed)                        # let the traced closure warm
    allocs_warm = toggled.stats()["arena"]["allocations"]
    tracer.clear()
    _, traced_s, traced_ratio = _paired_timings(
        lambda: pristine.run(feed), lambda: toggled.run(feed), PERF_ROUNDS)
    stats = toggled.stats()
    traced_output = toggled.run(feed)
    toggled.disable_tracing()
    reference = pristine.run(feed)
    bitwise_ok = all(
        np.array_equal(np.asarray(traced_output[name]), np.asarray(value))
        for name, value in reference.items())
    return {
        "model": model_name,
        "pristine_ms": round(pristine_s * 1e3, 2),
        "disabled_ms": round(toggled_s * 1e3, 2),
        "disabled_ratio": round(disabled_ratio, 3),
        "traced_ms": round(traced_s * 1e3, 2),
        "traced_ratio": round(traced_ratio, 3),
        "spans_per_run": stats["steps"],
        "traced_allocs_delta": stats["arena"]["allocations"] - allocs_warm,
        "spans_recorded": tracer.stats()["recorded"],
        "spans_dropped": tracer.stats()["dropped"],
        "traced_bitwise_ok": bitwise_ok,
    }


@pytest.fixture(scope="module")
def overhead_rows():
    return [_measure(name) for name in OVERHEAD_MODELS]


def test_disabled_tracing_runs_at_parity(overhead_rows):
    """After enable→disable, the plan is the untraced closure again: a
    paired run against a never-traced plan must stay within noise."""
    print()
    print(format_rows(overhead_rows))
    for row in overhead_rows:
        assert row["disabled_ratio"] * DISABLED_OVERHEAD_GATE >= 1.0, (
            f"{row['model']}: a tracing-disabled plan is materially slower "
            f"than a never-traced one ({row['disabled_ratio']}x, "
            f"{row['disabled_ms']} ms vs {row['pristine_ms']} ms) — the "
            "untraced closure was not cleanly restored")


def test_traced_warm_runs_stay_zero_alloc(overhead_rows):
    """Tracing must observe the hot path, not change it: warm traced runs
    allocate nothing from the arena and stay bitwise-identical."""
    for row in overhead_rows:
        assert row["traced_allocs_delta"] == 0, (
            f"{row['model']}: {row['traced_allocs_delta']} arena "
            "allocations appeared during warm traced runs")
        assert row["traced_bitwise_ok"], (
            f"{row['model']}: traced outputs diverged from the untraced "
            "plan")


def test_traced_runs_record_one_span_per_step(overhead_rows):
    for row in overhead_rows:
        assert row["spans_per_run"] > 0
        # the timed section runs PERF_ROUNDS traced passes plus the final
        # output-capture pass; every one records a span per plan step
        assert row["spans_recorded"] >= row["spans_per_run"] * PERF_ROUNDS
        assert row["spans_dropped"] == 0  # capacity covers the whole window


# ---------------------------------------------------------------------------
# Warm worker-pool dispatch parity
# ---------------------------------------------------------------------------
#: untraced pool dispatch vs a never-traced pool; looser than the plan
#: gate because every pool run includes thread-queue hand-off jitter
POOL_PARITY_GATE = 1.25


def _measure_pool(model_name: str) -> Dict:
    from repro.observability.merge import merge_traces
    from repro.pipeline import PipelineConfig, ramiel_compile
    from repro.runtime.worker_pool import WarmExecutorPool

    model = build_model(model_name, variant="default")
    feed = example_inputs(model, batch_size=PERF_BATCH, seed=1)
    result = ramiel_compile(model, config=PipelineConfig(
        generate_code=True, build_plan=False))
    weights = result.optimized_model.graph.initializers

    pristine = WarmExecutorPool(result.parallel_module, weights)
    toggled = WarmExecutorPool(result.parallel_module, weights)
    tracer = Tracer()
    try:
        toggled.set_tracer(tracer)        # attach → run → detach round trip
        toggled.run(feed)
        toggled.set_tracer(None)
        for _ in range(2):                # warm both symmetrically
            pristine.run(feed)
            toggled.run(feed)
        pristine_s, toggled_s, ratio = _paired_timings(
            lambda: pristine.run(feed), lambda: toggled.run(feed),
            PERF_ROUNDS)

        # traced-pool sanity: workers ship spans that merge into one trace
        toggled.set_tracer(tracer)
        toggled.clear_worker_traces()
        tracer.clear()
        traced_output = toggled.run(feed)
        buffers = toggled.worker_trace_buffers()
        merged = merge_traces(tracer, buffers)
        reference = pristine.run(feed)
        bitwise_ok = all(
            np.array_equal(np.asarray(traced_output[name]), np.asarray(value))
            for name, value in reference.items())
    finally:
        pristine.close()
        toggled.close()
    worker_spans = sum(len(b.events) for b in buffers)
    return {
        "model": model_name,
        "pristine_ms": round(pristine_s * 1e3, 2),
        "untraced_ms": round(toggled_s * 1e3, 2),
        "untraced_ratio": round(ratio, 3),
        "workers": len(buffers),
        "worker_spans": worker_spans,
        "worker_drops": sum(b.dropped for b in buffers),
        "merged_events": len(merged["traceEvents"]),
        "traced_bitwise_ok": bitwise_ok,
    }


@pytest.fixture(scope="module")
def pool_rows():
    return [_measure_pool(name) for name in OVERHEAD_MODELS]


def test_untraced_pool_dispatch_runs_at_parity(pool_rows):
    """After attach→detach, pool jobs carry ``ctx=None`` again: a paired
    run against a never-traced pool must stay within queue noise."""
    print()
    print(format_rows(pool_rows))
    for row in pool_rows:
        assert row["untraced_ratio"] * POOL_PARITY_GATE >= 1.0, (
            f"{row['model']}: a tracer-detached pool is materially slower "
            f"than a never-traced one ({row['untraced_ratio']}x, "
            f"{row['untraced_ms']} ms vs {row['pristine_ms']} ms) — the "
            "untraced dispatch path is carrying tracing weight")


def test_traced_pool_ships_worker_spans(pool_rows):
    for row in pool_rows:
        assert row["workers"] > 0
        # one worker.execute span per worker for the single traced run
        assert row["worker_spans"] >= row["workers"]
        assert row["worker_drops"] == 0
        assert row["merged_events"] > row["worker_spans"]  # + coordinator
        assert row["traced_bitwise_ok"], (
            f"{row['model']}: traced pool outputs diverged from the "
            "untraced pool")


# ---------------------------------------------------------------------------
# Hardened (supervised + injectable) pool dispatch parity
# ---------------------------------------------------------------------------
#: a pool running under a live supervisor with a fault injector installed
#: (but no specs armed) must dispatch at parity with a pristine pool: the
#: resilience layer's cost when faults are absent is one ``is not None``
#: check per dispatch plus a background thread that only wakes while idle
HARDENED_PARITY_GATE = POOL_PARITY_GATE


def _measure_hardened_pool(model_name: str) -> Dict:
    from repro.pipeline import PipelineConfig, ramiel_compile
    from repro.resilience import FaultInjector, PoolSupervisor
    from repro.runtime.worker_pool import WarmExecutorPool

    model = build_model(model_name, variant="default")
    feed = example_inputs(model, batch_size=PERF_BATCH, seed=1)
    result = ramiel_compile(model, config=PipelineConfig(
        generate_code=True, build_plan=False))
    weights = result.optimized_model.graph.initializers

    pristine = WarmExecutorPool(result.parallel_module, weights)
    hardened = WarmExecutorPool(result.parallel_module, weights)
    supervisor = PoolSupervisor(hardened, interval_s=0.1)
    try:
        # injector with no specs: every directive lookup misses, so the
        # fault slot rides each job as ``None`` — the zero-cost claim
        hardened.set_fault_injector(FaultInjector(seed=0))
        supervisor.start()
        for _ in range(2):                    # warm both symmetrically
            pristine.run(feed)
            hardened.run(feed)
        pristine_s, hardened_s, ratio = _paired_timings(
            lambda: pristine.run(feed), lambda: hardened.run(feed),
            PERF_ROUNDS)
        hardened_output = hardened.run(feed)
        reference = pristine.run(feed)
        bitwise_ok = all(
            np.array_equal(np.asarray(hardened_output[name]),
                           np.asarray(value))
            for name, value in reference.items())
        stats = hardened.stats()
        sup_stats = supervisor.stats()
    finally:
        supervisor.stop()
        pristine.close()
        hardened.close()
    return {
        "model": model_name,
        "pristine_ms": round(pristine_s * 1e3, 2),
        "hardened_ms": round(hardened_s * 1e3, 2),
        "hardened_ratio": round(ratio, 3),
        "respawns": stats["respawns"],
        "supervisor_respawns": sup_stats["respawns"],
        "supervisor_wedges": sup_stats["wedges_detected"],
        "hardened_bitwise_ok": bitwise_ok,
    }


@pytest.fixture(scope="module")
def hardened_rows():
    return [_measure_hardened_pool(name) for name in OVERHEAD_MODELS]


def test_hardened_pool_dispatch_runs_at_parity(hardened_rows):
    """Supervision + a disarmed fault injector must not tax the fault-free
    dispatch path: a paired run against a pristine pool stays within the
    same queue-noise budget as the tracing gate."""
    print()
    print(format_rows(hardened_rows))
    for row in hardened_rows:
        assert row["hardened_ratio"] * HARDENED_PARITY_GATE >= 1.0, (
            f"{row['model']}: a supervised pool with a disarmed fault "
            f"injector is materially slower than a pristine one "
            f"({row['hardened_ratio']}x, {row['hardened_ms']} ms vs "
            f"{row['pristine_ms']} ms) — the resilience layer is taxing "
            "fault-free dispatch")


def test_hardened_pool_stays_quiet_and_bitwise_correct(hardened_rows):
    """A healthy pool under supervision never respawns workers, never
    flags wedges, and produces bitwise-identical outputs."""
    for row in hardened_rows:
        assert row["respawns"] == 0, (
            f"{row['model']}: supervisor respawned {row['respawns']} "
            "healthy workers during the parity run")
        assert row["supervisor_respawns"] == 0
        assert row["supervisor_wedges"] == 0
        assert row["hardened_bitwise_ok"], (
            f"{row['model']}: hardened pool outputs diverged from the "
            "pristine pool")
