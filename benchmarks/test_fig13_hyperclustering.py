"""Fig. 13 — hyperclustering speedups for batch sizes 2, 4, 8 and 12.

The paper plots the relative speedup of hyperclustered execution against
the sequential version for increasing batch sizes, with and without
downstream intra-op parallelism; the speedup grows with the batch size as
the inter-cluster slack is filled.
"""

from __future__ import annotations

from repro.analysis.reports import format_rows
from repro.analysis.speedup import hypercluster_speedups

from benchmarks.conftest import print_table

MODELS = ["squeezenet", "googlenet", "inception_v3"]
BATCH_SIZES = [1, 2, 4, 8, 12]


def _series(zoo_models, config):
    rows = {}
    for name in MODELS:
        plain = hypercluster_speedups(zoo_models[name], BATCH_SIZES, config,
                                      switched=False, num_threads=1)
        with_intra = hypercluster_speedups(zoo_models[name], BATCH_SIZES, config,
                                           switched=False, num_threads=2)
        rows[name] = {
            **{f"b{b}": round(plain[b], 2) for b in BATCH_SIZES},
            **{f"b{b}_intra2": round(with_intra[b], 2) for b in BATCH_SIZES},
        }
    return rows


def test_fig13_hyperclustering_series(benchmark, zoo_models, experiment_config):
    rows = benchmark.pedantic(_series, args=(zoo_models, experiment_config),
                              rounds=1, iterations=1)
    table = [{"model": name, **row} for name, row in rows.items()]
    print_table("Fig. 13 — hyperclustering speedup vs batch size", format_rows(table))
    benchmark.extra_info["rows"] = rows

    for name, row in rows.items():
        # Speedup is (weakly) increasing in the batch size and clearly higher
        # than the batch-1 value by batch 8 — the figure's shape.
        assert row["b8"] > row["b1"], name
        assert row["b2"] >= row["b1"] * 0.98, name
        assert row["b12"] >= row["b8"] * 0.9, name
