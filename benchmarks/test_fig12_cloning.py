"""Fig. 12 — performance uplift of cloned models versus non-cloned models."""

from __future__ import annotations

from repro.analysis.reports import format_rows
from repro.analysis.speedup import cluster_model
from repro.clustering import clone_cheap_producers

from benchmarks.conftest import print_table

# The paper clones the smaller graphs and skips NASNet.
MODELS = ["squeezenet", "googlenet", "inception_v3", "inception_v4", "bert", "retinanet"]


def _cloning_rows(zoo_models, config):
    sim = config.simulator()
    rows = {}
    for name in MODELS:
        model = zoo_models[name]
        base = sim.simulate(cluster_model(model, config))
        cloned, report = clone_cheap_producers(model, cost_model=config.cost_model)
        cloned_result = sim.simulate(cluster_model(cloned, config))
        uplift = (base.sequential_time / cloned_result.makespan) / base.speedup - 1.0
        rows[name] = {
            "clones": report.clones_created,
            "speedup_lc": round(base.speedup, 2),
            "speedup_lc_clone": round(base.sequential_time / cloned_result.makespan, 2),
            "uplift_pct": round(uplift * 100.0, 1),
        }
    return rows


def test_fig12_cloning_uplift(benchmark, zoo_models, experiment_config):
    rows = benchmark.pedantic(_cloning_rows, args=(zoo_models, experiment_config),
                              rounds=1, iterations=1)
    table = [{"model": name, **row} for name, row in rows.items()]
    print_table("Fig. 12 — cloned vs non-cloned speedup", format_rows(table))
    benchmark.extra_info["rows"] = rows

    # Paper shape: cloning gives a moderate boost (up to ~8-12%) and never a
    # large regression on these graphs.
    assert any(row["uplift_pct"] > 0 for row in rows.values())
    for name, row in rows.items():
        assert row["uplift_pct"] > -10.0, name
        assert row["uplift_pct"] < 40.0, name
