"""Fig. 14 — switched hyperclustering on Squeezenet for batch sizes 2, 3, 4.

Switched hyperclusters interleave operations of *different* clusters across
batch samples to balance the per-core load; the paper reports uplifts of
around 30% over plain hyperclustering in the best cases.
"""

from __future__ import annotations

from repro.analysis.reports import format_rows
from repro.analysis.speedup import hypercluster_speedups

from benchmarks.conftest import print_table

BATCH_SIZES = [2, 3, 4]


def _series(zoo_models, config):
    model = zoo_models["squeezenet"]
    plain = hypercluster_speedups(model, BATCH_SIZES, config, switched=False)
    switched = hypercluster_speedups(model, BATCH_SIZES, config, switched=True)
    plain_intra = hypercluster_speedups(model, BATCH_SIZES, config, switched=False,
                                        num_threads=2)
    switched_intra = hypercluster_speedups(model, BATCH_SIZES, config, switched=True,
                                           num_threads=2)
    rows = []
    for batch in BATCH_SIZES:
        rows.append({
            "batch": batch,
            "hyper": round(plain[batch], 2),
            "switched": round(switched[batch], 2),
            "hyper_intra2": round(plain_intra[batch], 2),
            "switched_intra2": round(switched_intra[batch], 2),
            "uplift_pct": round((switched[batch] / plain[batch] - 1) * 100, 1),
        })
    return rows


def test_fig14_switched_hyperclustering(benchmark, zoo_models, experiment_config):
    rows = benchmark.pedantic(_series, args=(zoo_models, experiment_config),
                              rounds=1, iterations=1)
    print_table("Fig. 14 — switched hyperclustering (Squeezenet)", format_rows(rows))
    benchmark.extra_info["rows"] = rows

    for row in rows:
        # Switched hyperclusters never lose to plain ones and deliver a clear
        # uplift (the paper reports ~30% in the best cases).
        assert row["switched"] >= row["hyper"] - 1e-9
    assert max(row["uplift_pct"] for row in rows) > 10.0
