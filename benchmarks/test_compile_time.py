"""Section V-E prose — Ramiel end-to-end compile times.

The paper reports that Ramiel completes its code generation in a few
seconds per model (NASNet, the largest graph, taking 9.7 s).  This harness
measures the wall-clock of the full pipeline (prune + cluster + merge +
sequential & parallel code generation) for every model.
"""

from __future__ import annotations

import time

from repro.analysis.reports import format_rows
from repro.pipeline import ramiel_compile

from benchmarks.conftest import print_table

PAPER_COMPILE_TIMES_S = {"squeezenet": 2.2, "inception_v3": 5.2, "nasnet": 9.7}


def _compile_times(zoo_models):
    rows = []
    for name, model in zoo_models.items():
        start = time.perf_counter()
        result = ramiel_compile(model, prune=True, generate_code=True)
        elapsed = time.perf_counter() - start
        rows.append({
            "model": name,
            "nodes": model.num_nodes,
            "clusters": result.num_clusters,
            "compile_time_s": round(elapsed, 2),
            "paper_ct_s": PAPER_COMPILE_TIMES_S.get(name, "-"),
        })
    return rows


def test_compile_time_all_models(benchmark, zoo_models):
    rows = benchmark.pedantic(_compile_times, args=(zoo_models,), rounds=1, iterations=1)
    print_table("Ramiel compile time per model (Section V-E)", format_rows(rows))
    benchmark.extra_info["rows"] = rows

    # The paper's point: every model compiles in seconds, even NASNet.
    for row in rows:
        assert row["compile_time_s"] < 60.0, row["model"]


def test_compile_time_squeezenet_single(benchmark, zoo_models):
    """Stable microbenchmark of one full pipeline run (Squeezenet)."""
    model = zoo_models["squeezenet"]
    benchmark.pedantic(lambda: ramiel_compile(model, generate_code=True),
                       rounds=3, iterations=1)
