"""Table VII — overall speedups: LC, LC+CP/DCE, LC+cloning and the best of all."""

from __future__ import annotations

from repro.analysis.reports import render_comparison
from repro.analysis.speedup import run_full_experiment
from repro.models import paper_reference

from benchmarks.conftest import print_table


def _rows(zoo_models, config):
    rows = {}
    for name, model in zoo_models.items():
        breakdown = run_full_experiment(model, config)
        rows[name] = breakdown.as_row()
    return rows


def test_table7_overall_speedups(benchmark, zoo_models, experiment_config):
    rows = benchmark.pedantic(_rows, args=(zoo_models, experiment_config),
                              rounds=1, iterations=1)
    paper = paper_reference("table7")
    text = render_comparison(rows, paper, keys=["s_lc", "s_lc_dce", "s_lc_clone", "s_overall"])
    print_table("Table VII — overall speedup breakdown (measured vs paper)", text)
    benchmark.extra_info["rows"] = rows

    for name, row in rows.items():
        # The combined optimizations never do worse than plain LC.
        assert row["s_overall"] >= row["s_lc"] - 1e-9, name
    # Paper shape: CNNs without constants rely on cloning for their uplift,
    # the constant-heavy models rely on CP+DCE, NASNet stays the overall winner.
    assert rows["squeezenet"]["s_lc_dce"] is None
    assert rows["bert"]["s_lc_dce"] is not None
    assert rows["nasnet"]["s_overall"] == max(r["s_overall"] for r in rows.values())
    assert rows["squeezenet"]["s_overall"] < 1.1
