"""Table I — potential parallelism of the ML dataflow graphs.

Regenerates the columns #Nodes, Wt. NodeCost, Wt. CP and ||ism for all
eight models and prints them next to the paper's reported values.
"""

from __future__ import annotations

import pytest

from repro.analysis.reports import render_comparison
from repro.graph import potential_parallelism
from repro.models import PAPER_TABLE1

from benchmarks.conftest import print_table


def _table1_rows(zoo_dataflow):
    return {name: potential_parallelism(dfg).as_row() for name, dfg in zoo_dataflow.items()}


def test_table1_potential_parallelism(benchmark, zoo_dataflow):
    rows = benchmark.pedantic(_table1_rows, args=(zoo_dataflow,), rounds=1, iterations=1)
    text = render_comparison(rows, PAPER_TABLE1, keys=["nodes", "parallelism"])
    print_table("Table I — potential parallelism (measured vs paper)", text)
    benchmark.extra_info["rows"] = rows

    # Shape assertions: Squeezenet below 1, NASNet clearly the highest.
    assert rows["squeezenet"]["parallelism"] < 1.0
    assert rows["nasnet"]["parallelism"] == max(r["parallelism"] for r in rows.values())
    for name in ("googlenet", "inception_v3", "inception_v4", "retinanet"):
        assert 1.0 < rows[name]["parallelism"] < 2.0


@pytest.mark.parametrize("name", ["squeezenet", "bert", "nasnet"])
def test_table1_distance_pass_speed(benchmark, zoo_dataflow, name):
    """Micro-benchmark: the distance/critical-path pass itself is near-linear."""
    from repro.graph import compute_distance_to_end

    dfg = zoo_dataflow[name]
    benchmark(compute_distance_to_end, dfg)
