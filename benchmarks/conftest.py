"""Shared fixtures for the benchmark harness.

Every benchmark file regenerates one table or figure of the paper's
evaluation section.  Building the eight full-size model graphs is itself
non-trivial work, so the models, dataflow graphs and merged clusterings are
cached once per session here.

Run the whole harness with::

    pytest benchmarks/ --benchmark-only

Each benchmark prints its reproduced table (measured next to the paper's
reported value) — run with ``-s`` to see the tables inline; the same
numbers are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.analysis.speedup import ExperimentConfig
from repro.clustering import linear_clustering, merge_clusters_fixpoint
from repro.clustering.cluster import Clustering
from repro.graph import model_to_dataflow
from repro.graph.dataflow import DataflowGraph
from repro.ir.model import Model
from repro.models import build_all_models


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    """The overhead calibration used throughout the benchmark tables."""
    return ExperimentConfig(num_cores=12, message_latency=4.0, per_cluster_overhead=20.0)


@pytest.fixture(scope="session")
def zoo_models() -> Dict[str, Model]:
    """All eight full-size models of Table I."""
    return build_all_models(variant="default")


@pytest.fixture(scope="session")
def zoo_dataflow(zoo_models, experiment_config) -> Dict[str, DataflowGraph]:
    """Dataflow graphs for every zoo model."""
    return {name: model_to_dataflow(model, cost_model=experiment_config.cost_model)
            for name, model in zoo_models.items()}


@pytest.fixture(scope="session")
def zoo_lc_clusterings(zoo_dataflow) -> Dict[str, Clustering]:
    """Raw linear clusterings (before merging) for every zoo model."""
    return {name: linear_clustering(dfg) for name, dfg in zoo_dataflow.items()}


@pytest.fixture(scope="session")
def zoo_merged_clusterings(zoo_lc_clusterings) -> Dict[str, Clustering]:
    """Merged clusterings for every zoo model."""
    return {name: merge_clusters_fixpoint(lc) for name, lc in zoo_lc_clusterings.items()}


def print_table(title: str, text: str) -> None:
    """Print a reproduced table with a banner (visible with ``pytest -s``)."""
    banner = "=" * len(title)
    print(f"\n{title}\n{banner}\n{text}\n")
