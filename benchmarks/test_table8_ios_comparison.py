"""Table VIII — comparison with the Inter-Operator Scheduler (IOS).

Measures, for Squeezenet, Inception and NASNet, the speedup and the
compile time of (a) the full Ramiel pipeline (prune + cluster + merge +
codegen) and (b) the IOS dynamic-programming stage scheduler, reproducing
the paper's headline: comparable speedups at a compile-time that is one to
two orders of magnitude smaller.
"""

from __future__ import annotations

import time

from repro.analysis.reports import format_rows
from repro.analysis.speedup import run_full_experiment
from repro.baselines import IOSScheduler
from repro.models import paper_reference
from repro.pipeline import ramiel_compile

from benchmarks.conftest import print_table

MODELS = ["squeezenet", "inception_v3", "nasnet"]


def _compare(zoo_models, zoo_dataflow, config):
    rows = {}
    for name in MODELS:
        model = zoo_models[name]
        # Ramiel: full pipeline wall-clock (prune + cluster + codegen).
        start = time.perf_counter()
        ramiel_compile(model, prune=True, generate_code=True)
        ramiel_ct = time.perf_counter() - start
        breakdown = run_full_experiment(model, config)

        # IOS: DP stage scheduler over the same dataflow graph.
        ios = IOSScheduler(num_cores=config.num_cores).schedule(zoo_dataflow[name])

        rows[name] = {
            "speedup_ours": round(breakdown.s_overall, 2),
            "ct_ours_s": round(ramiel_ct, 2),
            "speedup_ios": round(ios.speedup, 2),
            "ct_ios_s": round(ios.compile_time_s, 2),
        }
    return rows


def test_table8_ios_comparison(benchmark, zoo_models, zoo_dataflow, experiment_config):
    rows = benchmark.pedantic(_compare, args=(zoo_models, zoo_dataflow, experiment_config),
                              rounds=1, iterations=1)
    paper = paper_reference("table8")
    table = [{"model": name, **row,
              "paper_speedup_ours": paper[name]["speedup_ours"],
              "paper_speedup_ios": paper[name]["speedup_ios"],
              "paper_ct_ours_s": paper[name]["ct_ours_s"],
              "paper_ct_ios_s": paper[name]["ct_ios_s"]} for name, row in rows.items()]
    print_table("Table VIII — Ramiel vs IOS (speedup and compile time)", format_rows(table))
    benchmark.extra_info["rows"] = rows

    for name in MODELS:
        # Ramiel compiles every model in seconds (the paper's headline),
        # regardless of graph size.
        assert rows[name]["ct_ours_s"] < 60.0, name
    # On the large graph the DP scheduler's compile time dwarfs Ramiel's —
    # the compile-time gap that motivates the paper (5400 s vs 9.7 s there).
    assert rows["nasnet"]["ct_ios_s"] > 5 * rows["nasnet"]["ct_ours_s"]
    # NASNet: Ramiel's schedule beats IOS (as in the paper); Squeezenet: IOS
    # is at least competitive because Ramiel refuses to gain there.
    assert rows["nasnet"]["speedup_ours"] > rows["nasnet"]["speedup_ios"]
    assert rows["squeezenet"]["speedup_ios"] >= rows["squeezenet"]["speedup_ours"] - 0.1
