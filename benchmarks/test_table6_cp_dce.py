"""Table VI — LC speedup with and without constant propagation + DCE."""

from __future__ import annotations

from repro.analysis.reports import render_comparison
from repro.analysis.speedup import run_full_experiment
from repro.models import paper_reference

from benchmarks.conftest import print_table

MODELS = ["yolo_v5", "bert", "nasnet"]


def _rows(zoo_models, config):
    rows = {}
    for name in MODELS:
        breakdown = run_full_experiment(zoo_models[name], config, apply_cloning=False)
        rows[name] = {"s_lc": round(breakdown.s_lc, 2),
                      "s_lc_dce": round(breakdown.s_lc_dce or breakdown.s_lc, 2)}
    return rows


def test_table6_cp_dce_speedups(benchmark, zoo_models, experiment_config):
    rows = benchmark.pedantic(_rows, args=(zoo_models, experiment_config),
                              rounds=1, iterations=1)
    paper = paper_reference("table6")
    text = render_comparison(rows, paper, keys=["s_lc", "s_lc_dce"])
    print_table("Table VI — LC vs LC + CP + DCE", text)
    benchmark.extra_info["rows"] = rows

    # Shape: pruning never hurts and helps all three models (the paper's
    # Yolo crosses from a slowdown to a speedup; NASNet gains the most).
    for name in MODELS:
        assert rows[name]["s_lc_dce"] >= rows[name]["s_lc"] - 0.02, name
    assert rows["nasnet"]["s_lc_dce"] >= rows["yolo_v5"]["s_lc_dce"]
