"""Plain-text rendering of benchmark result tables and serving reports."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.graph.metrics import format_table


def format_rows(rows: Sequence[Mapping], columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows as an aligned table (delegates to the metrics helper)."""
    return format_table(list(rows), columns=columns)


def render_comparison(
    measured: Mapping[str, Mapping],
    paper: Mapping[str, Mapping],
    keys: Sequence[str],
    label_measured: str = "measured",
    label_paper: str = "paper",
) -> str:
    """Render a per-model paper-vs-measured comparison table.

    Parameters
    ----------
    measured / paper:
        Mappings model-name -> row dict.
    keys:
        The row keys to compare (each produces a measured and a paper column).
    """
    rows: List[Dict] = []
    for model in measured:
        row: Dict = {"model": model}
        for key in keys:
            row[f"{key} ({label_measured})"] = measured[model].get(key)
            row[f"{key} ({label_paper})"] = paper.get(model, {}).get(key)
        rows.append(row)
    return format_rows(rows)


def _round(value, digits: int = 2):
    return None if value is None else round(value, digits)


def render_serving_report(snapshot: Mapping) -> str:
    """Render a :meth:`repro.serving.ServingMetrics.snapshot` as text.

    Produces three aligned tables: request/throughput/latency summary,
    cache statistics, and the batch-size histogram.
    """
    latency = snapshot.get("latency_ms", {})
    cache = snapshot.get("cache", {})
    summary_row = {
        "submitted": snapshot.get("submitted"),
        "completed": snapshot.get("completed"),
        "failed": snapshot.get("failed"),
        "throughput_rps": _round(snapshot.get("throughput_rps")),
        "p50_ms": _round(latency.get("p50")),
        "p95_ms": _round(latency.get("p95")),
        "p99_ms": _round(latency.get("p99")),
        "mean_batch": _round(snapshot.get("mean_batch_size")),
    }
    cache_row = {
        "hits": cache.get("hits"),
        "misses": cache.get("misses"),
        "hit_rate": _round(cache.get("hit_rate")),
        "compiles": cache.get("compiles"),
        "compile_time_s": _round(cache.get("compile_time_s"), 3),
        "evictions": cache.get("evictions"),
    }
    histogram_rows = [{"batch_size": size, "batches": count}
                      for size, count in snapshot.get("batch_histogram", {}).items()]
    sections = [
        "-- serving summary --",
        format_rows([summary_row]),
        "-- artifact cache --",
        format_rows([cache_row]),
    ]
    if histogram_rows:
        sections += ["-- batch-size histogram --", format_rows(histogram_rows)]
    return "\n".join(sections)
