"""Plain-text rendering of benchmark result tables and serving reports."""

from __future__ import annotations

import warnings
from typing import Dict, List, Mapping, Optional, Sequence

from repro.graph.metrics import format_table


def format_rows(rows: Sequence[Mapping], columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows as an aligned table (delegates to the metrics helper)."""
    return format_table(list(rows), columns=columns)


def render_comparison(
    measured: Mapping[str, Mapping],
    paper: Mapping[str, Mapping],
    keys: Sequence[str],
    label_measured: str = "measured",
    label_paper: str = "paper",
) -> str:
    """Render a per-model paper-vs-measured comparison table.

    Parameters
    ----------
    measured / paper:
        Mappings model-name -> row dict.
    keys:
        The row keys to compare (each produces a measured and a paper column).
    """
    rows: List[Dict] = []
    for model in measured:
        row: Dict = {"model": model}
        for key in keys:
            row[f"{key} ({label_measured})"] = measured[model].get(key)
            row[f"{key} ({label_paper})"] = paper.get(model, {}).get(key)
        rows.append(row)
    return format_rows(rows)


def _round(value, digits: int = 2):
    return None if value is None else round(value, digits)


def _snapshot_from_registry(registry) -> Dict:
    """Rebuild the legacy snapshot dict shape from a MetricsRegistry.

    Reads the ``serving_*`` instrument family that
    :meth:`repro.serving.ServingMetrics.bind_registry` maintains, so the
    report renders identically whether fed a registry or a raw snapshot.
    """
    def value(name, default=None):
        # registry counters are floats; the legacy snapshot used ints for
        # counts, and the report renders identically either way
        raw = registry.get_value(name, default=default)
        if isinstance(raw, float) and raw.is_integer():
            return int(raw)
        return raw

    hits = value("serving_cache_hits_total", default=0)
    misses = value("serving_cache_misses_total", default=0)
    lookups = hits + misses
    latency = {}
    for labels, gauge in registry.series("serving_latency_ms"):
        latency[labels.get("quantile", "")] = gauge.value
    histogram = {}
    for labels, counter in registry.series("serving_batches_by_size_total"):
        try:
            histogram[int(labels.get("size", 0))] = int(counter.value)
        except (TypeError, ValueError):
            continue
    return {
        "submitted": value("serving_requests_submitted_total", default=0),
        "completed": value("serving_requests_completed_total", default=0),
        "failed": value("serving_requests_failed_total", default=0),
        "throughput_rps": registry.get_value("serving_throughput_rps"),
        "latency_ms": latency,
        "batches": value("serving_batches_total", default=0),
        "mean_batch_size": registry.get_value("serving_batch_size_mean"),
        "batch_histogram": dict(sorted(histogram.items())),
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / lookups) if lookups else None,
            "compiles": value("serving_compiles_total", default=0),
            "compile_time_s": round(registry.get_value(
                "serving_compile_seconds_total", default=0.0), 4),
            "evictions": value("serving_cache_evictions_total", default=0),
        },
    }


def render_serving_report(snapshot) -> str:
    """Render serving metrics as text.

    Accepts a :class:`~repro.observability.MetricsRegistry` (the preferred
    surface — collectors run first, so derived gauges are fresh) and
    renders from its ``serving_*`` instruments.  Passing a raw
    :meth:`repro.serving.ServingMetrics.snapshot` dict still works but is
    deprecated; pass ``engine.registry`` instead.

    Produces three aligned tables: request/throughput/latency summary,
    cache statistics, and the batch-size histogram.
    """
    if hasattr(snapshot, "render_prometheus"):  # a MetricsRegistry
        snapshot.collect()
        snapshot = _snapshot_from_registry(snapshot)
    else:
        warnings.warn(
            "passing a ServingMetrics.snapshot() dict to "
            "render_serving_report is deprecated; pass the engine's "
            "MetricsRegistry (engine.registry) instead",
            DeprecationWarning, stacklevel=2)
    latency = snapshot.get("latency_ms", {})
    cache = snapshot.get("cache", {})
    summary_row = {
        "submitted": snapshot.get("submitted"),
        "completed": snapshot.get("completed"),
        "failed": snapshot.get("failed"),
        "throughput_rps": _round(snapshot.get("throughput_rps")),
        "p50_ms": _round(latency.get("p50")),
        "p95_ms": _round(latency.get("p95")),
        "p99_ms": _round(latency.get("p99")),
        "mean_batch": _round(snapshot.get("mean_batch_size")),
    }
    cache_row = {
        "hits": cache.get("hits"),
        "misses": cache.get("misses"),
        "hit_rate": _round(cache.get("hit_rate")),
        "compiles": cache.get("compiles"),
        "compile_time_s": _round(cache.get("compile_time_s"), 3),
        "evictions": cache.get("evictions"),
    }
    histogram_rows = [{"batch_size": size, "batches": count}
                      for size, count in snapshot.get("batch_histogram", {}).items()]
    sections = [
        "-- serving summary --",
        format_rows([summary_row]),
        "-- artifact cache --",
        format_rows([cache_row]),
    ]
    if histogram_rows:
        sections += ["-- batch-size histogram --", format_rows(histogram_rows)]
    return "\n".join(sections)
