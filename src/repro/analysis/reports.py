"""Plain-text rendering of benchmark result tables."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.graph.metrics import format_table


def format_rows(rows: Sequence[Mapping], columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows as an aligned table (delegates to the metrics helper)."""
    return format_table(list(rows), columns=columns)


def render_comparison(
    measured: Mapping[str, Mapping],
    paper: Mapping[str, Mapping],
    keys: Sequence[str],
    label_measured: str = "measured",
    label_paper: str = "paper",
) -> str:
    """Render a per-model paper-vs-measured comparison table.

    Parameters
    ----------
    measured / paper:
        Mappings model-name -> row dict.
    keys:
        The row keys to compare (each produces a measured and a paper column).
    """
    rows: List[Dict] = []
    for model in measured:
        row: Dict = {"model": model}
        for key in keys:
            row[f"{key} ({label_measured})"] = measured[model].get(key)
            row[f"{key} ({label_paper})"] = paper.get(model, {}).get(key)
        rows.append(row)
    return format_rows(rows)
