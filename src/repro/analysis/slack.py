"""Slack (idle-time) analysis of simulated schedules.

"Every time a cluster waits to receive data from another cluster there
arises a slack or gap" (Section III-E).  The slack report quantifies that
per-cluster idle time; hyperclustering exists to fill it with work from
other batch samples, so the Fig. 13/14 benchmarks print these reports to
show the opportunity shrinking as the batch size grows.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.clustering.schedule import ScheduleResult


@dataclasses.dataclass
class SlackReport:
    """Per-cluster idle time and aggregate utilization of one schedule."""

    model_name: str
    makespan: float
    per_cluster_idle: Dict[int, float]
    per_cluster_busy: Dict[int, float]

    @property
    def total_slack(self) -> float:
        """Total idle time across clusters."""
        return float(sum(self.per_cluster_idle.values()))

    @property
    def mean_utilization(self) -> float:
        """Mean busy/(busy+idle) across clusters (1.0 = perfectly packed)."""
        ratios: List[float] = []
        for cid, busy in self.per_cluster_busy.items():
            idle = self.per_cluster_idle.get(cid, 0.0)
            denom = busy + idle
            if denom > 0:
                ratios.append(busy / denom)
        return float(sum(ratios) / len(ratios)) if ratios else 1.0

    def as_row(self) -> dict:
        """Summary row."""
        return {
            "model": self.model_name,
            "makespan": round(self.makespan, 1),
            "total_slack": round(self.total_slack, 1),
            "mean_utilization": round(self.mean_utilization, 3),
        }


def slack_report(result: ScheduleResult) -> SlackReport:
    """Build a :class:`SlackReport` from a schedule simulation result."""
    return SlackReport(
        model_name=result.model_name,
        makespan=result.makespan,
        per_cluster_idle=dict(result.cluster_idle),
        per_cluster_busy=dict(result.cluster_busy),
    )
