"""Experiment harness: speedups of LC and its optimizations for one model.

This module is the programmatic backbone of the benchmark suite: it wires
together the pruning passes, cloning, linear clustering, merging,
hyperclustering and the schedule simulator, and produces per-model speedup
breakdowns in the shape of the paper's Tables IV, VI and VII and
Figs. 12-14.

Two evaluation modes are provided:

* **simulated** (default) — deterministic schedule simulation with the
  static cost model (or a measured cost provider), which is how the
  benchmark tables are regenerated on arbitrary hardware;
* **measured** — actually generate the sequential and parallel Python code,
  execute both with the repro runtime and compare wall-clock times
  (:func:`measured_speedup`); used by the examples and integration tests on
  reduced-size models.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Mapping, Optional

import numpy as np

from repro.clustering import (
    ScheduleSimulator,
    SimulationConfig,
    build_hyperclusters,
    build_switched_hyperclusters,
    clone_cheap_producers,
    linear_clustering,
    merge_clusters_fixpoint,
)
from repro.clustering.cluster import Clustering
from repro.clustering.schedule import intra_op_node_scale
from repro.graph.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.graph.dataflow import model_to_dataflow
from repro.ir.model import Model
from repro.passes import optimize_model


@dataclasses.dataclass
class ExperimentConfig:
    """Configuration shared by all experiments of one benchmark run."""

    num_cores: int = 12
    message_latency: float = 4.0
    per_cluster_overhead: float = 20.0
    cost_model: CostModel = dataclasses.field(default_factory=lambda: DEFAULT_COST_MODEL)
    intra_op_parallel_fraction: float = 0.7

    def simulator(self, num_threads: int = 1) -> ScheduleSimulator:
        """A simulator for the given intra-op thread count."""
        scale = intra_op_node_scale(num_threads, self.intra_op_parallel_fraction)
        return ScheduleSimulator(SimulationConfig(
            num_cores=self.num_cores,
            message_latency=self.message_latency,
            per_cluster_overhead=self.per_cluster_overhead,
            node_scale=scale,
        ))


@dataclasses.dataclass
class SpeedupBreakdown:
    """Speedups of the different optimization levels for one model (Table VII row)."""

    model_name: str
    clusters_lc: int
    clusters_after_dce: Optional[int]
    s_lc: float
    s_lc_dce: Optional[float]
    s_lc_clone: Optional[float]

    @property
    def s_overall(self) -> float:
        """Best speedup across the optimization levels (Table VII's S_Overall)."""
        candidates = [self.s_lc]
        if self.s_lc_dce is not None:
            candidates.append(self.s_lc_dce)
        if self.s_lc_clone is not None:
            candidates.append(self.s_lc_clone)
        return max(candidates)

    def as_row(self) -> dict:
        """Table-VII-shaped row."""
        return {
            "model": self.model_name,
            "s_lc": round(self.s_lc, 2),
            "s_lc_dce": None if self.s_lc_dce is None else round(self.s_lc_dce, 2),
            "s_lc_clone": None if self.s_lc_clone is None else round(self.s_lc_clone, 2),
            "s_overall": round(self.s_overall, 2),
        }


@dataclasses.dataclass
class ModelExperiment:
    """All artifacts of one model's LC experiment (used by several tables)."""

    model_name: str
    clustering_lc: Clustering
    clustering_merged: Clustering
    seq_time: float
    par_time: float
    compile_time_s: float

    @property
    def speedup(self) -> float:
        """LC speedup vs sequential (Table IV's column)."""
        return self.seq_time / self.par_time if self.par_time > 0 else 1.0

    def as_table4_row(self) -> dict:
        """Table-IV-shaped row."""
        return {
            "model": self.model_name,
            "clusters": self.clustering_merged.num_clusters,
            "seq_time": round(self.seq_time, 1),
            "par_time": round(self.par_time, 1),
            "speedup": round(self.speedup, 2),
        }


def cluster_model(model: Model, config: Optional[ExperimentConfig] = None) -> Clustering:
    """LC + merging for a model (no pruning, no cloning)."""
    config = config or ExperimentConfig()
    dfg = model_to_dataflow(model, cost_model=config.cost_model)
    return merge_clusters_fixpoint(linear_clustering(dfg))


def run_lc_experiment(
    model: Model,
    config: Optional[ExperimentConfig] = None,
    cost_provider: Optional[Mapping[str, float]] = None,
    num_threads: int = 1,
) -> ModelExperiment:
    """Sequential vs LC-parallel comparison for one model (Table IV)."""
    config = config or ExperimentConfig()
    start = time.perf_counter()
    dfg = model_to_dataflow(model, cost_model=config.cost_model)
    lc = linear_clustering(dfg)
    merged = merge_clusters_fixpoint(lc)
    compile_time = time.perf_counter() - start

    sim = config.simulator(num_threads=num_threads)
    result = sim.simulate(merged, cost_provider=cost_provider)
    return ModelExperiment(
        model_name=model.name,
        clustering_lc=lc,
        clustering_merged=merged,
        seq_time=result.sequential_time,
        par_time=result.makespan,
        compile_time_s=compile_time,
    )


def run_full_experiment(
    model: Model,
    config: Optional[ExperimentConfig] = None,
    apply_dce: bool = True,
    apply_cloning: bool = True,
    cost_provider: Optional[Mapping[str, float]] = None,
) -> SpeedupBreakdown:
    """LC, LC+CP/DCE and LC+cloning speedups for one model (Tables VI & VII).

    The sequential reference time is always that of the *unoptimized* model:
    the paper's speedups compare each optimized parallel configuration
    against the same sequential implementation.
    """
    config = config or ExperimentConfig()
    sim = config.simulator()

    base = run_lc_experiment(model, config, cost_provider=cost_provider)
    seq_time = base.seq_time

    s_lc_dce = None
    clusters_after_dce = None
    if apply_dce:
        optimized, stats = optimize_model(model)
        if stats["nodes_removed"] > 0:
            pruned_clustering = cluster_model(optimized, config)
            clusters_after_dce = pruned_clustering.num_clusters
            pruned_result = sim.simulate(pruned_clustering, cost_provider=cost_provider)
            s_lc_dce = seq_time / pruned_result.makespan if pruned_result.makespan > 0 else 1.0

    s_lc_clone = None
    if apply_cloning:
        cloned, report = clone_cheap_producers(model, cost_model=config.cost_model)
        if report.clones_created > 0:
            cloned_clustering = cluster_model(cloned, config)
            cloned_result = sim.simulate(cloned_clustering, cost_provider=cost_provider)
            s_lc_clone = seq_time / cloned_result.makespan if cloned_result.makespan > 0 else 1.0

    return SpeedupBreakdown(
        model_name=model.name,
        clusters_lc=base.clustering_merged.num_clusters,
        clusters_after_dce=clusters_after_dce,
        s_lc=base.speedup,
        s_lc_dce=s_lc_dce,
        s_lc_clone=s_lc_clone,
    )


def hypercluster_speedups(
    model: Model,
    batch_sizes,
    config: Optional[ExperimentConfig] = None,
    switched: bool = False,
    num_threads: int = 1,
) -> Dict[int, float]:
    """Hyperclustering speedups vs sequential for several batch sizes (Figs. 13-14)."""
    config = config or ExperimentConfig()
    merged = cluster_model(model, config)
    sim = config.simulator(num_threads=num_threads)
    out: Dict[int, float] = {}
    for batch in batch_sizes:
        if batch <= 1:
            result = sim.simulate(merged)
        else:
            builder = build_switched_hyperclusters if switched else build_hyperclusters
            hc = builder(merged, batch)
            result = sim.simulate(hc)
        out[int(batch)] = result.speedup
    return out


def measured_speedup(
    model: Model,
    inputs: Mapping[str, np.ndarray],
    backend: str = "thread",
    repeats: int = 3,
    config: Optional[ExperimentConfig] = None,
) -> Dict[str, float]:
    """Generate sequential + parallel code and measure real wall-clock speedup.

    Intended for the reduced-size model variants (examples / integration
    tests); the benchmark tables use the simulator for determinism.
    """
    from repro.codegen import generate_parallel_module, generate_sequential_module
    from repro.runtime.process_runtime import (
        execute_generated_module,
        run_sequential_module,
        time_callable,
    )

    config = config or ExperimentConfig()
    merged = cluster_model(model, config)
    seq_module = generate_sequential_module(model)
    par_module = generate_parallel_module(model, merged)
    weights = model.graph.initializers

    seq_time, seq_out = time_callable(
        lambda: run_sequential_module(seq_module, inputs, weights), repeats=repeats)
    par_time, par_out = time_callable(
        lambda: execute_generated_module(par_module, inputs, weights, backend=backend),
        repeats=repeats)

    max_abs_err = 0.0
    for name, ref in seq_out.items():
        max_abs_err = max(max_abs_err, float(np.max(np.abs(np.asarray(ref, dtype=np.float64)
                                                           - np.asarray(par_out[name], dtype=np.float64)))))
    return {
        "seq_time_s": seq_time,
        "par_time_s": par_time,
        "speedup": seq_time / par_time if par_time > 0 else 1.0,
        "num_clusters": merged.num_clusters,
        "max_abs_err": max_abs_err,
    }
