"""Analysis and reporting helpers for the paper's experiments.

:mod:`repro.analysis.speedup` contains the experiment harness proper: for a
given model it produces the LC / LC+CP+DCE / LC+cloning / hyperclustering
speedups of Tables IV-VII and Figs. 12-14 via the schedule simulator (and,
optionally, via real execution of the generated code).
:mod:`repro.analysis.reports` renders result rows as aligned text tables.
:mod:`repro.analysis.slack` summarizes per-cluster idle time from schedule
results (the quantity hyperclustering exploits).
"""

from repro.analysis.speedup import (
    ExperimentConfig,
    ModelExperiment,
    SpeedupBreakdown,
    run_lc_experiment,
    run_full_experiment,
    measured_speedup,
)
from repro.analysis.reports import format_rows, render_comparison
from repro.analysis.slack import slack_report, SlackReport

__all__ = [
    "ExperimentConfig",
    "ModelExperiment",
    "SpeedupBreakdown",
    "run_lc_experiment",
    "run_full_experiment",
    "measured_speedup",
    "format_rows",
    "render_comparison",
    "slack_report",
    "SlackReport",
]
