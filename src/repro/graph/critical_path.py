"""The ``distance_to_end`` pass and critical-path extraction.

The paper's *Distance pass* "computes the weighted distance of each node
from the end node of the graph and stores [it] in ``distance_to_end``".
That quantity is the length of the longest (node-cost + edge-cost) weighted
path from a node to any sink, *including* the node's own cost.  The
critical path of the graph is then the maximal-distance path starting from
a source node, and its length is the denominator of the potential
parallelism factor of Table I.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.graph.dataflow import DataflowGraph
from repro.graph.traversal import topological_sort


def compute_distance_to_end(
    dfg: DataflowGraph,
    include_edge_cost: bool = True,
) -> Dict[str, float]:
    """Longest weighted distance from each node to any sink node.

    ``distance_to_end(n)`` includes ``cost(n)`` itself, plus for each hop the
    edge cost (unit by default per the paper) and the downstream node costs.
    Computed in reverse topological order in O(V + E).
    """
    order = topological_sort(dfg)
    dist: Dict[str, float] = {}
    for name in reversed(order):
        node = dfg.node(name)
        best_tail = 0.0
        for edge in dfg.out_edges(name):
            tail = dist[edge.dst]
            if include_edge_cost:
                tail += edge.cost
            best_tail = max(best_tail, tail)
        dist[name] = node.cost + best_tail
    return dist


def compute_distance_from_start(
    dfg: DataflowGraph,
    include_edge_cost: bool = True,
) -> Dict[str, float]:
    """Longest weighted distance from any source node up to (and including) each node."""
    order = topological_sort(dfg)
    dist: Dict[str, float] = {}
    for name in order:
        node = dfg.node(name)
        best_head = 0.0
        for edge in dfg.in_edges(name):
            head = dist[edge.src]
            if include_edge_cost:
                head += edge.cost
            best_head = max(best_head, head)
        dist[name] = node.cost + best_head
    return dist


def critical_path(
    dfg: DataflowGraph,
    distance_to_end: Optional[Dict[str, float]] = None,
    include_edge_cost: bool = True,
) -> List[str]:
    """Extract one critical path (list of node names from a source to a sink).

    Starting from the source node with the largest ``distance_to_end``,
    repeatedly steps to the successor with the largest ``distance_to_end``.
    Ties are broken by node insertion index, making the result deterministic.
    """
    if len(dfg) == 0:
        return []
    dist = distance_to_end or compute_distance_to_end(dfg, include_edge_cost)

    def sort_key(name: str) -> Tuple[float, int]:
        # Larger distance first; then smaller insertion index.
        return (-dist[name], dfg.node(name).index)

    sources = dfg.source_nodes()
    current = min(sources, key=sort_key) if sources else min(dfg.node_names(), key=sort_key)
    path = [current]
    while dfg.out_degree(current) > 0:
        nxt = min(dfg.successors(current), key=sort_key)
        path.append(nxt)
        current = nxt
    return path


def critical_path_length(
    dfg: DataflowGraph,
    include_edge_cost: bool = True,
) -> float:
    """Weighted length of the critical path (the paper's ``Wt. CP``).

    Equal to the maximum ``distance_to_end`` over all source nodes, i.e. the
    sum of node costs along the critical path plus one edge cost per hop.
    """
    if len(dfg) == 0:
        return 0.0
    dist = compute_distance_to_end(dfg, include_edge_cost)
    sources = dfg.source_nodes()
    candidates = sources if sources else dfg.node_names()
    return max(dist[name] for name in candidates)


def path_cost(dfg: DataflowGraph, path: List[str], include_edge_cost: bool = True) -> float:
    """Weighted cost of an explicit path (node costs + per-hop edge costs)."""
    total = sum(dfg.node(name).cost for name in path)
    if include_edge_cost:
        for src, dst in zip(path, path[1:]):
            for edge in dfg.out_edges(src):
                if edge.dst == dst:
                    total += edge.cost
                    break
    return float(total)
