"""The internal dataflow-graph representation used by all analyses.

The paper's *Graph creation pass* "converts an input ONNX model into an
internal representation"; :func:`model_to_dataflow` is that pass.  Each IR
operator node becomes a :class:`DFNode` carrying a static cost, and each
tensor dependence between a producer and a consumer becomes a
:class:`DFEdge` labelled with the tensor name and (when known) its size.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.ir.model import Graph, Model
from repro.ir.node import OpNode


@dataclasses.dataclass
class DFNode:
    """One task (operator invocation) of the dataflow graph."""

    name: str
    op_type: str
    cost: float = 1.0
    index: int = 0
    op_node: Optional[OpNode] = None
    #: optional tag identifying which batch-sample replica this node belongs
    #: to (used by hyperclustering); 0 for the original graph.
    replica: int = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DFNode({self.name!r}, {self.op_type}, cost={self.cost:g})"


@dataclasses.dataclass(frozen=True)
class DFEdge:
    """A tensor dependence between two tasks."""

    src: str
    dst: str
    tensor: str = ""
    nbytes: int = 0
    cost: float = 1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DFEdge({self.src} -> {self.dst}, tensor={self.tensor!r})"


class DataflowGraph:
    """A directed acyclic graph of tasks with weighted nodes and edges.

    The structure is deliberately explicit (ordered dictionaries for nodes
    and adjacency) so that the clustering algorithms are deterministic: ties
    are always broken by node insertion index.
    """

    def __init__(self, name: str = "dataflow") -> None:
        self.name = name
        self._nodes: Dict[str, DFNode] = {}
        self._succ: Dict[str, List[DFEdge]] = {}
        self._pred: Dict[str, List[DFEdge]] = {}
        self._next_index = 0
        #: the IR graph this dataflow graph was derived from, when available
        self.ir_graph: Optional[Graph] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        name: str,
        op_type: str = "Generic",
        cost: float = 1.0,
        op_node: Optional[OpNode] = None,
        replica: int = 0,
    ) -> DFNode:
        """Add a task node; names must be unique."""
        if name in self._nodes:
            raise ValueError(f"node {name!r} already present in dataflow graph")
        node = DFNode(name=name, op_type=op_type, cost=float(cost),
                      index=self._next_index, op_node=op_node, replica=replica)
        self._next_index += 1
        self._nodes[name] = node
        self._succ[name] = []
        self._pred[name] = []
        return node

    def add_edge(self, src: str, dst: str, tensor: str = "", nbytes: int = 0,
                 cost: float = 1.0) -> DFEdge:
        """Add a dependence edge between two existing nodes."""
        if src not in self._nodes:
            raise KeyError(f"unknown source node {src!r}")
        if dst not in self._nodes:
            raise KeyError(f"unknown destination node {dst!r}")
        if src == dst:
            raise ValueError(f"self edge on node {src!r} is not allowed")
        edge = DFEdge(src=src, dst=dst, tensor=tensor, nbytes=int(nbytes), cost=float(cost))
        self._succ[src].append(edge)
        self._pred[dst].append(edge)
        return edge

    def has_edge(self, src: str, dst: str) -> bool:
        """True when a direct edge src -> dst exists."""
        return any(e.dst == dst for e in self._succ.get(src, ()))

    def remove_node(self, name: str) -> None:
        """Remove a node and all edges touching it."""
        if name not in self._nodes:
            raise KeyError(f"unknown node {name!r}")
        for edge in list(self._succ[name]):
            self._pred[edge.dst] = [e for e in self._pred[edge.dst] if e.src != name]
        for edge in list(self._pred[name]):
            self._succ[edge.src] = [e for e in self._succ[edge.src] if e.dst != name]
        del self._nodes[name]
        del self._succ[name]
        del self._pred[name]

    def remove_edge(self, src: str, dst: str) -> None:
        """Remove all direct edges src -> dst."""
        self._succ[src] = [e for e in self._succ[src] if e.dst != dst]
        self._pred[dst] = [e for e in self._pred[dst] if e.src != src]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[DFNode]:
        return iter(self._nodes.values())

    def node(self, name: str) -> DFNode:
        """Return the node with the given name."""
        return self._nodes[name]

    def nodes(self) -> List[DFNode]:
        """All nodes in insertion order."""
        return list(self._nodes.values())

    def node_names(self) -> List[str]:
        """All node names in insertion order."""
        return list(self._nodes)

    def edges(self) -> List[DFEdge]:
        """All edges (in source-insertion order)."""
        return [e for edges in self._succ.values() for e in edges]

    def num_edges(self) -> int:
        """Total number of dependence edges."""
        return sum(len(v) for v in self._succ.values())

    def successors(self, name: str) -> List[str]:
        """Names of direct successors (dependents)."""
        return [e.dst for e in self._succ[name]]

    def predecessors(self, name: str) -> List[str]:
        """Names of direct predecessors (dependences)."""
        return [e.src for e in self._pred[name]]

    def out_edges(self, name: str) -> List[DFEdge]:
        """Outgoing edges of a node."""
        return list(self._succ[name])

    def in_edges(self, name: str) -> List[DFEdge]:
        """Incoming edges of a node."""
        return list(self._pred[name])

    def in_degree(self, name: str) -> int:
        """Number of incoming edges."""
        return len(self._pred[name])

    def out_degree(self, name: str) -> int:
        """Number of outgoing edges."""
        return len(self._succ[name])

    def source_nodes(self) -> List[str]:
        """Nodes with no predecessors (graph entry points)."""
        return [n for n in self._nodes if not self._pred[n]]

    def sink_nodes(self) -> List[str]:
        """Nodes with no successors (graph exits)."""
        return [n for n in self._nodes if not self._succ[n]]

    def total_cost(self) -> float:
        """Sum of all node costs (the paper's ``Wt.Cost of Nodes``)."""
        return float(sum(node.cost for node in self._nodes.values()))

    def op_type_histogram(self) -> Dict[str, int]:
        """Count of nodes per op type."""
        hist: Dict[str, int] = {}
        for node in self._nodes.values():
            hist[node.op_type] = hist.get(node.op_type, 0) + 1
        return dict(sorted(hist.items()))

    # ------------------------------------------------------------------
    # Copies / derived graphs
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "DataflowGraph":
        """Structural deep copy (node objects are re-created)."""
        out = DataflowGraph(name or self.name)
        out.ir_graph = self.ir_graph
        for node in self._nodes.values():
            out.add_node(node.name, node.op_type, node.cost, node.op_node, node.replica)
        for edge in self.edges():
            out.add_edge(edge.src, edge.dst, edge.tensor, edge.nbytes, edge.cost)
        return out

    def subgraph(self, names: Iterable[str], name: Optional[str] = None) -> "DataflowGraph":
        """Induced subgraph over the given node names."""
        keep: Set[str] = set(names)
        out = DataflowGraph(name or f"{self.name}_sub")
        out.ir_graph = self.ir_graph
        for node in self._nodes.values():
            if node.name in keep:
                out.add_node(node.name, node.op_type, node.cost, node.op_node, node.replica)
        for edge in self.edges():
            if edge.src in keep and edge.dst in keep:
                out.add_edge(edge.src, edge.dst, edge.tensor, edge.nbytes, edge.cost)
        return out

    def to_networkx(self) -> nx.DiGraph:
        """Export to a :class:`networkx.DiGraph` (node costs as attributes)."""
        g = nx.DiGraph(name=self.name)
        for node in self._nodes.values():
            g.add_node(node.name, op_type=node.op_type, cost=node.cost, replica=node.replica)
        for edge in self.edges():
            g.add_edge(edge.src, edge.dst, tensor=edge.tensor, nbytes=edge.nbytes,
                       cost=edge.cost)
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DataflowGraph({self.name!r}, nodes={len(self)}, "
                f"edges={self.num_edges()})")


def model_to_dataflow(
    model_or_graph,
    cost_model=None,
    include_zero_cost_ops: bool = True,
) -> DataflowGraph:
    """Convert an IR :class:`Model`/:class:`Graph` into a :class:`DataflowGraph`.

    This is the paper's *Graph creation pass*.  Edges are created for every
    producer/consumer tensor dependence between operator nodes; graph inputs
    and initializers do not become nodes (they are available "for free" at
    execution start, matching the paper's treatment of weights).

    Parameters
    ----------
    model_or_graph:
        The IR model (or bare graph) to convert.
    cost_model:
        A :class:`repro.graph.cost_model.CostModel`; defaults to the paper's
        static weights.
    include_zero_cost_ops:
        When False, pure metadata ops (Shape/Constant/...) are still included
        but their cost is forced to zero.  Kept for experimentation.
    """
    from repro.graph.cost_model import DEFAULT_COST_MODEL

    graph: Graph = model_or_graph.graph if isinstance(model_or_graph, Model) else model_or_graph
    cm = cost_model or DEFAULT_COST_MODEL

    dfg = DataflowGraph(name=graph.name)
    dfg.ir_graph = graph

    for op in graph.nodes:
        cost = cm.node_cost(op, graph)
        if not include_zero_cost_ops:
            cost = max(cost, 0.0)
        dfg.add_node(op.name, op.op_type, cost=cost, op_node=op)

    producers = graph.producers()
    for op in graph.nodes:
        for inp in op.present_inputs:
            producer = producers.get(inp)
            if producer is None or producer.name == op.name:
                continue
            info = graph.tensor_info(inp)
            nbytes = info.nbytes if info is not None and info.nbytes is not None else 0
            if not dfg.has_edge(producer.name, op.name):
                dfg.add_edge(producer.name, op.name, tensor=inp, nbytes=nbytes,
                             cost=cm.edge_cost(nbytes))
    return dfg
