"""Dataflow-graph analysis layer.

This package converts IR models into a :class:`DataflowGraph` (the paper's
"internal in-memory graph format" produced by the Model2Graph converter in
Fig. 10) and provides the analyses the clustering algorithms rely on:

* topological traversal utilities,
* the static weighted cost model of Section III-A,
* the ``distance_to_end`` pass and critical-path extraction,
* the potential-parallelism factor of Table I,
* per-model graph metric reports,
* DOT export for visual inspection.
"""

from repro.graph.dataflow import DataflowGraph, DFNode, DFEdge, model_to_dataflow
from repro.graph.traversal import (
    topological_sort,
    topological_sort_nodes,
    ancestors,
    descendants,
    graph_levels,
)
from repro.graph.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.graph.critical_path import (
    compute_distance_to_end,
    compute_distance_from_start,
    critical_path,
    critical_path_length,
)
from repro.graph.parallelism import potential_parallelism, ParallelismReport
from repro.graph.metrics import GraphMetrics, compute_metrics, metrics_table

__all__ = [
    "DataflowGraph",
    "DFNode",
    "DFEdge",
    "model_to_dataflow",
    "topological_sort",
    "topological_sort_nodes",
    "ancestors",
    "descendants",
    "graph_levels",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "compute_distance_to_end",
    "compute_distance_from_start",
    "critical_path",
    "critical_path_length",
    "potential_parallelism",
    "ParallelismReport",
    "GraphMetrics",
    "compute_metrics",
    "metrics_table",
]
