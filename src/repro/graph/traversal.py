"""Topological traversal utilities for IR graphs and dataflow graphs."""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Sequence, Set, TYPE_CHECKING

from repro.ir.model import Graph
from repro.ir.node import OpNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.dataflow import DataflowGraph


class CycleError(RuntimeError):
    """Raised when a supposedly acyclic graph contains a cycle."""


def topological_sort_nodes(graph: Graph) -> List[OpNode]:
    """Topologically sort the operator nodes of an IR graph.

    Deterministic: among ready nodes, original node order wins (stable
    Kahn's algorithm).  Raises :class:`CycleError` if the graph is cyclic.
    """
    producers = graph.producers()
    order_index = {node.name: i for i, node in enumerate(graph.nodes)}
    indegree: Dict[str, int] = {node.name: 0 for node in graph.nodes}
    dependents: Dict[str, List[str]] = {node.name: [] for node in graph.nodes}
    node_by_name = {node.name: node for node in graph.nodes}

    for node in graph.nodes:
        preds: Set[str] = set()
        for inp in node.present_inputs:
            producer = producers.get(inp)
            if producer is not None and producer.name != node.name:
                preds.add(producer.name)
        indegree[node.name] = len(preds)
        for p in preds:
            dependents[p].append(node.name)

    ready = sorted((name for name, deg in indegree.items() if deg == 0),
                   key=order_index.__getitem__)
    queue = deque(ready)
    result: List[OpNode] = []
    while queue:
        name = queue.popleft()
        result.append(node_by_name[name])
        newly_ready = []
        for dep in dependents[name]:
            indegree[dep] -= 1
            if indegree[dep] == 0:
                newly_ready.append(dep)
        for dep in sorted(newly_ready, key=order_index.__getitem__):
            queue.append(dep)
    if len(result) != len(graph.nodes):
        raise CycleError(f"IR graph {graph.name!r} contains a cycle")
    return result


def topological_sort(dfg: "DataflowGraph") -> List[str]:
    """Topologically sort a dataflow graph; returns node names.

    Deterministic: ties broken by node insertion index.
    """
    indegree = {name: dfg.in_degree(name) for name in dfg.node_names()}
    index = {name: dfg.node(name).index for name in dfg.node_names()}
    ready = sorted((n for n, d in indegree.items() if d == 0), key=index.__getitem__)
    queue = deque(ready)
    order: List[str] = []
    while queue:
        name = queue.popleft()
        order.append(name)
        newly_ready = []
        for succ in dfg.successors(name):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                newly_ready.append(succ)
        for succ in sorted(newly_ready, key=index.__getitem__):
            queue.append(succ)
    if len(order) != len(dfg):
        raise CycleError(f"dataflow graph {dfg.name!r} contains a cycle")
    return order


def ancestors(dfg: "DataflowGraph", name: str) -> Set[str]:
    """All transitive predecessors of a node (excluding the node itself)."""
    seen: Set[str] = set()
    stack = list(dfg.predecessors(name))
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(dfg.predecessors(current))
    return seen


def descendants(dfg: "DataflowGraph", name: str) -> Set[str]:
    """All transitive successors of a node (excluding the node itself)."""
    seen: Set[str] = set()
    stack = list(dfg.successors(name))
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(dfg.successors(current))
    return seen


def graph_levels(dfg: "DataflowGraph") -> Dict[str, int]:
    """ASAP level of every node (longest hop-distance from any source)."""
    levels: Dict[str, int] = {}
    for name in topological_sort(dfg):
        preds = dfg.predecessors(name)
        levels[name] = 0 if not preds else 1 + max(levels[p] for p in preds)
    return levels


def reachable_from(dfg: "DataflowGraph", sources: Iterable[str]) -> Set[str]:
    """All nodes reachable from the given set of sources (inclusive)."""
    seen: Set[str] = set()
    stack = list(sources)
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(dfg.successors(current))
    return seen


def reaches(dfg: "DataflowGraph", targets: Iterable[str]) -> Set[str]:
    """All nodes from which any of ``targets`` is reachable (inclusive)."""
    seen: Set[str] = set()
    stack = list(targets)
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(dfg.predecessors(current))
    return seen
