"""Potential-parallelism factor (Section III-A, Table I).

The paper defines::

    Parallelism = Wt.Cost of Nodes / Wt.Cost of Critical Path

where the node cost is the sum of static operator weights and the critical
path cost additionally charges a unit cost per edge along the path.  For
small graphs with long dependency chains the factor can be below 1 —
Squeezenet's 0.86x is the canonical example — predicting a slowdown when
the graph is parallelized.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.graph.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.graph.critical_path import critical_path, critical_path_length, path_cost
from repro.graph.dataflow import DataflowGraph, model_to_dataflow
from repro.ir.model import Model


@dataclasses.dataclass(frozen=True)
class ParallelismReport:
    """Summary of the potential parallelism available in one dataflow graph."""

    model_name: str
    num_nodes: int
    num_edges: int
    total_node_cost: float
    critical_path_cost: float
    critical_path_nodes: int

    @property
    def parallelism(self) -> float:
        """The potential-parallelism factor (Table I's ``||ism`` column)."""
        if self.critical_path_cost <= 0:
            return float("inf") if self.total_node_cost > 0 else 1.0
        return self.total_node_cost / self.critical_path_cost

    def as_row(self) -> dict:
        """Row in the shape of Table I."""
        return {
            "model": self.model_name,
            "nodes": self.num_nodes,
            "wt_node_cost": round(self.total_node_cost, 1),
            "wt_cp": round(self.critical_path_cost, 1),
            "parallelism": round(self.parallelism, 2),
        }


def potential_parallelism(
    source,
    cost_model: Optional[CostModel] = None,
    include_edge_cost: bool = True,
) -> ParallelismReport:
    """Compute the potential-parallelism report for a model or dataflow graph.

    Parameters
    ----------
    source:
        An IR :class:`Model` (converted with the given cost model) or an
        already-built :class:`DataflowGraph`.
    cost_model:
        Static cost model; defaults to the paper's weights.
    include_edge_cost:
        Charge unit edge cost on the critical path (paper behaviour).
    """
    cm = cost_model or DEFAULT_COST_MODEL
    if isinstance(source, DataflowGraph):
        dfg = source
    elif isinstance(source, Model):
        dfg = model_to_dataflow(source, cost_model=cm)
    else:
        raise TypeError(f"expected Model or DataflowGraph, got {type(source)!r}")

    cp_nodes = critical_path(dfg, include_edge_cost=include_edge_cost)
    cp_cost = path_cost(dfg, cp_nodes, include_edge_cost=include_edge_cost)
    # The true CP length may exceed the greedy path's cost in rare tie cases;
    # use the DP value as ground truth but keep the node count of the path.
    cp_cost = max(cp_cost, critical_path_length(dfg, include_edge_cost=include_edge_cost))
    return ParallelismReport(
        model_name=dfg.name,
        num_nodes=len(dfg),
        num_edges=dfg.num_edges(),
        total_node_cost=dfg.total_cost(),
        critical_path_cost=cp_cost,
        critical_path_nodes=len(cp_nodes),
    )
