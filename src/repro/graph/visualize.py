"""DOT export of dataflow graphs and clusterings for visual inspection.

The paper illustrates its clusters on Squeezenet/Inception snippets
(Figs. 1-9); :func:`to_dot` produces Graphviz source with one color per
cluster so the same pictures can be regenerated from this reproduction.
No Graphviz binary is required — we only emit the textual ``.dot`` format.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Mapping, Optional, Sequence, Union

from repro.graph.dataflow import DataflowGraph

#: A small qualitative palette; cluster i gets palette[i % len(palette)].
_PALETTE = [
    "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6",
    "#ffff99", "#1f78b4", "#33a02c", "#e31a1c", "#ff7f00",
]


def _escape(label: str) -> str:
    return label.replace('"', '\\"')


def to_dot(
    dfg: DataflowGraph,
    cluster_of: Optional[Mapping[str, int]] = None,
    show_costs: bool = True,
    rankdir: str = "TB",
) -> str:
    """Render a dataflow graph as Graphviz DOT source.

    Parameters
    ----------
    dfg:
        The graph to render.
    cluster_of:
        Optional mapping node-name -> cluster id; nodes are filled with one
        color per cluster when provided.
    show_costs:
        Include the static node cost in each label.
    rankdir:
        Graphviz rank direction (``TB`` top-to-bottom or ``LR``).
    """
    lines = [f'digraph "{_escape(dfg.name)}" {{', f"  rankdir={rankdir};",
             "  node [shape=box, style=filled, fillcolor=white, fontsize=10];"]
    for node in dfg.nodes():
        label = f"{node.op_type}\\n{node.name}"
        if show_costs:
            label += f"\\ncost={node.cost:g}"
        attrs = [f'label="{_escape(label)}"']
        if cluster_of is not None and node.name in cluster_of:
            color = _PALETTE[cluster_of[node.name] % len(_PALETTE)]
            attrs.append(f'fillcolor="{color}"')
        lines.append(f'  "{_escape(node.name)}" [{", ".join(attrs)}];')
    for edge in dfg.edges():
        attrs = []
        if edge.tensor:
            attrs.append(f'label="{_escape(edge.tensor)}"')
        attr_str = f' [{", ".join(attrs)}]' if attrs else ""
        lines.append(f'  "{_escape(edge.src)}" -> "{_escape(edge.dst)}"{attr_str};')
    lines.append("}")
    return "\n".join(lines)


def clusters_to_dot(dfg: DataflowGraph, clusters: Sequence, **kwargs) -> str:
    """Render a graph with nodes colored by the clusters that own them.

    ``clusters`` is any sequence of objects with a ``nodes`` attribute
    listing node names (e.g. :class:`repro.clustering.cluster.Cluster`),
    or plain lists of node names.
    """
    cluster_of: Dict[str, int] = {}
    for idx, cluster in enumerate(clusters):
        names = getattr(cluster, "nodes", cluster)
        for name in names:
            cluster_of[name] = idx
    return to_dot(dfg, cluster_of=cluster_of, **kwargs)


def write_dot(dot_source: str, path: Union[str, Path]) -> Path:
    """Write DOT source to a file and return the path."""
    path = Path(path)
    path.write_text(dot_source, encoding="utf-8")
    return path
