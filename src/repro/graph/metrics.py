"""Graph metric reports (the data behind Table I)."""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence

from repro.graph.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.graph.dataflow import DataflowGraph, model_to_dataflow
from repro.graph.parallelism import ParallelismReport, potential_parallelism
from repro.graph.traversal import graph_levels
from repro.ir.model import Model


@dataclasses.dataclass(frozen=True)
class GraphMetrics:
    """Structural and cost metrics of one model's dataflow graph."""

    model_name: str
    num_nodes: int
    num_edges: int
    num_sources: int
    num_sinks: int
    depth: int
    max_width: int
    max_fan_out: int
    total_node_cost: float
    critical_path_cost: float
    parallelism: float
    op_histogram: Dict[str, int]

    def as_row(self) -> dict:
        """Table-I-shaped row plus extra structural columns."""
        return {
            "model": self.model_name,
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "wt_node_cost": round(self.total_node_cost, 1),
            "wt_cp": round(self.critical_path_cost, 1),
            "parallelism": round(self.parallelism, 2),
            "depth": self.depth,
            "max_width": self.max_width,
            "max_fan_out": self.max_fan_out,
        }


def compute_metrics(
    source,
    cost_model: Optional[CostModel] = None,
) -> GraphMetrics:
    """Compute :class:`GraphMetrics` for a model or dataflow graph."""
    cm = cost_model or DEFAULT_COST_MODEL
    if isinstance(source, Model):
        dfg = model_to_dataflow(source, cost_model=cm)
    elif isinstance(source, DataflowGraph):
        dfg = source
    else:
        raise TypeError(f"expected Model or DataflowGraph, got {type(source)!r}")

    report: ParallelismReport = potential_parallelism(dfg, cost_model=cm)
    levels = graph_levels(dfg)
    width_by_level: Dict[int, int] = {}
    for level in levels.values():
        width_by_level[level] = width_by_level.get(level, 0) + 1
    max_fan_out = max((dfg.out_degree(n) for n in dfg.node_names()), default=0)

    return GraphMetrics(
        model_name=dfg.name,
        num_nodes=len(dfg),
        num_edges=dfg.num_edges(),
        num_sources=len(dfg.source_nodes()),
        num_sinks=len(dfg.sink_nodes()),
        depth=(max(levels.values()) + 1) if levels else 0,
        max_width=max(width_by_level.values()) if width_by_level else 0,
        max_fan_out=max_fan_out,
        total_node_cost=report.total_node_cost,
        critical_path_cost=report.critical_path_cost,
        parallelism=report.parallelism,
        op_histogram=dfg.op_type_histogram(),
    )


def metrics_table(
    models: Iterable,
    cost_model: Optional[CostModel] = None,
) -> List[dict]:
    """Compute Table-I rows for a sequence of models/dataflow graphs."""
    return [compute_metrics(m, cost_model=cost_model).as_row() for m in models]


def format_table(rows: Sequence[dict], columns: Optional[Sequence[str]] = None) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return "(empty table)"
    cols = list(columns) if columns else list(rows[0].keys())
    widths = {c: max(len(str(c)), max(len(str(r.get(c, ""))) for r in rows)) for c in cols}
    header = "  ".join(str(c).ljust(widths[c]) for c in cols)
    sep = "  ".join("-" * widths[c] for c in cols)
    lines = [header, sep]
    for row in rows:
        lines.append("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in cols))
    return "\n".join(lines)
