"""Static weighted cost model (Section III-A of the paper).

The paper assigns "certain static weights to the operations, heavy DL
operations like Conv, Matmul etc. having higher cost than simpler ones.
Also a Conv using a bigger kernel of size 7x7 or 5x5 is assigned a higher
cost compared to those of size 3x3 or 1x1.  Elementwise operations like
Relu are assigned a cost of 1", and a unit cost is charged per graph edge
when computing the critical path.

:class:`CostModel` encodes exactly that scheme.  The constants are
configurable; the defaults were chosen so that the potential-parallelism
factors of Table I come out in the right bands (Squeezenet < 1, Inception
~1.3-1.4, NASNet >> 1).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional

from repro.ir.model import Graph
from repro.ir.node import OpNode
from repro.ir.opset import OpKind, has_schema, get_schema


@dataclasses.dataclass
class CostModel:
    """Static per-node and per-edge cost assignment.

    Parameters
    ----------
    conv_kernel_costs:
        Cost of a Conv node keyed by max(kernel height, kernel width).
        Kernels larger than the largest key use the largest entry.
    kind_costs:
        Default cost per :class:`OpKind` for non-Conv operators.
    op_overrides:
        Exact per-op-type overrides (take precedence over kind costs).
    edge_unit_cost:
        Cost added per edge on the critical path (tensor-dependence
        overhead); the paper uses 1.
    conv_channel_scaling:
        When True, a Conv's kernel-bucket cost is additionally scaled by a
        small factor derived from its output-channel count, which separates
        the tiny squeeze convolutions from wide inception branches without
        abandoning the paper's "static weights" philosophy.
    gemm_flops_scaling:
        When True, MatMul/Gemm costs scale with an estimate of their FLOPs
        (derived from the operand shapes recorded in ``value_info``).  This
        mirrors the paper's observation that BERT's weighted node cost is an
        order of magnitude larger than the CNNs' despite a similar node
        count: the transformer's matrix multiplies dominate.
    """

    conv_kernel_costs: Mapping[int, float] = dataclasses.field(
        default_factory=lambda: {1: 2.0, 3: 4.0, 5: 8.0, 7: 12.0, 11: 16.0}
    )
    kind_costs: Mapping[OpKind, float] = dataclasses.field(
        default_factory=lambda: {
            OpKind.CONV: 4.0,
            OpKind.GEMM: 6.0,
            OpKind.POOL: 1.0,
            OpKind.NORMALIZATION: 1.0,
            OpKind.ACTIVATION: 1.0,
            OpKind.ELEMENTWISE: 1.0,
            OpKind.REDUCTION: 1.0,
            OpKind.CONCAT: 1.0,
            OpKind.MOVEMENT: 1.0,
            OpKind.SHAPE: 0.0,
            OpKind.CONTROL: 0.0,
            OpKind.EMBEDDING: 2.0,
            OpKind.SOFTMAX: 1.0,
            OpKind.RESIZE: 1.0,
        }
    )
    op_overrides: Mapping[str, float] = dataclasses.field(default_factory=dict)
    edge_unit_cost: float = 1.0
    conv_channel_scaling: bool = True
    gemm_flops_scaling: bool = True
    gemm_flops_per_unit: float = 100_000.0
    default_cost: float = 1.0

    # ------------------------------------------------------------------
    def node_cost(self, op: OpNode, graph: Optional[Graph] = None) -> float:
        """Static cost of one operator node."""
        if op.op_type in self.op_overrides:
            return float(self.op_overrides[op.op_type])
        if not has_schema(op.op_type):
            return self.default_cost
        schema = get_schema(op.op_type)
        if schema.kind is OpKind.CONV:
            return self._conv_cost(op, graph)
        if schema.kind is OpKind.GEMM:
            return self._gemm_cost(op, graph)
        return float(self.kind_costs.get(schema.kind, self.default_cost))

    def edge_cost(self, nbytes: int = 0) -> float:
        """Cost contributed by one tensor-dependence edge (paper: unit)."""
        return float(self.edge_unit_cost)

    # ------------------------------------------------------------------
    def _kernel_bucket_cost(self, kmax: int) -> float:
        keys = sorted(self.conv_kernel_costs)
        chosen = keys[-1]
        for key in keys:
            if kmax <= key:
                chosen = key
                break
        return float(self.conv_kernel_costs[chosen])

    def _conv_cost(self, op: OpNode, graph: Optional[Graph]) -> float:
        kernel = op.get_attr("kernel_shape")
        if kernel is None and graph is not None and len(op.inputs) > 1:
            w_info = graph.tensor_info(op.inputs[1])
            if w_info is not None and w_info.shape is not None and len(w_info.shape) == 4:
                kernel = [w_info.shape[2], w_info.shape[3]]
        kmax = max(int(k) for k in kernel) if kernel else 3
        cost = self._kernel_bucket_cost(kmax)
        if self.conv_channel_scaling and graph is not None and len(op.inputs) > 1:
            w_info = graph.tensor_info(op.inputs[1])
            if (w_info is not None and w_info.shape is not None
                    and len(w_info.shape) == 4 and w_info.shape[0] is not None):
                out_channels = int(w_info.shape[0])
                # Wider layers do proportionally more work; tiny squeeze
                # layers (<32 channels) get a modest discount.  The buckets
                # keep this a *static* weight in the spirit of the paper.
                if out_channels >= 512:
                    cost *= 3.0
                elif out_channels >= 256:
                    cost *= 2.0
                elif out_channels >= 128:
                    cost *= 1.5
                elif out_channels < 32:
                    cost *= 0.75
        group = int(op.get_attr("group", 1) or 1)
        if group > 1:
            # Depthwise convolutions do proportionally less work.
            cost = max(cost / 2.0, 1.0)
        return float(cost)

    def _gemm_cost(self, op: OpNode, graph: Optional[Graph]) -> float:
        base = float(self.kind_costs.get(OpKind.GEMM, 6.0))
        if graph is None:
            return base
        if self.gemm_flops_scaling:
            flops = self._gemm_flops(op, graph)
            if flops is not None:
                return float(min(max(flops / self.gemm_flops_per_unit, 2.0), 400.0))
        # Fallback: scale by the size bucket of the weight operand.
        for inp in op.inputs[1:2]:
            info = graph.tensor_info(inp)
            if info is not None and info.num_elements is not None:
                elems = info.num_elements
                if elems >= 1_000_000:
                    return base * 2.0
                if elems <= 10_000:
                    return base * 0.5
        return base

    @staticmethod
    def _gemm_flops(op: OpNode, graph: Graph) -> Optional[float]:
        """Estimated multiply-accumulate count of a MatMul/Gemm node."""
        a_info = graph.tensor_info(op.inputs[0]) if op.inputs else None
        b_info = graph.tensor_info(op.inputs[1]) if len(op.inputs) > 1 else None
        if (a_info is None or b_info is None
                or a_info.shape is None or b_info.shape is None
                or any(d is None for d in a_info.shape)
                or any(d is None for d in b_info.shape)
                or len(a_info.shape) < 1 or len(b_info.shape) < 1):
            return None
        a_shape = list(a_info.shape)
        b_shape = list(b_info.shape)
        if op.op_type == "Gemm":
            if bool(op.get_attr("transA", 0)):
                a_shape = a_shape[::-1]
            if bool(op.get_attr("transB", 0)):
                b_shape = b_shape[::-1]
        if len(a_shape) < 2:
            a_shape = [1] + a_shape
        if len(b_shape) < 2:
            b_shape = b_shape + [1]
        m, k = a_shape[-2], a_shape[-1]
        n = b_shape[-1]
        batch = 1
        for d in a_shape[:-2]:
            batch *= d
        return float(batch * m * k * n)

    # ------------------------------------------------------------------
    def with_overrides(self, **op_costs: float) -> "CostModel":
        """Return a copy of the model with extra per-op-type overrides."""
        merged = dict(self.op_overrides)
        merged.update(op_costs)
        return dataclasses.replace(self, op_overrides=merged)


#: The default cost model used throughout the reproduction.
DEFAULT_COST_MODEL = CostModel()


def graph_node_costs(graph: Graph, cost_model: Optional[CostModel] = None) -> Dict[str, float]:
    """Convenience: map node name -> static cost for a whole IR graph."""
    cm = cost_model or DEFAULT_COST_MODEL
    return {op.name: cm.node_cost(op, graph) for op in graph.nodes}
