"""Task parallelization via Linear Clustering — the paper's core contribution.

The pipeline is:

1. :func:`~repro.clustering.linear_clustering.linear_clustering`
   (Algorithm 1) — recursive critical-path-based clustering of the
   dataflow graph into linear chains.
2. :func:`~repro.clustering.merging.merge_clusters_fixpoint`
   (Algorithms 2 & 3) — iteratively merge clusters whose execution spans do
   not overlap, to avoid a proliferation of tiny clusters.
3. :func:`~repro.clustering.cloning.clone_cheap_producers` — optional,
   restricted task cloning to remove cross-cluster communication.
4. :func:`~repro.clustering.hypercluster.build_hyperclusters` /
   :func:`~repro.clustering.hypercluster.build_switched_hyperclusters` —
   interleave per-sample replicas of the clusters when the inference batch
   size is greater than one.
5. :class:`~repro.clustering.schedule.ScheduleSimulator` — deterministic
   makespan/slack simulation of a clustering on a multicore, used by the
   speedup benchmarks (Tables IV-VIII, Figs. 12-14).
"""

from repro.clustering.cluster import Cluster, Clustering
from repro.clustering.linear_clustering import linear_clustering
from repro.clustering.merging import merge_clusters_once, merge_clusters_fixpoint
from repro.clustering.cloning import clone_cheap_producers, CloningReport
from repro.clustering.hypercluster import (
    HyperCluster,
    build_hyperclusters,
    build_switched_hyperclusters,
    replicate_for_batch,
)
from repro.clustering.schedule import ScheduleSimulator, ScheduleResult, SimulationConfig
from repro.clustering.validation import (
    ClusteringError,
    check_partition,
    check_linear,
    check_acyclic_clusters,
)

__all__ = [
    "Cluster",
    "Clustering",
    "linear_clustering",
    "merge_clusters_once",
    "merge_clusters_fixpoint",
    "clone_cheap_producers",
    "CloningReport",
    "HyperCluster",
    "build_hyperclusters",
    "build_switched_hyperclusters",
    "replicate_for_batch",
    "ScheduleSimulator",
    "ScheduleResult",
    "SimulationConfig",
    "ClusteringError",
    "check_partition",
    "check_linear",
    "check_acyclic_clusters",
]
