"""Cluster merging (Algorithms 2 and 3).

Linear clustering leaves behind many small clusters because zeroing out the
critical path disconnects the remainder graph.  The merging pass combines
pairs of clusters whose execution spans do not overlap — cluster spans are
expressed in ``distance_to_end`` coordinates, so cluster ``cl1`` ends before
``cl2`` begins when ``sSpan(cl1) < eSpan(cl2)`` (distances shrink as
execution progresses towards the sinks).  Algorithm 2 performs one merging
sweep; Algorithm 3 repeats it until a fixpoint.

Beyond the paper's pseudocode we add one safety check: a merge is rejected
when it would create a cyclic wait between the merged cluster and any other
cluster (possible in rare tie situations because span disjointness is a
necessary but not sufficient condition for schedulability).  This keeps the
generated message-passing code deadlock-free by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.clustering.cluster import Cluster, Clustering
from repro.graph.dataflow import DataflowGraph


def _merge_pair(cl1: Cluster, cl2: Cluster, dist: Dict[str, float],
                new_id: int) -> Cluster:
    """Concatenate two span-disjoint clusters in execution order."""
    # The cluster whose span starts earlier (larger distance) executes first.
    if cl1.start_span(dist) >= cl2.start_span(dist):
        first, second = cl1, cl2
    else:
        first, second = cl2, cl1
    return Cluster(new_id, list(first.nodes) + list(second.nodes))


def _would_create_cycle(
    dfg: DataflowGraph,
    owner: Dict[str, int],
    merged_ids: Tuple[int, int],
    new_id: int,
) -> bool:
    """Check whether merging two clusters creates a cycle in the cluster DAG."""
    relabel = {merged_ids[0]: new_id, merged_ids[1]: new_id}

    def cluster_of(node: str) -> int:
        cid = owner[node]
        return relabel.get(cid, cid)

    # Build the cluster-level dependence graph and run a DFS cycle check.
    edges: Set[Tuple[int, int]] = set()
    for edge in dfg.edges():
        a, b = cluster_of(edge.src), cluster_of(edge.dst)
        if a != b:
            edges.add((a, b))
    adjacency: Dict[int, List[int]] = {}
    for a, b in edges:
        adjacency.setdefault(a, []).append(b)

    visited: Dict[int, int] = {}  # 0 = in progress, 1 = done

    def dfs(node: int) -> bool:
        visited[node] = 0
        for nxt in adjacency.get(node, ()):  # pragma: no branch
            state = visited.get(nxt)
            if state == 0:
                return True
            if state is None and dfs(nxt):
                return True
        visited[node] = 1
        return False

    all_ids = {cluster_of(n) for n in owner}
    return any(dfs(cid) for cid in all_ids if cid not in visited)


def merge_clusters_once(
    clustering: Clustering,
    check_cycles: bool = False,
) -> Tuple[Clustering, bool]:
    """One sweep of Algorithm 2.

    Returns ``(new_clustering, merge_done)`` where ``merge_done`` indicates
    whether at least one pair was merged during the sweep.
    """
    clusters = clustering.clusters
    dist = clustering.distance_to_end
    dfg = clustering.dfg
    owner = clustering.assignment()

    merged: List[Cluster] = []
    skip: Set[int] = set()
    merge_done = False
    next_id = 0

    for i, cl1 in enumerate(clusters):
        if cl1.cluster_id in skip:
            continue
        merged_this = False
        for cl2 in clusters:
            if cl2.cluster_id == cl1.cluster_id:
                continue
            if cl1.cluster_id in skip or cl2.cluster_id in skip:
                continue
            s1, e1 = cl1.start_span(dist), cl1.end_span(dist)
            s2, e2 = cl2.start_span(dist), cl2.end_span(dist)
            # Spans do not overlap when one cluster finishes (reaches a
            # smaller distance) before the other starts.
            if s1 < e2 or s2 < e1:
                candidate = _merge_pair(cl1, cl2, dist, next_id)
                if check_cycles and _would_create_cycle(
                        dfg, owner, (cl1.cluster_id, cl2.cluster_id), -1 - next_id):
                    continue
                merged.append(candidate)
                skip.add(cl1.cluster_id)
                skip.add(cl2.cluster_id)
                next_id += 1
                merge_done = True
                merged_this = True
                break
        if not merged_this and cl1.cluster_id not in skip:
            merged.append(Cluster(next_id, list(cl1.nodes)))
            next_id += 1

    new_clustering = Clustering(dfg=dfg, clusters=merged, distance_to_end=dist)
    return new_clustering, merge_done


def merge_clusters_fixpoint(
    clustering: Clustering,
    max_iterations: int = 64,
    check_cycles: bool = False,
) -> Clustering:
    """Algorithm 3: repeat :func:`merge_clusters_once` until nothing merges.

    ``check_cycles`` is off by default: when the distance pass charges a
    positive cost per edge, span-disjoint merges provably cannot introduce
    node-level ordering cycles (distances strictly decrease along every
    dependence edge), so the extra check is redundant.  It can be enabled
    for experiments with zero edge costs.
    """
    current = clustering
    for _ in range(max_iterations):
        current, merge_done = merge_clusters_once(current, check_cycles=check_cycles)
        if not merge_done:
            break
    return current.renumbered()
