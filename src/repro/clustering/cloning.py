"""Restricted task cloning (Section III-D).

Cloning replicates a node that feeds several consumers so that each
consumer (ultimately: each cluster) computes its own private copy instead
of waiting for a message from another cluster.  It trades redundant
computation for reduced communication and longer independent paths, and —
as the paper stresses — must be applied sparingly because aggressive
cloning blows the graph up exponentially.  Following the paper we restrict
cloning to cheap nodes in the *top half* of the graph (early layers, where
fan-out points such as the stem of Inception live, cf. Fig. 7).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set

from repro.graph.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.graph.dataflow import model_to_dataflow
from repro.graph.traversal import graph_levels
from repro.ir.model import Graph, Model


@dataclasses.dataclass
class CloningReport:
    """Summary of one cloning run."""

    candidates: int
    nodes_cloned: int
    clones_created: int
    nodes_before: int
    nodes_after: int

    @property
    def growth_ratio(self) -> float:
        """Graph-size growth caused by cloning (1.0 = unchanged)."""
        if self.nodes_before == 0:
            return 1.0
        return self.nodes_after / self.nodes_before


def clone_cheap_producers(
    model: Model,
    cost_model: Optional[CostModel] = None,
    max_node_cost: float = 4.0,
    top_fraction: float = 0.5,
    max_fan_out: int = 6,
    max_clones: int = 64,
) -> tuple:
    """Clone cheap, high-fan-out nodes in the top part of the graph.

    Parameters
    ----------
    model:
        The IR model to transform (a copy is returned; the input is untouched).
    cost_model:
        Static cost model used to decide which nodes are "cheap".
    max_node_cost:
        Only nodes with static cost <= this threshold are cloned.
    top_fraction:
        Only nodes whose ASAP level lies within the first ``top_fraction`` of
        the graph's depth are considered (the paper clones "mostly at the top
        half of the dataflow graphs").
    max_fan_out:
        Nodes with more consumers than this are skipped (cloning them would
        multiply the graph too much).
    max_clones:
        Global cap on the number of clone nodes created.

    Returns
    -------
    (Model, CloningReport)
    """
    cm = cost_model or DEFAULT_COST_MODEL
    cloned_model = model.copy()
    graph = cloned_model.graph

    dfg = model_to_dataflow(graph, cost_model=cm)
    levels = graph_levels(dfg)
    depth = max(levels.values()) + 1 if levels else 1
    level_cutoff = depth * top_fraction

    consumers = graph.consumers()
    graph_outputs = set(graph.output_names)

    candidates: List[str] = []
    for node in graph.nodes:
        out_degree = sum(len(consumers.get(out, [])) for out in node.outputs if out)
        if out_degree < 2 or out_degree > max_fan_out:
            continue
        if any(out in graph_outputs for out in node.outputs):
            continue
        if len([o for o in node.outputs if o]) != 1:
            continue  # multi-output nodes (Split/TopK) are not worth the complexity
        if levels.get(node.name, depth) > level_cutoff:
            continue
        if cm.node_cost(node, graph) > max_node_cost:
            continue
        candidates.append(node.name)

    clones_created = 0
    nodes_cloned = 0
    node_by_name = {n.name: n for n in graph.nodes}

    for name in candidates:
        if clones_created >= max_clones:
            break
        node = node_by_name[name]
        out_value = node.primary_output
        users = list(consumers.get(out_value, []))
        if len(users) < 2:
            continue
        nodes_cloned += 1
        # The first consumer keeps the original node; every other consumer
        # gets its own clone.
        for idx, user in enumerate(users[1:], start=1):
            if clones_created >= max_clones:
                break
            clone_name = f"{node.name}__clone{idx}"
            clone_out = f"{out_value}__clone{idx}"
            clone = node.copy(name=clone_name)
            clone.outputs = [clone_out]
            graph.add_node(clone)
            user.rename_input(out_value, clone_out)
            if out_value in graph.value_info:
                graph.value_info[clone_out] = graph.value_info[out_value].with_name(clone_out)
            clones_created += 1

    report = CloningReport(
        candidates=len(candidates),
        nodes_cloned=nodes_cloned,
        clones_created=clones_created,
        nodes_before=model.num_nodes,
        nodes_after=cloned_model.num_nodes,
    )
    return cloned_model, report
