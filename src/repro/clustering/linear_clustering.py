"""Recursive critical-path-based Linear Clustering (Algorithm 1).

The algorithm repeatedly extracts the longest remaining path of the graph:

1. among the *ready* nodes (in-degree zero in the remaining graph), pick the
   one with the largest ``distance_to_end``;
2. walk greedily to the successor with the largest ``distance_to_end``,
   zeroing out the other outgoing edges of the current node and all other
   incoming edges of the chosen successor;
3. when the walk cannot continue, the collected nodes form one linear
   cluster; remove them and start again.

Ties are broken by node insertion index so the clustering is deterministic.
The per-node ``distance_to_end`` is computed once on the full graph, as in
the paper's Distance pass.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.clustering.cluster import Cluster, Clustering
from repro.graph.critical_path import compute_distance_to_end
from repro.graph.dataflow import DataflowGraph


def linear_clustering(
    dfg: DataflowGraph,
    distance_to_end: Optional[Dict[str, float]] = None,
    include_edge_cost: bool = True,
) -> Clustering:
    """Cluster a dataflow graph into linear chains (Algorithm 1).

    Parameters
    ----------
    dfg:
        The dataflow graph to cluster (not modified).
    distance_to_end:
        Precomputed distance pass result; computed on the fly when omitted.
    include_edge_cost:
        Whether the distance pass charges unit edge costs (paper default).

    Returns
    -------
    Clustering
        Clusters are numbered in extraction order: cluster 0 is the first
        critical path, cluster 1 the next-longest path of the remainder
        graph, and so on.  Every node appears in exactly one cluster.
    """
    dist = distance_to_end or compute_distance_to_end(dfg, include_edge_cost)

    # Mutable view of the remaining graph: successor/predecessor sets that we
    # edit destructively, exactly like the edge removals in Algorithm 1.
    remaining: Set[str] = set(dfg.node_names())
    succ: Dict[str, List[str]] = {n: list(dfg.successors(n)) for n in remaining}
    pred: Dict[str, List[str]] = {n: list(dfg.predecessors(n)) for n in remaining}
    index = {n: dfg.node(n).index for n in remaining}

    def sort_key(name: str) -> Tuple[float, int]:
        # Larger distance first, then original order.
        return (-dist[name], index[name])

    clusters: List[Cluster] = []
    cluster_id = 0

    while remaining:
        # Start a new critical path from the best ready node.
        ready = [n for n in remaining if not pred[n]]
        if not ready:
            # The destructive edge removal can in principle leave only nodes
            # whose recorded predecessors were already consumed; treat every
            # remaining node whose predecessors are all gone as ready.
            ready = [n for n in remaining
                     if all(p not in remaining for p in pred[n])]
        if not ready:  # pragma: no cover - defensive, cannot happen on a DAG
            ready = list(remaining)
        current = min(ready, key=sort_key)

        path = [current]
        remaining.discard(current)

        while succ[current]:
            candidates = [s for s in succ[current] if s in remaining]
            if not candidates:
                break
            nxt = min(candidates, key=sort_key)

            # Remove all outgoing edges of `current` other than current->nxt.
            for other in succ[current]:
                if other != nxt and current in pred.get(other, ()):
                    pred[other] = [p for p in pred[other] if p != current]
            succ[current] = [nxt]

            # Remove all other incoming edges of `nxt`.
            for other_pred in pred[nxt]:
                if other_pred != current and nxt in succ.get(other_pred, ()):
                    succ[other_pred] = [s for s in succ[other_pred] if s != nxt]
            pred[nxt] = []

            path.append(nxt)
            remaining.discard(nxt)
            current = nxt

        clusters.append(Cluster(cluster_id, path))
        cluster_id += 1

        # Drop edges that point at already-clustered nodes so the ready set
        # of the next iteration is computed on the remainder graph.
        for name in remaining:
            pred[name] = [p for p in pred[name] if p in remaining]

    return Clustering(dfg=dfg, clusters=clusters, distance_to_end=dist)
