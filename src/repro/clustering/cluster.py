"""Cluster data structures.

A :class:`Cluster` is an ordered list of dataflow-graph node names that
will execute sequentially on one core.  The order is execution order:
Algorithm 1 produces clusters ordered along a (pseudo) critical path, i.e.
by decreasing ``distance_to_end``; merging concatenates non-overlapping
clusters preserving that order.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.graph.dataflow import DataflowGraph


@dataclasses.dataclass
class Cluster:
    """An ordered set of tasks assigned to one core."""

    cluster_id: int
    nodes: List[str] = dataclasses.field(default_factory=list)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def __contains__(self, name: str) -> bool:
        return name in set(self.nodes)

    @property
    def entry_node(self) -> str:
        """First node in execution order (largest distance to end)."""
        if not self.nodes:
            raise ValueError(f"cluster {self.cluster_id} is empty")
        return self.nodes[0]

    @property
    def exit_node(self) -> str:
        """Last node in execution order (smallest distance to end)."""
        if not self.nodes:
            raise ValueError(f"cluster {self.cluster_id} is empty")
        return self.nodes[-1]

    def cost(self, dfg: DataflowGraph) -> float:
        """Total static cost of the cluster's nodes."""
        return float(sum(dfg.node(n).cost for n in self.nodes))

    def start_span(self, distance_to_end: Dict[str, float]) -> float:
        """The paper's ``sSpan``: distance-to-end of the entry node."""
        return distance_to_end[self.entry_node]

    def end_span(self, distance_to_end: Dict[str, float]) -> float:
        """The paper's ``eSpan``: distance-to-end of the exit node."""
        return distance_to_end[self.exit_node]

    def copy(self, cluster_id: Optional[int] = None) -> "Cluster":
        """Copy of this cluster (optionally renumbered)."""
        return Cluster(cluster_id if cluster_id is not None else self.cluster_id,
                       list(self.nodes))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        preview = ", ".join(self.nodes[:3]) + ("…" if len(self.nodes) > 3 else "")
        return f"Cluster(C{self.cluster_id}, {len(self.nodes)} nodes: {preview})"


@dataclasses.dataclass
class Clustering:
    """A full clustering of a dataflow graph plus the analysis it was built from."""

    dfg: DataflowGraph
    clusters: List[Cluster]
    distance_to_end: Dict[str, float]

    def __post_init__(self) -> None:
        self._owner: Dict[str, int] = {}
        for cluster in self.clusters:
            for node in cluster.nodes:
                self._owner[node] = cluster.cluster_id

    # ------------------------------------------------------------------
    @property
    def num_clusters(self) -> int:
        """Number of clusters."""
        return len(self.clusters)

    def owner_of(self, node_name: str) -> int:
        """Cluster id that owns a node."""
        return self._owner[node_name]

    def cluster_by_id(self, cluster_id: int) -> Cluster:
        """Look up a cluster by id."""
        for cluster in self.clusters:
            if cluster.cluster_id == cluster_id:
                return cluster
        raise KeyError(f"no cluster with id {cluster_id}")

    def cluster_of(self, node_name: str) -> Cluster:
        """The cluster owning a node."""
        return self.cluster_by_id(self.owner_of(node_name))

    def assignment(self) -> Dict[str, int]:
        """Node-name -> cluster-id mapping (used by DOT export and codegen)."""
        return dict(self._owner)

    def cross_cluster_edges(self) -> List:
        """Dataflow edges whose endpoints live in different clusters.

        These are exactly the tensor dependences that become ``queue.put`` /
        ``queue.get`` pairs in the generated parallel code.
        """
        return [e for e in self.dfg.edges()
                if self._owner.get(e.src) != self._owner.get(e.dst)]

    def cluster_costs(self) -> Dict[int, float]:
        """Static cost per cluster id."""
        return {c.cluster_id: c.cost(self.dfg) for c in self.clusters}

    def sizes(self) -> List[int]:
        """Cluster sizes in cluster order."""
        return [len(c) for c in self.clusters]

    def renumbered(self) -> "Clustering":
        """Return a copy with cluster ids renumbered 0..k-1 in list order."""
        new_clusters = [c.copy(cluster_id=i) for i, c in enumerate(self.clusters)]
        return Clustering(self.dfg, new_clusters, dict(self.distance_to_end))

    def summary(self) -> dict:
        """Compact summary dict used in reports and logs."""
        costs = self.cluster_costs()
        return {
            "model": self.dfg.name,
            "num_clusters": self.num_clusters,
            "cluster_sizes": self.sizes(),
            "max_cluster_cost": max(costs.values()) if costs else 0.0,
            "cross_cluster_edges": len(self.cross_cluster_edges()),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Clustering({self.dfg.name!r}, clusters={self.num_clusters})"
