"""Hyperclustering and switched hyperclustering (Section III-E).

When the inference batch size is greater than one, every cluster waits on
cross-cluster messages at the same program points for every sample — slack
that can be filled with work from *other* samples.  Hyperclustering keeps
multiple inference samples in flight by interleaving, inside each cluster,
the operations of the same cluster applied to successive samples (Fig. 8).
*Switched* hyperclustering goes further and interleaves operations of
*different* clusters across samples, which balances the per-hypercluster
load when the original clusters have unequal cost (Fig. 9: 5/3 operations
instead of 5/2 for Squeezenet at batch size 2).

Both transformations are expressed as a new :class:`Clustering` over a
batch-replicated dataflow graph, so the schedule simulator and the code
generator treat hyperclusters exactly like ordinary clusters.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.clustering.cluster import Cluster, Clustering
from repro.graph.critical_path import compute_distance_to_end
from repro.graph.dataflow import DataflowGraph

#: Hyperclusters are structurally ordinary clusters; the alias documents intent.
HyperCluster = Cluster


def replica_name(name: str, sample: int) -> str:
    """Name of the ``sample``-th replica of a node (sample 0 keeps the name)."""
    return name if sample == 0 else f"{name}@b{sample}"


def replicate_for_batch(dfg: DataflowGraph, batch_size: int) -> DataflowGraph:
    """Replicate a dataflow graph once per batch sample.

    Each sample's subgraph is an independent copy (inference samples do not
    interact); node costs are preserved.  Sample 0 keeps the original node
    names so that cost providers keyed by original names still apply.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    out = DataflowGraph(f"{dfg.name}_batch{batch_size}")
    out.ir_graph = dfg.ir_graph
    for sample in range(batch_size):
        for node in dfg.nodes():
            out.add_node(replica_name(node.name, sample), node.op_type,
                         cost=node.cost, op_node=node.op_node, replica=sample)
        for edge in dfg.edges():
            out.add_edge(replica_name(edge.src, sample), replica_name(edge.dst, sample),
                         tensor=f"{edge.tensor}@b{sample}" if sample else edge.tensor,
                         nbytes=edge.nbytes, cost=edge.cost)
    return out


def _batched_distance(batched: DataflowGraph) -> Dict[str, float]:
    return compute_distance_to_end(batched)


def _deadlock_free_order(
    ops: List[str],
    clustering: Clustering,
    batch_size: int,
) -> List[str]:
    """Order a hypercluster's operations by a global, dependence-respecting priority.

    Every hypercluster orders its operations by the same total order —
    ``distance_to_end`` of the underlying (batch-1) node descending, then
    node index, then sample index.  Because dependences strictly decrease
    ``distance_to_end`` and never cross samples, every dependence and every
    program-order edge points forward in this total order, so the combined
    ordering graph is acyclic and the generated message-passing code cannot
    deadlock regardless of which clusters the operations were drawn from.
    The resulting sequence also interleaves samples per operation position,
    which is the fine-grained interleaving of Figs. 8 and 9.
    """
    dist = clustering.distance_to_end
    dfg = clustering.dfg

    def key(op: str) -> tuple:
        if "@b" in op:
            base, _, sample = op.rpartition("@b")
            sample_idx = int(sample)
        else:
            base, sample_idx = op, 0
        return (-dist[base], dfg.node(base).index, sample_idx)

    return sorted(ops, key=key)


def build_hyperclusters(
    clustering: Clustering,
    batch_size: int,
    interleave: str = "op",
) -> Clustering:
    """Build plain hyperclusters for a batch of inference samples (Fig. 8).

    Parameters
    ----------
    clustering:
        The (merged) batch-size-1 clustering to start from.
    batch_size:
        Number of inference samples in flight.
    interleave:
        ``"op"`` interleaves per operation (op i of sample 0, op i of sample
        1, ...), which maximizes the chance that another sample's work is
        available whenever one sample stalls on a message; ``"sample"``
        simply concatenates whole per-sample sequences (a weaker baseline).
    """
    if interleave not in ("op", "sample"):
        raise ValueError("interleave must be 'op' or 'sample'")
    batched = replicate_for_batch(clustering.dfg, batch_size)

    hyperclusters: List[Cluster] = []
    for cluster in clustering.clusters:
        ops: List[str] = []
        if interleave == "op":
            for op in cluster.nodes:
                for sample in range(batch_size):
                    ops.append(replica_name(op, sample))
            ops = _deadlock_free_order(ops, clustering, batch_size)
        else:
            for sample in range(batch_size):
                for op in cluster.nodes:
                    ops.append(replica_name(op, sample))
        hyperclusters.append(Cluster(cluster.cluster_id, ops))

    return Clustering(dfg=batched, clusters=hyperclusters,
                      distance_to_end=_batched_distance(batched))


def build_switched_hyperclusters(
    clustering: Clustering,
    batch_size: int,
) -> Clustering:
    """Build switched hyperclusters (Fig. 9).

    Hypercluster ``i`` executes, for sample ``s``, the operations of original
    cluster ``(i + s) mod k`` — so across the batch every hypercluster sees a
    mix of heavy and light clusters and the per-core load evens out.  The
    automatic construction matches the paper's hand-built Squeezenet example;
    for k clusters it is exact load balancing when the batch size is a
    multiple of k.
    """
    batched = replicate_for_batch(clustering.dfg, batch_size)
    clusters = clustering.clusters
    k = len(clusters)
    if k == 0:
        return Clustering(dfg=batched, clusters=[], distance_to_end={})

    hyperclusters: List[Cluster] = []
    for i in range(k):
        # Per-sample source sequences: sample s draws from cluster (i+s) mod k.
        sources: List[List[str]] = []
        for sample in range(batch_size):
            source = clusters[(i + sample) % k]
            sources.append([replica_name(op, sample) for op in source.nodes])
        # Merge the per-sample sequences into one deadlock-free interleaving:
        # the global-priority order interleaves samples per operation
        # position (the fine-grained interleave of Fig. 9) while guaranteeing
        # that every dependence points forward in program order even though
        # the operations were drawn from different original clusters.
        ops = _deadlock_free_order([op for sample_ops in sources for op in sample_ops],
                                   clustering, batch_size)
        hyperclusters.append(Cluster(i, ops))

    return Clustering(dfg=batched, clusters=hyperclusters,
                      distance_to_end=_batched_distance(batched))
