"""Deterministic schedule simulation of a clustering on a multicore.

The paper evaluates its clusterings by generating parallel Python code and
timing it on a 12-core Xeon.  This module provides the deterministic
counterpart used by the benchmark harness: a discrete-event simulation that
executes each cluster's node list in order on its assigned core, charges a
configurable latency for every cross-cluster tensor message and a fixed
startup overhead per cluster (modelling the Python-process fork the paper's
runtime pays per cluster), and reports makespan, per-cluster idle time and
the slack windows that motivate hyperclustering.

Node durations come either from the static cost model (default) or from a
measured cost provider (``repro.runtime.profiler``), so the same simulator
supports both "predicted" and "measured-cost" experiments.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.clustering.cluster import Cluster, Clustering


@dataclasses.dataclass
class SimulationConfig:
    """Knobs of the schedule simulator.

    Parameters
    ----------
    num_cores:
        Number of physical cores (the paper's machine exposes 12).
    message_latency:
        Cost charged on the receiving side for every cross-cluster tensor
        dependence (the paper adds a unit edge cost in its static analysis;
        the real queue transfer is more expensive, so benchmarks typically
        use a value > 1).
    per_cluster_overhead:
        One-time startup cost per cluster, modelling process creation and
        scheduling overhead.  This is what makes 67-cluster NASNet fall
        short of its 3.7x potential (Table IV) and what cluster merging is
        designed to amortize.
    sequential_overhead:
        Fixed overhead added to the simulated sequential run (interpreter
        startup); usually 0.
    node_scale:
        Multiplier applied to every node duration (used to model intra-op
        parallelism: with t threads heavy ops shrink sub-linearly).
    """

    num_cores: int = 12
    message_latency: float = 4.0
    per_cluster_overhead: float = 20.0
    sequential_overhead: float = 0.0
    node_scale: float = 1.0


@dataclasses.dataclass
class ScheduleResult:
    """Outcome of one schedule simulation."""

    model_name: str
    num_clusters: int
    num_cores_used: int
    makespan: float
    sequential_time: float
    node_start: Dict[str, float]
    node_finish: Dict[str, float]
    cluster_busy: Dict[int, float]
    cluster_idle: Dict[int, float]
    cluster_finish: Dict[int, float]
    num_messages: int
    message_cost: float

    @property
    def speedup(self) -> float:
        """Sequential time divided by parallel makespan."""
        if self.makespan <= 0:
            return 1.0
        return self.sequential_time / self.makespan

    @property
    def total_slack(self) -> float:
        """Total idle time across clusters (the hyperclustering opportunity)."""
        return float(sum(self.cluster_idle.values()))

    def as_row(self) -> dict:
        """Benchmark-table row."""
        return {
            "model": self.model_name,
            "clusters": self.num_clusters,
            "seq_time": round(self.sequential_time, 1),
            "par_time": round(self.makespan, 1),
            "speedup": round(self.speedup, 2),
        }


class ScheduleSimulator:
    """Event-driven simulator for cluster schedules."""

    def __init__(self, config: Optional[SimulationConfig] = None) -> None:
        self.config = config or SimulationConfig()

    # ------------------------------------------------------------------
    def node_duration(
        self,
        clustering: Clustering,
        name: str,
        cost_provider: Optional[Mapping[str, float]] = None,
    ) -> float:
        """Duration of one node under the active cost source and scaling."""
        if cost_provider is not None and name in cost_provider:
            base = float(cost_provider[name])
        else:
            base = float(clustering.dfg.node(name).cost)
        return max(base, 0.0) * self.config.node_scale

    def sequential_time(
        self,
        clustering: Clustering,
        cost_provider: Optional[Mapping[str, float]] = None,
    ) -> float:
        """Simulated single-core execution time (no messages, no cluster overhead)."""
        total = sum(self.node_duration(clustering, n, cost_provider)
                    for n in clustering.dfg.node_names())
        return total + self.config.sequential_overhead

    # ------------------------------------------------------------------
    def simulate(
        self,
        clustering: Clustering,
        cost_provider: Optional[Mapping[str, float]] = None,
    ) -> ScheduleResult:
        """Simulate the clustered execution and return timing results.

        Clusters are bound to cores with a least-loaded greedy assignment
        (cluster static cost as the load estimate).  Each core executes at
        most one node at a time; nodes within a cluster follow the cluster's
        list order; a node additionally waits for all of its dataflow
        predecessors, paying ``message_latency`` for each predecessor that
        lives in a different cluster.
        """
        cfg = self.config
        dfg = clustering.dfg
        clusters = clustering.clusters
        owner = clustering.assignment()

        # --- core binding ----------------------------------------------------
        num_cores = max(1, min(cfg.num_cores, max(len(clusters), 1)))
        core_load = [0.0] * num_cores
        cluster_core: Dict[int, int] = {}
        for cluster in sorted(clusters, key=lambda c: -c.cost(dfg)):
            core = min(range(num_cores), key=core_load.__getitem__)
            cluster_core[cluster.cluster_id] = core
            core_load[core] += cluster.cost(dfg)

        # --- event-driven simulation -----------------------------------------
        node_start: Dict[str, float] = {}
        node_finish: Dict[str, float] = {}
        next_index: Dict[int, int] = {c.cluster_id: 0 for c in clusters}
        cluster_available: Dict[int, float] = {
            c.cluster_id: cfg.per_cluster_overhead for c in clusters
        }
        core_available: Dict[int, float] = {core: 0.0 for core in range(num_cores)}
        cluster_busy: Dict[int, float] = {c.cluster_id: 0.0 for c in clusters}
        cluster_first_start: Dict[int, Optional[float]] = {c.cluster_id: None for c in clusters}
        cluster_finish: Dict[int, float] = {c.cluster_id: 0.0 for c in clusters}
        num_messages = 0
        message_cost_total = 0.0

        total_nodes = sum(len(c) for c in clusters)
        scheduled = 0
        cluster_by_id = {c.cluster_id: c for c in clusters}

        while scheduled < total_nodes:
            # Collect the head node of every unfinished cluster whose
            # dependences have all completed.
            best: Optional[Tuple[float, int, str]] = None
            for cluster in clusters:
                idx = next_index[cluster.cluster_id]
                if idx >= len(cluster.nodes):
                    continue
                name = cluster.nodes[idx]
                preds = dfg.in_edges(name)
                if any(e.src not in node_finish for e in preds):
                    continue
                dep_ready = 0.0
                for e in preds:
                    arrival = node_finish[e.src]
                    if owner[e.src] != cluster.cluster_id:
                        arrival += cfg.message_latency
                    dep_ready = max(dep_ready, arrival)
                core = cluster_core[cluster.cluster_id]
                start = max(dep_ready,
                            cluster_available[cluster.cluster_id],
                            core_available[core])
                key = (start, cluster.cluster_id, name)
                if best is None or key < best:
                    best = key
            if best is None:  # pragma: no cover - impossible for valid clusterings
                raise RuntimeError(
                    f"schedule simulation stalled for {dfg.name!r}: "
                    "clustering induces a circular wait"
                )

            start, cluster_id, name = best
            duration = self.node_duration(clustering, name, cost_provider)
            finish = start + duration
            node_start[name] = start
            node_finish[name] = finish
            cluster = cluster_by_id[cluster_id]
            core = cluster_core[cluster_id]

            for e in dfg.in_edges(name):
                if owner[e.src] != cluster_id:
                    num_messages += 1
                    message_cost_total += cfg.message_latency

            next_index[cluster_id] += 1
            cluster_available[cluster_id] = finish
            core_available[core] = finish
            cluster_busy[cluster_id] += duration
            cluster_finish[cluster_id] = finish
            if cluster_first_start[cluster_id] is None:
                cluster_first_start[cluster_id] = start
            scheduled += 1

        makespan = max(node_finish.values()) if node_finish else 0.0
        cluster_idle: Dict[int, float] = {}
        for cluster in clusters:
            cid = cluster.cluster_id
            first = cluster_first_start[cid] or 0.0
            span = cluster_finish[cid] - first
            cluster_idle[cid] = max(span - cluster_busy[cid], 0.0)

        return ScheduleResult(
            model_name=dfg.name,
            num_clusters=len(clusters),
            num_cores_used=num_cores,
            makespan=makespan,
            sequential_time=self.sequential_time(clustering, cost_provider),
            node_start=node_start,
            node_finish=node_finish,
            cluster_busy=cluster_busy,
            cluster_idle=cluster_idle,
            cluster_finish=cluster_finish,
            num_messages=num_messages,
            message_cost=message_cost_total,
        )


def intra_op_node_scale(num_threads: int, parallel_fraction: float = 0.7) -> float:
    """Amdahl-style per-node scaling used to model intra-op parallelism.

    With ``num_threads`` OpenMP-style threads, the parallelizable fraction of
    each operator shrinks linearly while the rest stays serial.  The default
    fraction (0.7) reproduces the diminishing returns the paper observes in
    Table V when moving from 2 to 4 threads.
    """
    if num_threads < 1:
        raise ValueError("num_threads must be >= 1")
    return (1.0 - parallel_fraction) + parallel_fraction / float(num_threads)
