"""Invariant checks for clusterings.

These are used by the property-based tests and (cheaply) by the pipeline
before code generation:

* *partition*: every graph node appears in exactly one cluster;
* *linearity*: inside an LC cluster, consecutive nodes are connected by a
  dependence edge (clusters are paths) — only guaranteed before merging;
* *schedulability*: the union of intra-cluster program order and
  inter-cluster dependence edges is acyclic, i.e. executing each cluster's
  node list in order with blocking receives cannot deadlock.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.clustering.cluster import Clustering
from repro.graph.dataflow import DataflowGraph


class ClusteringError(AssertionError):
    """Raised when a clustering violates a structural invariant."""


def check_partition(clustering: Clustering) -> None:
    """Every node of the graph must appear in exactly one cluster."""
    seen: Dict[str, int] = {}
    for cluster in clustering.clusters:
        for node in cluster.nodes:
            if node in seen:
                raise ClusteringError(
                    f"node {node!r} appears in clusters {seen[node]} and {cluster.cluster_id}"
                )
            seen[node] = cluster.cluster_id
    graph_nodes = set(clustering.dfg.node_names())
    missing = graph_nodes - set(seen)
    extra = set(seen) - graph_nodes
    if missing:
        raise ClusteringError(f"nodes not covered by any cluster: {sorted(missing)[:5]}")
    if extra:
        raise ClusteringError(f"clusters reference unknown nodes: {sorted(extra)[:5]}")


def check_linear(clustering: Clustering) -> None:
    """Each cluster must be a path: consecutive nodes joined by an edge.

    This property holds for the raw output of Algorithm 1; the merging pass
    deliberately relaxes it (merged clusters are concatenations of paths).
    """
    dfg = clustering.dfg
    for cluster in clustering.clusters:
        for a, b in zip(cluster.nodes, cluster.nodes[1:]):
            if not dfg.has_edge(a, b):
                raise ClusteringError(
                    f"cluster {cluster.cluster_id} is not linear: no edge {a!r} -> {b!r}"
                )


def check_acyclic_clusters(clustering: Clustering) -> None:
    """The program order implied by the clustering must be deadlock-free.

    Builds a graph whose edges are (a) every dataflow dependence and (b) an
    edge between consecutive nodes of each cluster's execution order, and
    verifies it is acyclic.
    """
    dfg = clustering.dfg
    succ: Dict[str, Set[str]] = {n: set() for n in dfg.node_names()}
    for edge in dfg.edges():
        succ[edge.src].add(edge.dst)
    for cluster in clustering.clusters:
        for a, b in zip(cluster.nodes, cluster.nodes[1:]):
            succ[a].add(b)

    # Kahn's algorithm over the combined graph.
    indegree: Dict[str, int] = {n: 0 for n in succ}
    for srcs in succ.values():
        for dst in srcs:
            indegree[dst] += 1
    ready = [n for n, d in indegree.items() if d == 0]
    visited = 0
    while ready:
        node = ready.pop()
        visited += 1
        for dst in succ[node]:
            indegree[dst] -= 1
            if indegree[dst] == 0:
                ready.append(dst)
    if visited != len(succ):
        stuck = sorted(n for n, d in indegree.items() if d > 0)[:8]
        raise ClusteringError(
            f"clustering of {dfg.name!r} induces an ordering cycle (e.g. {stuck})"
        )


def validate_clustering(clustering: Clustering, linear: bool = False) -> Clustering:
    """Run all applicable invariant checks; returns the clustering unchanged."""
    check_partition(clustering)
    if linear:
        check_linear(clustering)
    check_acyclic_clusters(clustering)
    return clustering
