"""Indentation-aware source-code emitter."""

from __future__ import annotations

from typing import Iterable, List


class CodeEmitter:
    """Accumulates lines of Python source with managed indentation."""

    def __init__(self, indent_str: str = "    ") -> None:
        self._lines: List[str] = []
        self._indent = 0
        self._indent_str = indent_str

    # ------------------------------------------------------------------
    def line(self, text: str = "") -> "CodeEmitter":
        """Emit one line at the current indentation (empty line when blank)."""
        if text:
            self._lines.append(f"{self._indent_str * self._indent}{text}")
        else:
            self._lines.append("")
        return self

    def lines(self, texts: Iterable[str]) -> "CodeEmitter":
        """Emit several lines."""
        for text in texts:
            self.line(text)
        return self

    def comment(self, text: str) -> "CodeEmitter":
        """Emit a ``#`` comment line."""
        return self.line(f"# {text}")

    def blank(self, count: int = 1) -> "CodeEmitter":
        """Emit blank lines."""
        for _ in range(count):
            self.line("")
        return self

    def docstring(self, text: str) -> "CodeEmitter":
        """Emit a (possibly multi-line) docstring."""
        lines = text.strip("\n").split("\n")
        if len(lines) == 1:
            return self.line(f'"""{lines[0]}"""')
        self.line(f'"""{lines[0]}')
        for inner in lines[1:]:
            self.line(inner)
        return self.line('"""')

    # ------------------------------------------------------------------
    def indent(self) -> "CodeEmitter":
        """Increase indentation by one level."""
        self._indent += 1
        return self

    def dedent(self) -> "CodeEmitter":
        """Decrease indentation by one level."""
        if self._indent == 0:
            raise ValueError("cannot dedent below zero")
        self._indent -= 1
        return self

    class _Block:
        def __init__(self, emitter: "CodeEmitter") -> None:
            self.emitter = emitter

        def __enter__(self) -> "CodeEmitter":
            return self.emitter.indent()

        def __exit__(self, *exc) -> None:
            self.emitter.dedent()

    def block(self, header: str) -> "CodeEmitter._Block":
        """Emit ``header`` and return a context manager indenting its body."""
        self.line(header)
        return CodeEmitter._Block(self)

    # ------------------------------------------------------------------
    def source(self) -> str:
        """The accumulated source code."""
        return "\n".join(self._lines) + "\n"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.source()
