"""Ramiel code generation: readable, runnable parallel Python.

The paper's distinguishing feature is that it emits *high-level, readable,
executable* Python (one function per cluster, message-passing primitives at
cross-cluster tensor dependences) rather than an opaque compiled artifact.
This package mirrors that:

* :mod:`~repro.codegen.ssa` — SSA-style naming of tensor values,
* :mod:`~repro.codegen.emitter` — indentation-aware source emitter,
* :mod:`~repro.codegen.op_lowering` — per-operator lowering to calls into
  :mod:`repro.runtime.functional` (the stand-in for the paper's PyTorch
  calls),
* :func:`~repro.codegen.sequential_codegen.generate_sequential_module` —
  the single-core reference version Ramiel also emits,
* :func:`~repro.codegen.parallel_codegen.generate_parallel_module` —
  Algorithm 4: one function per cluster with ``queue.put()`` /
  ``queue.get()`` messages on cross-cluster dependences,
* :mod:`~repro.codegen.module_writer` — materialize generated source as an
  importable Python module.
"""

from repro.codegen.ssa import SSANamer
from repro.codegen.emitter import CodeEmitter
from repro.codegen.op_lowering import lower_node, LoweringError
from repro.codegen.sequential_codegen import generate_sequential_source, generate_sequential_module
from repro.codegen.parallel_codegen import generate_parallel_source, generate_parallel_module
from repro.codegen.module_writer import GeneratedModule, write_module, load_module

__all__ = [
    "SSANamer",
    "CodeEmitter",
    "lower_node",
    "LoweringError",
    "generate_sequential_source",
    "generate_sequential_module",
    "generate_parallel_source",
    "generate_parallel_module",
    "GeneratedModule",
    "write_module",
    "load_module",
]
