"""Parallel code generation (Algorithm 4).

For every cluster Ramiel emits one Python function.  Inside a cluster
function the nodes execute in the cluster's order; every tensor dependence
whose producer lives in a *different* cluster becomes a ``channels[...].get()``
immediately before the consuming statement, and every value consumed by a
*different* cluster is ``put()`` on the corresponding channel immediately
after it is produced — exactly the structure of the paper's Fig. 11 snippet.

The generated module is plain, readable Python with no dependency beyond
numpy and :mod:`repro.runtime.functional`; the driver that forks one Python
process (or thread) per cluster lives in
:mod:`repro.runtime.process_runtime`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.clustering.cluster import Clustering
from repro.codegen.emitter import CodeEmitter
from repro.codegen.op_lowering import lower_node
from repro.codegen.ssa import SSANamer
from repro.ir.model import Graph, Model


def channel_name(value: str, src_cluster: int, dst_cluster: int) -> str:
    """Deterministic, readable channel key for one cross-cluster tensor."""
    safe_value = value.replace("@", "_").replace("/", "_")
    return f"c{src_cluster}_to_c{dst_cluster}__{safe_value}"


def _base_value(node_output: str) -> str:
    return node_output


class _ClusterCodegen:
    """Generates one cluster function."""

    def __init__(self, graph: Graph, clustering: Clustering, cluster_index: int,
                 node_of: Dict[str, object], owner: Dict[str, int]) -> None:
        self.graph = graph
        self.clustering = clustering
        self.cluster = clustering.clusters[cluster_index]
        self.cluster_index = cluster_index
        self.node_of = node_of
        self.owner = owner
        self.namer = SSANamer()
        self.received: Set[str] = set()

    # ------------------------------------------------------------------
    def _producer_cluster(self, value: str) -> Optional[int]:
        producer = self.producers.get(value)
        if producer is None:
            return None
        return self.owner[producer]

    def _value_expr(self, value: str) -> str:
        if value in self.namer or value in self.received:
            return self.namer.name_for(value)
        if value in self.graph.initializers:
            return f"weights[{value!r}]"
        if value in self.graph.input_names:
            return f"inputs[{value!r}]"
        return self.namer.name_for(value)

    # ------------------------------------------------------------------
    def emit(self, em: CodeEmitter, producers: Dict[str, str],
             consumers_of: Dict[str, List[str]], outputs_needed: Set[str]) -> List[str]:
        """Emit the cluster function; returns graph outputs produced here."""
        self.producers = producers
        cluster_id = self.cluster.cluster_id
        produced_graph_outputs: List[str] = []

        with em.block(f"def cluster_{self.cluster_index}(inputs, weights, channels):"):
            em.docstring(
                f"Cluster {cluster_id} of model {self.graph.name!r} "
                f"({len(self.cluster.nodes)} operations).\n\n"
                "Receives remote tensors with ``channels[...].get()`` right before\n"
                "they are needed and sends locally produced tensors consumed by\n"
                "other clusters with ``channels[...].put()`` right after producing\n"
                "them (Algorithm 4)."
            )
            for node_name in self.cluster.nodes:
                node = self.node_of[node_name]

                # Receive every remote dependence of this node that has not
                # been received by this cluster yet.
                for value in node.present_inputs:
                    producer = producers.get(value)
                    if producer is None:
                        continue  # graph input or initializer
                    src_cluster = self.owner[producer]
                    if src_cluster == cluster_id or value in self.received:
                        continue
                    var = self.namer.name_for(value)
                    chan = channel_name(value, src_cluster, cluster_id)
                    em.line(f"{var} = channels[{chan!r}].get()"
                            f"  # recv {value!r} from cluster {src_cluster}")
                    self.received.add(value)

                input_exprs = [self._value_expr(v) for v in node.present_inputs]
                output_vars = [self.namer.name_for(out) for out in node.outputs if out]
                em.comment(f"{node.op_type} node {node.name!r}")
                for stmt in lower_node(node, input_exprs, output_vars):
                    em.line(stmt)

                # Send every output needed by a remote cluster (once per
                # (value, destination cluster) pair).
                for value in node.outputs:
                    if not value:
                        continue
                    remote_clusters = sorted({
                        self.owner[consumer] for consumer in consumers_of.get(value, [])
                        if self.owner[consumer] != cluster_id
                    })
                    for dst in remote_clusters:
                        chan = channel_name(value, cluster_id, dst)
                        em.line(f"channels[{chan!r}].put({self.namer.name_for(value)})"
                                f"  # send {value!r} -> cluster {dst}")
                    if value in outputs_needed:
                        produced_graph_outputs.append(value)

            if produced_graph_outputs:
                em.line("return {")
                em.indent()
                for out in produced_graph_outputs:
                    em.line(f"{out!r}: {self.namer.name_for(out)},")
                em.dedent()
                em.line("}")
            else:
                em.line("return {}")
        return produced_graph_outputs


def collect_channels(graph: Graph, clustering: Clustering) -> List[str]:
    """All channel names implied by the clustering's cross-cluster dependences."""
    producers = {out: node.name for node in graph.nodes for out in node.outputs if out}
    owner = clustering.assignment()
    channels: Set[str] = set()
    for node in graph.nodes:
        dst = owner[node.name]
        for value in node.present_inputs:
            producer = producers.get(value)
            if producer is None:
                continue
            src = owner[producer]
            if src != dst:
                channels.add(channel_name(value, src, dst))
    return sorted(channels)


def generate_parallel_source(model: Model, clustering: Clustering) -> str:
    """Generate the parallel module source for a model and its clustering.

    The clustering must cover exactly the nodes of ``model.graph`` (i.e. it
    was computed from a dataflow graph derived from this model, possibly
    after pruning/cloning transformations that are already reflected in the
    model).
    """
    graph = model.graph
    node_of = {node.name: node for node in graph.nodes}
    missing = [name for c in clustering.clusters for name in c.nodes if name not in node_of]
    if missing:
        raise ValueError(
            f"clustering references nodes absent from the model graph: {missing[:5]}"
        )

    producers = {out: node.name for node in graph.nodes for out in node.outputs if out}
    consumers_of: Dict[str, List[str]] = {}
    for node in graph.nodes:
        for value in node.present_inputs:
            consumers_of.setdefault(value, []).append(node.name)
    owner = clustering.assignment()
    outputs_needed = set(graph.output_names)

    em = CodeEmitter()
    em.docstring(
        f"Parallel inference code generated by Ramiel for model {model.name!r}.\n\n"
        f"{clustering.num_clusters} clusters; each ``cluster_i`` function runs on its\n"
        "own core (one Python process, per the paper) and exchanges tensors with\n"
        "the other clusters through the ``channels`` mapping of queues."
    )
    em.blank()
    em.line("import numpy as np")
    em.blank()
    em.line("import repro.runtime.functional as F")
    em.blank(2)
    em.line(f"MODEL_NAME = {model.name!r}")
    em.line(f"NUM_CLUSTERS = {clustering.num_clusters}")
    em.line(f"GRAPH_INPUTS = {list(graph.input_names)!r}")
    em.line(f"GRAPH_OUTPUTS = {list(graph.output_names)!r}")
    channels = collect_channels(graph, clustering)
    em.line(f"CHANNEL_NAMES = {channels!r}")
    em.blank(2)

    cluster_outputs: Dict[int, List[str]] = {}
    for index in range(clustering.num_clusters):
        codegen = _ClusterCodegen(graph, clustering, index, node_of, owner)
        produced = codegen.emit(em, producers, consumers_of, outputs_needed)
        cluster_outputs[index] = produced
        em.blank(2)

    em.line("CLUSTER_FUNCTIONS = [" + ", ".join(
        f"cluster_{i}" for i in range(clustering.num_clusters)) + "]")
    em.line(f"CLUSTER_OUTPUTS = {cluster_outputs!r}")
    em.blank(2)
    with em.block("def run_parallel(inputs, weights, backend='thread', num_workers=None):"):
        em.docstring(
            "Convenience driver: execute all clusters with the repro runtime.\n\n"
            "``backend`` is 'thread', 'process' or 'serial'."
        )
        em.line("from repro.runtime.process_runtime import execute_generated_module")
        em.line("import sys")
        em.line("module = sys.modules[__name__]")
        em.line("return execute_generated_module(module, inputs, weights, backend=backend)")
    return em.source()


def generate_parallel_module(model: Model, clustering: Clustering,
                             directory: Optional[str] = None):
    """Generate, write and import the parallel module; returns a GeneratedModule."""
    from repro.codegen.module_writer import write_module

    source = generate_parallel_source(model, clustering)
    return write_module(source, f"{model.name}_parallel", directory=directory)
