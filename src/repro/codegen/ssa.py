"""SSA-style naming of tensor values in generated code.

Algorithm 4 "generate[s] a new SSA-name for the output variable of the node
n called outVar".  IR value names can contain characters that are not legal
Python identifiers, and distinct IR values must never collide after
sanitization, so the namer keeps a bijection between IR value names and
generated identifiers.
"""

from __future__ import annotations

import keyword
import re
from typing import Dict

_IDENT_RE = re.compile(r"[^0-9a-zA-Z_]")


class SSANamer:
    """Allocate unique, readable Python identifiers for IR value names."""

    def __init__(self, prefix: str = "v_") -> None:
        self.prefix = prefix
        self._by_value: Dict[str, str] = {}
        self._used: set = set()

    def __contains__(self, value_name: str) -> bool:
        return value_name in self._by_value

    def name_for(self, value_name: str) -> str:
        """Return (allocating if needed) the identifier for an IR value name."""
        existing = self._by_value.get(value_name)
        if existing is not None:
            return existing
        base = _IDENT_RE.sub("_", value_name).strip("_") or "value"
        if base[0].isdigit():
            base = f"_{base}"
        candidate = f"{self.prefix}{base}"
        if keyword.iskeyword(candidate):
            candidate += "_"
        unique = candidate
        counter = 1
        while unique in self._used:
            unique = f"{candidate}_{counter}"
            counter += 1
        self._used.add(unique)
        self._by_value[value_name] = unique
        return unique

    def mapping(self) -> Dict[str, str]:
        """Copy of the value-name -> identifier mapping."""
        return dict(self._by_value)


def sanitize_identifier(name: str, prefix: str = "") -> str:
    """One-off sanitization of a name into a legal Python identifier."""
    base = _IDENT_RE.sub("_", name).strip("_") or "name"
    if base[0].isdigit():
        base = f"_{base}"
    out = f"{prefix}{base}"
    if keyword.iskeyword(out):
        out += "_"
    return out
