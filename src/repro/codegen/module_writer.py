"""Materialize generated source as importable Python modules."""

from __future__ import annotations

import dataclasses
import importlib.util
import sys
import tempfile
import types
from pathlib import Path
from typing import Optional

from repro.codegen.ssa import sanitize_identifier

#: Counter ensuring unique module names within one interpreter session even
#: when the same model is generated repeatedly (tests do this a lot).
_module_counter = 0


@dataclasses.dataclass
class GeneratedModule:
    """A generated module: its source text, on-disk path and loaded module."""

    name: str
    source: str
    path: Path
    module: types.ModuleType

    def __getattr__(self, item):
        # Delegate attribute access to the underlying module so callers can
        # use the GeneratedModule as if it were the module itself.
        return getattr(self.module, item)


def write_module(source: str, name: str, directory: Optional[str] = None) -> GeneratedModule:
    """Write generated source to ``<directory>/<name>.py`` and import it.

    When ``directory`` is omitted a temporary directory is used (kept for the
    lifetime of the process so that multiprocessing workers started with the
    ``fork`` method can still resolve the module file).
    """
    global _module_counter
    _module_counter += 1
    safe_name = sanitize_identifier(name)
    unique_name = f"ramiel_generated_{safe_name}_{_module_counter}"

    if directory is None:
        directory = tempfile.mkdtemp(prefix="ramiel_codegen_")
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{safe_name}.py"
    path.write_text(source, encoding="utf-8")

    module = load_module(path, unique_name)
    return GeneratedModule(name=unique_name, source=source, path=path, module=module)


def load_module(path, module_name: str) -> types.ModuleType:
    """Import a Python file as a module under the given name."""
    path = Path(path)
    spec = importlib.util.spec_from_file_location(module_name, path)
    if spec is None or spec.loader is None:  # pragma: no cover - importlib invariant
        raise ImportError(f"cannot load generated module from {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    spec.loader.exec_module(module)
    return module
