"""Per-operator lowering to readable Python calls.

This is the code-generation counterpart of the interpreter handlers in
:mod:`repro.runtime.executor` (the paper's
``GeneratePytorchCodeForOperandType``): for each IR node it produces the
Python statement(s) that compute the node's outputs by calling
``F.<operator>(...)`` from :mod:`repro.runtime.functional`.

The generated text is meant to be *read* — attribute values are rendered as
plain literals, one statement per node, with the original node name
recoverable from the SSA variable names.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.ir.node import OpNode


class LoweringError(NotImplementedError):
    """Raised when an operator has no code-generation rule."""


def _literal(value) -> str:
    """Render an attribute value as a Python literal."""
    if isinstance(value, bool):
        return "True" if value else "False"
    if isinstance(value, (int, float, str)):
        return repr(value)
    if isinstance(value, np.ndarray):
        flat = value.ravel().tolist()
        if value.size == 1:
            return f"np.float32({flat[0]!r})" if value.dtype.kind == "f" else repr(flat[0])
        return (f"np.array({flat!r}, dtype=np.{value.dtype.name})"
                + (f".reshape({list(value.shape)!r})" if value.ndim > 1 else ""))
    if isinstance(value, (list, tuple)):
        return repr(list(value))
    raise LoweringError(f"cannot render attribute value {value!r} as a literal")


_Lowering = Callable[[OpNode, List[str], List[str]], List[str]]
_LOWERINGS: Dict[str, _Lowering] = {}


def _lower(op_type: str) -> Callable[[_Lowering], _Lowering]:
    def wrap(fn: _Lowering) -> _Lowering:
        _LOWERINGS[op_type] = fn
        return fn

    return wrap


def supported_ops() -> List[str]:
    """Operators with a code-generation rule."""
    return sorted(_LOWERINGS)


def lower_node(node: OpNode, input_exprs: Sequence[str], output_vars: Sequence[str]) -> List[str]:
    """Lower one node to Python statements assigning ``output_vars``."""
    fn = _LOWERINGS.get(node.op_type)
    if fn is None:
        raise LoweringError(f"no lowering rule for operator {node.op_type!r} "
                            f"(node {node.name})")
    return fn(node, list(input_exprs), list(output_vars))


def _single(expr_fn: Callable[[OpNode, List[str]], str]) -> _Lowering:
    def lowering(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
        return [f"{outputs[0]} = {expr_fn(node, inputs)}"]

    return lowering


def _simple_call(fn_name: str) -> _Lowering:
    return _single(lambda node, inputs: f"F.{fn_name}({', '.join(inputs)})")


# ---------------------------------------------------------------------------
# Convolution / pooling
# ---------------------------------------------------------------------------
@_lower("Conv")
def _lower_conv(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    args = [inputs[0], inputs[1]]
    args.append(inputs[2] if len(inputs) > 2 else "None")
    kwargs = (
        f"strides={_literal(node.get_attr('strides', [1, 1]))}, "
        f"pads={_literal(node.get_attr('pads', [0, 0, 0, 0]))}, "
        f"dilations={_literal(node.get_attr('dilations', [1, 1]))}, "
        f"group={int(node.get_attr('group', 1))}"
    )
    return [f"{outputs[0]} = F.conv2d({', '.join(args)}, {kwargs})"]


@_lower("ConvTranspose")
def _lower_conv_transpose(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    bias = inputs[2] if len(inputs) > 2 else "None"
    return [
        f"{outputs[0]} = F.conv_transpose2d({inputs[0]}, {inputs[1]}, {bias}, "
        f"strides={_literal(node.get_attr('strides', [1, 1]))}, "
        f"pads={_literal(node.get_attr('pads', [0, 0, 0, 0]))}, "
        f"output_padding={_literal(node.get_attr('output_padding', [0, 0]))})"
    ]


def _lower_pool(fn_name: str, emit_count_include_pad: bool = False) -> _Lowering:
    def lowering(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
        # The ONNX default for AveragePool's count_include_pad is 0; emit the
        # resolved flag explicitly so the generated code does not depend on
        # the functional-namespace default.
        extra = ""
        if emit_count_include_pad:
            extra = (f", count_include_pad="
                     f"{bool(node.get_attr('count_include_pad', 0))}")
        return [
            f"{outputs[0]} = F.{fn_name}({inputs[0]}, "
            f"kernel={_literal(node.get_attr('kernel_shape', [1, 1]))}, "
            f"strides={_literal(node.get_attr('strides', [1, 1]))}, "
            f"pads={_literal(node.get_attr('pads', [0, 0, 0, 0]))}, "
            f"ceil_mode={bool(node.get_attr('ceil_mode', 0))}{extra})"
        ]

    return lowering


_LOWERINGS["MaxPool"] = _lower_pool("max_pool2d")
_LOWERINGS["AveragePool"] = _lower_pool("avg_pool2d", emit_count_include_pad=True)
_LOWERINGS["GlobalAveragePool"] = _simple_call("global_avg_pool2d")
_LOWERINGS["GlobalMaxPool"] = _simple_call("global_max_pool2d")

# ---------------------------------------------------------------------------
# Linear algebra / normalization
# ---------------------------------------------------------------------------
_LOWERINGS["MatMul"] = _simple_call("matmul")


@_lower("Gemm")
def _lower_gemm(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    c = inputs[2] if len(inputs) > 2 else "None"
    return [
        f"{outputs[0]} = F.gemm({inputs[0]}, {inputs[1]}, {c}, "
        f"alpha={float(node.get_attr('alpha', 1.0))}, beta={float(node.get_attr('beta', 1.0))}, "
        f"trans_a={bool(node.get_attr('transA', 0))}, trans_b={bool(node.get_attr('transB', 0))})"
    ]


@_lower("Einsum")
def _lower_einsum(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    return [f"{outputs[0]} = F.einsum({_literal(node.get_attr('equation'))}, {', '.join(inputs)})"]


@_lower("BatchNormalization")
def _lower_batchnorm(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    return [
        f"{outputs[0]} = F.batch_norm({', '.join(inputs[:5])}, "
        f"epsilon={float(node.get_attr('epsilon', 1e-5))})"
    ]


@_lower("LayerNormalization")
def _lower_layernorm(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    bias = inputs[2] if len(inputs) > 2 else "None"
    return [
        f"{outputs[0]} = F.layer_norm({inputs[0]}, {inputs[1]}, {bias}, "
        f"axis={int(node.get_attr('axis', -1))}, epsilon={float(node.get_attr('epsilon', 1e-5))})"
    ]


@_lower("InstanceNormalization")
def _lower_instancenorm(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    return [
        f"{outputs[0]} = F.instance_norm({', '.join(inputs[:3])}, "
        f"epsilon={float(node.get_attr('epsilon', 1e-5))})"
    ]


# ---------------------------------------------------------------------------
# Activations / elementwise
# ---------------------------------------------------------------------------
_UNARY_FNS = {
    "Relu": "relu", "Sigmoid": "sigmoid", "Tanh": "tanh", "Gelu": "gelu",
    "Erf": "erf", "Softplus": "softplus", "HardSwish": "hard_swish",
    "Mish": "mish", "Sqrt": "sqrt", "Exp": "exp", "Log": "log", "Neg": "neg",
    "Abs": "abs_", "Reciprocal": "reciprocal", "Floor": "floor", "Ceil": "ceil",
    "Round": "round_", "Sign": "sign", "Cos": "cos", "Sin": "sin",
    "Not": "logical_not",
}
for _op, _fn in _UNARY_FNS.items():
    _LOWERINGS[_op] = _simple_call(_fn)

_LOWERINGS["Identity"] = _single(lambda node, inputs: f"np.asarray({inputs[0]})")
_LOWERINGS["Selu"] = _simple_call("selu")
_LOWERINGS["PRelu"] = _simple_call("prelu")


@_lower("LeakyRelu")
def _lower_leaky_relu(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    return [f"{outputs[0]} = F.leaky_relu({inputs[0]}, alpha={float(node.get_attr('alpha', 0.01))})"]


@_lower("Elu")
def _lower_elu(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    return [f"{outputs[0]} = F.elu({inputs[0]}, alpha={float(node.get_attr('alpha', 1.0))})"]


@_lower("HardSigmoid")
def _lower_hard_sigmoid(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    return [f"{outputs[0]} = F.hard_sigmoid({inputs[0]}, "
            f"alpha={float(node.get_attr('alpha', 0.2))}, beta={float(node.get_attr('beta', 0.5))})"]


@_lower("Clip")
def _lower_clip(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    lo = inputs[1] if len(inputs) > 1 else _literal(node.get_attr("min")) \
        if node.has_attr("min") else "None"
    hi = inputs[2] if len(inputs) > 2 else _literal(node.get_attr("max")) \
        if node.has_attr("max") else "None"
    return [f"{outputs[0]} = F.clip({inputs[0]}, {lo}, {hi})"]


@_lower("Softmax")
def _lower_softmax(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    return [f"{outputs[0]} = F.softmax({inputs[0]}, axis={int(node.get_attr('axis', -1))})"]


@_lower("LogSoftmax")
def _lower_log_softmax(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    return [f"{outputs[0]} = F.log_softmax({inputs[0]}, axis={int(node.get_attr('axis', -1))})"]


_BINARY_FNS = {
    "Add": "add", "Sub": "sub", "Mul": "mul", "Div": "div", "Pow": "pow_",
    "Mod": "mod", "Min": "minimum", "Max": "maximum", "Equal": "equal",
    "Greater": "greater", "Less": "less", "GreaterOrEqual": "greater_or_equal",
    "LessOrEqual": "less_or_equal", "And": "logical_and", "Or": "logical_or",
    "Xor": "logical_xor",
}
for _op, _fn in _BINARY_FNS.items():
    _LOWERINGS[_op] = _simple_call(_fn)

_LOWERINGS["Where"] = _simple_call("where")


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------
def _lower_reduce(fn_name: str) -> _Lowering:
    def lowering(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
        axes = node.get_attr("axes")
        axes_expr = _literal(axes) if axes is not None else (
            f"[int(v) for v in np.atleast_1d({inputs[1]})]" if len(inputs) > 1 else "None")
        return [f"{outputs[0]} = F.{fn_name}({inputs[0]}, axes={axes_expr}, "
                f"keepdims={bool(node.get_attr('keepdims', 1))})"]

    return lowering


for _op, _fn in [("ReduceMean", "reduce_mean"), ("ReduceSum", "reduce_sum"),
                 ("ReduceMax", "reduce_max"), ("ReduceMin", "reduce_min"),
                 ("ReduceProd", "reduce_prod"), ("ReduceL2", "reduce_l2")]:
    _LOWERINGS[_op] = _lower_reduce(_fn)


@_lower("ArgMax")
def _lower_argmax(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    return [f"{outputs[0]} = F.argmax({inputs[0]}, axis={int(node.get_attr('axis', 0))}, "
            f"keepdims={bool(node.get_attr('keepdims', 1))})"]


@_lower("ArgMin")
def _lower_argmin(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    return [f"{outputs[0]} = F.argmin({inputs[0]}, axis={int(node.get_attr('axis', 0))}, "
            f"keepdims={bool(node.get_attr('keepdims', 1))})"]


@_lower("CumSum")
def _lower_cumsum(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    axis = f"int(np.asarray({inputs[1]}))" if len(inputs) > 1 else "0"
    return [f"{outputs[0]} = F.cumsum({inputs[0]}, axis={axis})"]


@_lower("TopK")
def _lower_topk(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    targets = ", ".join(outputs[:2]) if len(outputs) > 1 else f"{outputs[0]}, _"
    return [f"{targets} = F.topk({inputs[0]}, int(np.atleast_1d({inputs[1]})[0]), "
            f"axis={int(node.get_attr('axis', -1))}, "
            f"largest={bool(node.get_attr('largest', 1))})"]


# ---------------------------------------------------------------------------
# Concat / split / movement
# ---------------------------------------------------------------------------
@_lower("Concat")
def _lower_concat(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    return [f"{outputs[0]} = F.concat([{', '.join(inputs)}], axis={int(node.get_attr('axis', 0))})"]


@_lower("Split")
def _lower_split(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    sizes = node.get_attr("split")
    parts = len(outputs)
    if sizes is not None:
        call = f"F.split({inputs[0]}, sizes={_literal(sizes)}, axis={int(node.get_attr('axis', 0))})"
    else:
        call = f"F.split({inputs[0]}, parts={parts}, axis={int(node.get_attr('axis', 0))})"
    return [f"{', '.join(outputs)} = {call}"]


@_lower("Reshape")
def _lower_reshape(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    shape = node.get_attr("shape")
    target = _literal(shape) if shape is not None else inputs[1]
    return [f"{outputs[0]} = F.reshape({inputs[0]}, {target})"]


@_lower("Transpose")
def _lower_transpose(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    perm = node.get_attr("perm")
    return [f"{outputs[0]} = F.transpose({inputs[0]}, {_literal(perm) if perm is not None else 'None'})"]


@_lower("Flatten")
def _lower_flatten(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    return [f"{outputs[0]} = F.flatten({inputs[0]}, axis={int(node.get_attr('axis', 1))})"]


def _axes_expr(node: OpNode, inputs: List[str]) -> str:
    axes = node.get_attr("axes")
    if axes is not None:
        return _literal(axes)
    if len(inputs) > 1:
        return f"[int(v) for v in np.atleast_1d({inputs[1]})]"
    return "None"


@_lower("Squeeze")
def _lower_squeeze(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    return [f"{outputs[0]} = F.squeeze({inputs[0]}, {_axes_expr(node, inputs)})"]


@_lower("Unsqueeze")
def _lower_unsqueeze(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    return [f"{outputs[0]} = F.unsqueeze({inputs[0]}, {_axes_expr(node, inputs)})"]


@_lower("Slice")
def _lower_slice(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    def pick(attr: str, idx: int) -> str:
        value = node.get_attr(attr)
        if value is not None:
            return _literal(value)
        if len(inputs) > idx:
            return inputs[idx]
        return "None"

    return [f"{outputs[0]} = F.slice_({inputs[0]}, {pick('starts', 1)}, {pick('ends', 2)}, "
            f"{pick('axes', 3)}, {pick('steps', 4)})"]


@_lower("Gather")
def _lower_gather(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    return [f"{outputs[0]} = F.gather({inputs[0]}, {inputs[1]}, axis={int(node.get_attr('axis', 0))})"]


@_lower("GatherElements")
def _lower_gather_elements(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    return [f"{outputs[0]} = F.gather_elements({inputs[0]}, {inputs[1]}, "
            f"axis={int(node.get_attr('axis', 0))})"]


_LOWERINGS["EmbeddingLookup"] = _single(
    lambda node, inputs: f"F.gather({inputs[0]}, {inputs[1]}, axis=0)")
_LOWERINGS["Expand"] = _simple_call("expand")
_LOWERINGS["Tile"] = _simple_call("tile")


@_lower("Pad")
def _lower_pad(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    pads = node.get_attr("pads")
    pads_expr = _literal(pads) if pads is not None else inputs[1]
    return [f"{outputs[0]} = F.pad({inputs[0]}, {pads_expr}, "
            f"mode={_literal(node.get_attr('mode', 'constant'))}, "
            f"value={float(node.get_attr('value', 0.0))})"]


@_lower("Resize")
def _lower_resize(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    scales = node.get_attr("scales")
    scales_expr = _literal(scales) if scales is not None else inputs[2]
    return [f"{outputs[0]} = F.resize_nearest({inputs[0]}, {scales_expr})"]


_LOWERINGS["Upsample"] = _LOWERINGS["Resize"]


@_lower("DepthToSpace")
def _lower_depth_to_space(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    return [f"{outputs[0]} = F.depth_to_space({inputs[0]}, {int(node.get_attr('blocksize', 2))}, "
            f"mode={_literal(node.get_attr('mode', 'DCR'))})"]


@_lower("SpaceToDepth")
def _lower_space_to_depth(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    return [f"{outputs[0]} = F.space_to_depth({inputs[0]}, {int(node.get_attr('blocksize', 2))})"]


# ---------------------------------------------------------------------------
# Metadata ops
# ---------------------------------------------------------------------------
_LOWERINGS["Shape"] = _simple_call("shape_of")
_LOWERINGS["Size"] = _simple_call("size_of")


@_lower("Cast")
def _lower_cast(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    return [f"{outputs[0]} = F.cast({inputs[0]}, to={_literal(node.get_attr('to', 'float32'))})"]


@_lower("Constant")
def _lower_constant(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    value = np.asarray(node.get_attr("value"))
    return [f"{outputs[0]} = {_literal(value)}"]


@_lower("ConstantOfShape")
def _lower_constant_of_shape(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    return [f"{outputs[0]} = F.constant_of_shape({inputs[0]}, "
            f"value={float(node.get_attr('value', 0.0))})"]


@_lower("Range")
def _lower_range(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    return [f"{outputs[0]} = np.arange(np.asarray({inputs[0]}).item(), "
            f"np.asarray({inputs[1]}).item(), np.asarray({inputs[2]}).item())"]


@_lower("NonZero")
def _lower_nonzero(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    return [f"{outputs[0]} = np.asarray(np.nonzero({inputs[0]}), dtype=np.int64)"]


@_lower("OneHot")
def _lower_one_hot(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    values = inputs[2] if len(inputs) > 2 else "(0.0, 1.0)"
    return [f"{outputs[0]} = F.one_hot({inputs[0]}, int(np.atleast_1d({inputs[1]})[0]), {values}, "
            f"axis={int(node.get_attr('axis', -1))})"]


@_lower("Dropout")
def _lower_dropout(node: OpNode, inputs: List[str], outputs: List[str]) -> List[str]:
    stmts = [f"{outputs[0]} = np.asarray({inputs[0]})  # inference-mode dropout is a no-op"]
    if len(outputs) > 1:
        stmts.append(f"{outputs[1]} = np.ones_like({outputs[0]}, dtype=bool)")
    return stmts
