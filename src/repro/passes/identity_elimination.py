"""Removal of semantic no-ops: Identity, inference-mode Dropout, unit Pads.

These appear in exported inference graphs (Dropout is kept by some
exporters even though it is the identity at inference time) and only add
edges to the critical path, so pruning them before clustering both
shortens the CP and reduces message traffic in the generated code.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.ir.model import Graph
from repro.passes.pass_manager import GraphPass


def _rewire(graph: Graph, old_value: str, new_value: str) -> None:
    """Redirect every consumer of ``old_value`` to read ``new_value`` instead."""
    for node in graph.nodes:
        node.rename_input(old_value, new_value)
    for idx, out in enumerate(graph.outputs):
        if out.name == old_value:
            # A graph output cannot silently change name; keep the output
            # name stable by leaving it to the caller (we only rewire when
            # the value is not a graph output).
            raise AssertionError("attempted to rewire a graph output")


def _is_noop_pad(node, graph: Graph) -> bool:
    if node.op_type != "Pad":
        return False
    pads = node.get_attr("pads")
    if pads is None and len(node.present_inputs) > 1:
        init = graph.initializers.get(node.inputs[1])
        pads = None if init is None else [int(v) for v in np.atleast_1d(init)]
    return pads is not None and all(int(p) == 0 for p in pads)


def eliminate_identities(graph: Graph) -> int:
    """Remove Identity/Dropout/no-op Pad nodes by rewiring their consumers.

    Nodes whose output is a graph output are left untouched (removing them
    would change the output name).  Returns the number of nodes removed.
    """
    graph_outputs = set(graph.output_names)
    removed: List[str] = []
    for node in list(graph.nodes):
        passthrough = (
            node.op_type in ("Identity",)
            or (node.op_type == "Dropout")
            or _is_noop_pad(node, graph)
        )
        if not passthrough:
            continue
        source = node.inputs[0] if node.inputs else ""
        primary = node.outputs[0] if node.outputs else ""
        if not source or not primary:
            continue
        if primary in graph_outputs or any(
            out in graph_outputs for out in node.outputs if out
        ):
            continue
        _rewire(graph, primary, source)
        removed.append(node.name)
    graph.remove_nodes(removed)
    return len(removed)


class IdentityEliminationPass(GraphPass):
    """Pass-manager wrapper around :func:`eliminate_identities`."""

    name = "identity-elimination"

    def run(self, graph: Graph) -> int:
        return eliminate_identities(graph)
