"""Dead-code elimination: remove nodes that cannot reach any graph output."""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.model import Graph
from repro.passes.pass_manager import GraphPass


def eliminate_dead_code(graph: Graph, prune_initializers: bool = True) -> int:
    """Remove nodes whose outputs (transitively) feed no graph output.

    Returns the number of nodes removed.  Optionally also drops initializers
    that are no longer referenced, which keeps serialized pruned models small.
    """
    producers = graph.producers()
    consumers = graph.consumers()

    # Walk backwards from the graph outputs, marking live nodes.
    live_nodes: Set[str] = set()
    worklist: List[str] = []
    for out_name in graph.output_names:
        producer = producers.get(out_name)
        if producer is not None:
            worklist.append(producer.name)
    node_by_name = {n.name: n for n in graph.nodes}
    while worklist:
        name = worklist.pop()
        if name in live_nodes:
            continue
        live_nodes.add(name)
        node = node_by_name[name]
        for inp in node.present_inputs:
            producer = producers.get(inp)
            if producer is not None and producer.name not in live_nodes:
                worklist.append(producer.name)

    dead = [n.name for n in graph.nodes if n.name not in live_nodes]
    removed = graph.remove_nodes(dead)

    if prune_initializers and removed:
        referenced: Set[str] = set(graph.output_names)
        for node in graph.nodes:
            referenced.update(node.present_inputs)
        for name in list(graph.initializers):
            if name not in referenced:
                del graph.initializers[name]
                graph.value_info.pop(name, None)
    return removed


class DeadCodeEliminationPass(GraphPass):
    """Pass-manager wrapper around :func:`eliminate_dead_code`."""

    name = "dead-code-elimination"

    def __init__(self, prune_initializers: bool = True) -> None:
        super().__init__()
        self.prune_initializers = prune_initializers

    def run(self, graph: Graph) -> int:
        return eliminate_dead_code(graph, self.prune_initializers)
