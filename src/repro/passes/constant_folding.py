"""Constant folding: evaluate all-constant subgraphs ahead of time.

A node is foldable when every one of its (present) inputs is either a graph
initializer or the output of an already-folded node, and its operator has a
runtime handler.  The node is executed once with the numpy runtime and its
outputs become initializers; dead-code elimination then removes the node
itself (folding alone leaves it in place only if something still consumes
the original outputs — which cannot happen because we rewrite them — so the
node simply becomes dead).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro.ir.model import Graph
from repro.passes.pass_manager import GraphPass
from repro.runtime import executor as _executor

#: Ops that must never be folded even if their inputs are constant, because
#: their output size could explode (materializing huge constants) or their
#: value is intentionally runtime-dependent.
_FOLD_BLOCKLIST = {"ConstantOfShape", "Expand", "Tile"}

#: Maximum number of elements a folded constant may have.  Anything larger
#: is left in the graph to avoid ballooning the model size.
_MAX_FOLDED_ELEMENTS = 1 << 22


def _is_foldable(node, graph: Graph, known_constants: Set[str]) -> bool:
    if node.op_type in _FOLD_BLOCKLIST:
        return False
    if node.op_type not in _executor.supported_ops() and node.op_type != "Constant":
        return False
    inputs = node.present_inputs
    if not inputs and node.op_type != "Constant":
        return False
    return all(name in known_constants for name in inputs)


def fold_constants(graph: Graph, max_folded_elements: int = _MAX_FOLDED_ELEMENTS) -> int:
    """Fold all-constant nodes into initializers; returns the number folded.

    The folded nodes are *not* removed here — they become dead and are
    cleaned up by :func:`repro.passes.dead_code_elimination.eliminate_dead_code`
    (mirroring the onnxruntime split between constant folding and graph
    pruning the paper relies on).
    """
    from repro.graph.traversal import topological_sort_nodes

    known: Set[str] = set(graph.initializers)
    folded_values: Dict[str, np.ndarray] = dict(graph.initializers)
    graph_outputs = set(graph.output_names)
    folded_nodes = 0

    for node in topological_sort_nodes(graph):
        if not _is_foldable(node, graph, known):
            continue
        handler = _executor._HANDLERS.get(node.op_type)  # noqa: SLF001 - internal reuse
        if handler is None:
            continue
        try:
            args = [folded_values[name] for name in node.present_inputs]
            results = handler(node, args)
        except Exception:  # noqa: BLE001 - folding is best-effort
            continue
        out_names = [o for o in node.outputs if o]
        if any(np.asarray(r).size > max_folded_elements for r in results):
            continue
        for name, value in zip(out_names, results):
            value = np.asarray(value)
            folded_values[name] = value
            known.add(name)
            # Graph outputs must keep being produced by a node, so do not
            # convert them into initializers.
            if name not in graph_outputs:
                graph.add_initializer(name, value)
        if all(name in graph.initializers or name in graph_outputs for name in out_names):
            folded_nodes += 1

    if folded_nodes:
        _strip_redundant_constant_inputs(graph)
    return folded_nodes


def _strip_redundant_constant_inputs(graph: Graph) -> None:
    """After folding, nodes may read values that are now initializers.

    Nothing to rewrite — reads resolve to the initializer directly — but any
    node whose *outputs* are all initializers is now dead; DCE removes it.
    This helper only exists to keep the invariant that an initializer is
    never also produced by a live node feeding a graph output, which the
    validator would flag.
    """
    producers = graph.producers()
    doomed: List[str] = []
    for name in graph.initializers:
        producer = producers.get(name)
        if producer is not None:
            # The producing node's output is now available as an initializer;
            # the node is redundant. Mark it for removal if all its outputs
            # are initializers.
            if all((not out) or out in graph.initializers for out in producer.outputs):
                doomed.append(producer.name)
    if doomed:
        graph.remove_nodes(set(doomed))


class ConstantFoldingPass(GraphPass):
    """Pass-manager wrapper around :func:`fold_constants`."""

    name = "constant-folding"

    def __init__(self, max_folded_elements: int = _MAX_FOLDED_ELEMENTS) -> None:
        super().__init__()
        self.max_folded_elements = max_folded_elements

    def run(self, graph: Graph) -> int:
        return fold_constants(graph, self.max_folded_elements)
