"""Constant propagation (the paper's "Horizontal branch reduction").

Constant propagation subsumes constant folding and additionally simplifies
the shape-manipulation chains (Shape -> Gather -> Concat -> Reshape, grid
generation in YOLO, head-split bookkeeping in BERT, path-dropout masks in
NASNet) whose inputs are static.  After propagation those chains are fully
materialized as initializers and dead-code elimination deletes the nodes,
which is exactly the effect Fig. 6 shows for YOLO.
"""

from __future__ import annotations

from typing import Dict, Set

import numpy as np

from repro.ir.model import Graph
from repro.passes.constant_folding import fold_constants
from repro.passes.pass_manager import GraphPass


def _materialize_static_shape_ops(graph: Graph) -> int:
    """Replace ``Shape`` nodes over statically-shaped values with constants.

    ``fold_constants`` can only fold a ``Shape`` node when its *input data*
    is constant, but the shape of an activation is known statically whenever
    shape inference has resolved it — the value itself need not be constant.
    Converting those nodes unlocks folding of the downstream chain.
    """
    changed = 0
    graph_outputs = set(graph.output_names)
    for node in list(graph.nodes):
        if node.op_type != "Shape":
            continue
        out_name = node.primary_output
        if out_name in graph.initializers or out_name in graph_outputs:
            continue
        info = graph.tensor_info(node.inputs[0])
        if info is None or info.shape is None or any(d is None for d in info.shape):
            continue
        graph.add_initializer(out_name, np.asarray(info.shape, dtype=np.int64))
        graph.remove_nodes([node.name])
        changed += 1
    return changed


def propagate_constants(graph: Graph) -> int:
    """Run shape materialization + constant folding; returns change count."""
    from repro.ir.shape_inference import infer_shapes

    # Refresh value_info so newly created values from earlier passes are known.
    infer_shapes(graph)
    changed = _materialize_static_shape_ops(graph)
    changed += fold_constants(graph)
    return changed


class ConstantPropagationPass(GraphPass):
    """Pass-manager wrapper around :func:`propagate_constants`."""

    name = "constant-propagation"

    def run(self, graph: Graph) -> int:
        return propagate_constants(graph)
