"""Graph-pruning optimization passes.

The paper leverages onnxruntime to perform constant propagation and
dead-code elimination before clustering (Section III-C): "If the Cluster
Merging Pass is viewed as a Vertical branch compression strategy, then
constant propagation is a Horizontal branch reduction strategy."  This
package implements those transformations directly on the IR:

* :class:`~repro.passes.pass_manager.PassManager` — ordered pass pipeline
  with fixpoint iteration,
* :func:`~repro.passes.constant_folding.fold_constants` — evaluate
  subgraphs whose inputs are all initializers/constants using the numpy
  runtime and replace them with initializers,
* :func:`~repro.passes.constant_propagation.propagate_constants` —
  constant folding plus simplification of shape-manipulation chains,
* :func:`~repro.passes.dead_code_elimination.eliminate_dead_code` — drop
  nodes that cannot reach any graph output,
* :func:`~repro.passes.identity_elimination.eliminate_identities` — remove
  Identity / inference-mode Dropout / no-op Reshape-Transpose nodes.

:func:`optimize_model` applies the paper's standard CP + DCE recipe.
"""

from repro.passes.pass_manager import GraphPass, PassManager, PassResult
from repro.passes.constant_folding import fold_constants, ConstantFoldingPass
from repro.passes.constant_propagation import propagate_constants, ConstantPropagationPass
from repro.passes.dead_code_elimination import eliminate_dead_code, DeadCodeEliminationPass
from repro.passes.identity_elimination import eliminate_identities, IdentityEliminationPass

from typing import Tuple

from repro.ir.model import Model


def optimize_model(model: Model, max_iterations: int = 8) -> Tuple[Model, dict]:
    """Apply the paper's CP + DCE pruning recipe to a model.

    Returns ``(optimized_model, stats)`` where ``stats`` summarizes the node
    reduction (used by the Table III benchmark).  The input model is not
    modified.
    """
    manager = PassManager(
        [
            IdentityEliminationPass(),
            ConstantPropagationPass(),
            DeadCodeEliminationPass(),
        ],
        max_iterations=max_iterations,
    )
    optimized = model.copy()
    stats = manager.run(optimized.graph)
    summary = {
        "nodes_before": model.num_nodes,
        "nodes_after": optimized.num_nodes,
        "nodes_removed": model.num_nodes - optimized.num_nodes,
        "iterations": stats.iterations,
        "per_pass": stats.per_pass_changes,
    }
    return optimized, summary


__all__ = [
    "GraphPass",
    "PassManager",
    "PassResult",
    "fold_constants",
    "ConstantFoldingPass",
    "propagate_constants",
    "ConstantPropagationPass",
    "eliminate_dead_code",
    "DeadCodeEliminationPass",
    "eliminate_identities",
    "IdentityEliminationPass",
    "optimize_model",
]
