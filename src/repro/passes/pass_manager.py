"""Pass manager: ordered graph passes iterated to a fixpoint."""

from __future__ import annotations

import abc
import dataclasses
import time
from typing import Dict, List, Sequence

from repro.ir.model import Graph
from repro.ir.validation import validate_graph


class GraphPass(abc.ABC):
    """Base class for graph-transforming passes.

    A pass mutates the graph in place and reports how many changes it made;
    the manager uses the change count to decide when a fixpoint is reached.
    """

    #: Human-readable pass name (defaults to the class name).
    name: str = ""

    def __init__(self) -> None:
        if not self.name:
            self.name = type(self).__name__

    @abc.abstractmethod
    def run(self, graph: Graph) -> int:
        """Apply the pass to ``graph`` in place; return the number of changes."""


@dataclasses.dataclass
class PassResult:
    """Summary of one :meth:`PassManager.run` invocation."""

    iterations: int
    total_changes: int
    per_pass_changes: Dict[str, int]
    elapsed_s: float


class PassManager:
    """Run an ordered list of passes repeatedly until nothing changes.

    Parameters
    ----------
    passes:
        The passes, applied in order within each iteration.
    max_iterations:
        Safety bound on fixpoint iterations.
    validate:
        Re-validate the graph after every iteration (cheap insurance that a
        pass never leaves the IR structurally broken).
    """

    def __init__(
        self,
        passes: Sequence[GraphPass],
        max_iterations: int = 8,
        validate: bool = True,
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.passes: List[GraphPass] = list(passes)
        self.max_iterations = max_iterations
        self.validate = validate

    def run(self, graph: Graph) -> PassResult:
        """Apply all passes to ``graph`` until a fixpoint (or the iteration cap)."""
        start = time.perf_counter()
        per_pass: Dict[str, int] = {p.name: 0 for p in self.passes}
        total = 0
        iterations = 0
        for _ in range(self.max_iterations):
            iterations += 1
            changed_this_round = 0
            for p in self.passes:
                changes = p.run(graph)
                per_pass[p.name] = per_pass.get(p.name, 0) + changes
                changed_this_round += changes
            if self.validate:
                validate_graph(graph, check_schemas=False)
            total += changed_this_round
            if changed_this_round == 0:
                break
        return PassResult(
            iterations=iterations,
            total_changes=total,
            per_pass_changes=per_pass,
            elapsed_s=time.perf_counter() - start,
        )
