"""HLFET-style greedy list scheduling baseline.

Highest-Level-First-with-Estimated-Times assigns, at every scheduling step,
the ready node with the largest ``distance_to_end`` (its "level") to the
earliest-available core.  It produces a core assignment rather than linear
clusters, and serves two purposes here: a classical point of comparison for
the Linear Clustering results, and an independent cross-check of the
schedule simulator (a correct simulator must report a makespan no smaller
than the critical path and no larger than the sequential time).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Tuple

from repro.graph.critical_path import compute_distance_to_end
from repro.graph.dataflow import DataflowGraph


@dataclasses.dataclass
class ListScheduleResult:
    """Outcome of one list-scheduling run."""

    model_name: str
    num_cores: int
    makespan: float
    sequential_time: float
    core_of: Dict[str, int]
    node_start: Dict[str, float]
    node_finish: Dict[str, float]

    @property
    def speedup(self) -> float:
        """Sequential time over makespan."""
        return self.sequential_time / self.makespan if self.makespan > 0 else 1.0


def list_schedule(
    dfg: DataflowGraph,
    num_cores: int = 12,
    message_latency: float = 0.0,
    cost_provider: Optional[Mapping[str, float]] = None,
) -> ListScheduleResult:
    """Schedule a dataflow graph on ``num_cores`` cores with HLFET priorities."""
    if num_cores < 1:
        raise ValueError("num_cores must be >= 1")

    def duration(name: str) -> float:
        if cost_provider is not None and name in cost_provider:
            return max(float(cost_provider[name]), 0.0)
        return max(float(dfg.node(name).cost), 0.0)

    dist = compute_distance_to_end(dfg)
    indegree = {n: dfg.in_degree(n) for n in dfg.node_names()}
    ready = [n for n, d in indegree.items() if d == 0]
    core_available = [0.0] * num_cores
    node_start: Dict[str, float] = {}
    node_finish: Dict[str, float] = {}
    core_of: Dict[str, int] = {}

    while ready:
        # Highest level (largest distance to end) first; deterministic ties.
        ready.sort(key=lambda n: (-dist[n], dfg.node(n).index))
        node = ready.pop(0)

        dep_ready = 0.0
        for edge in dfg.in_edges(node):
            arrival = node_finish[edge.src]
            if core_of.get(edge.src) is not None:
                # Charge the message latency only when the producer ran on a
                # different core than the one we are about to pick; since the
                # core is chosen below, approximate with the cheapest option.
                arrival += 0.0
            dep_ready = max(dep_ready, arrival)

        core = min(range(num_cores), key=lambda c: max(core_available[c], dep_ready))
        start = max(core_available[core], dep_ready)
        if message_latency > 0.0:
            # Re-add latency for producers on other cores now that we know the core.
            for edge in dfg.in_edges(node):
                if core_of[edge.src] != core:
                    start = max(start, node_finish[edge.src] + message_latency)
        finish = start + duration(node)
        node_start[node] = start
        node_finish[node] = finish
        core_available[core] = finish
        core_of[node] = core

        for succ in dfg.successors(node):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)

    if len(node_finish) != len(dfg):
        raise RuntimeError(f"list scheduling failed to schedule all nodes of {dfg.name!r}")

    sequential = sum(duration(n) for n in dfg.node_names())
    return ListScheduleResult(
        model_name=dfg.name,
        num_cores=num_cores,
        makespan=max(node_finish.values()) if node_finish else 0.0,
        sequential_time=sequential,
        core_of=core_of,
        node_start=node_start,
        node_finish=node_finish,
    )
