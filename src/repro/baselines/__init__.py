"""Baseline schedulers the paper compares against (or that contextualize it).

* :mod:`~repro.baselines.sequential` — the single-cluster "do nothing"
  baseline (all speedups in the paper are relative to sequential execution).
* :mod:`~repro.baselines.greedy_list_scheduler` — a classic HLFET-style
  list scheduler using ``distance_to_end`` as the node priority; a useful
  sanity baseline for the schedule simulator.
* :mod:`~repro.baselines.ios_scheduler` — a reimplementation of the
  Inter-Operator Scheduler of Ding et al. (IOS), the dynamic-programming
  comparator of Table VIII.  IOS searches over *stages* (groups of
  operators executed concurrently) with an exponential-in-width DP, which
  is why its compile time is orders of magnitude larger than Ramiel's
  linear clustering.
"""

from repro.baselines.sequential import sequential_clustering
from repro.baselines.greedy_list_scheduler import list_schedule, ListScheduleResult
from repro.baselines.ios_scheduler import IOSScheduler, IOSResult, ios_schedule

__all__ = [
    "sequential_clustering",
    "list_schedule",
    "ListScheduleResult",
    "IOSScheduler",
    "IOSResult",
    "ios_schedule",
]
