"""Reimplementation of the Inter-Operator Scheduler (IOS, Ding et al. 2021).

IOS partitions a CNN's dataflow graph into a sequence of *stages*; within a
stage the member operators execute concurrently (inter-operator
parallelism), and stages execute one after another.  The optimal staging is
found with a dynamic program over subsets of ready operators.  The search is
exponential in the width of the graph, which is why the paper's Table VIII
reports compile times of minutes (Squeezenet/Inception) to 90 minutes
(NASNet) for IOS, versus seconds for Ramiel's linear clustering — while the
resulting speedups are comparable (IOS slightly ahead on Squeezenet, Ramiel
ahead on NASNet).

Like the published system, this implementation first splits the network
into sequential *blocks* (IOS does this at articulation points) and then
runs the subset dynamic program inside each block, with a pruning window on
the ready set.  A hard cap on explored DP states guards against pathological
blow-up on graphs far wider than IOS's CNN benchmarks; when the cap is hit
the remaining nodes of the block are grouped greedily.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.graph.dataflow import DataflowGraph
from repro.graph.traversal import topological_sort


@dataclasses.dataclass
class IOSResult:
    """Outcome of one IOS scheduling run."""

    model_name: str
    stages: List[List[str]]
    makespan: float
    sequential_time: float
    compile_time_s: float
    num_cores: int
    dp_states: int

    @property
    def speedup(self) -> float:
        """Sequential time over staged makespan."""
        return self.sequential_time / self.makespan if self.makespan > 0 else 1.0

    def as_row(self) -> dict:
        """Table-VIII-shaped row."""
        return {
            "model": self.model_name,
            "stages": len(self.stages),
            "speedup": round(self.speedup, 2),
            "compile_time_s": round(self.compile_time_s, 2),
        }


class IOSScheduler:
    """Dynamic-programming inter-operator stage scheduler.

    Parameters
    ----------
    num_cores:
        Concurrency available inside one stage.
    stage_overhead:
        Fixed cost added per stage (kernel-launch / synchronization cost in
        the original system; process synchronization here).
    max_group_size:
        Maximum number of operators placed in one stage.
    max_ready_window:
        Only the first ``max_ready_window`` ready operators (by priority) are
        considered for grouping at each DP state — the pruning knob of the
        original implementation.
    block_size:
        Number of consecutive (topologically ordered) nodes optimized
        jointly by one DP instance.
    max_states_per_block:
        Hard cap on memoized DP states per block; greedy grouping finishes
        the block when the cap is exceeded.
    """

    def __init__(
        self,
        num_cores: int = 12,
        stage_overhead: float = 1.0,
        max_group_size: int = 5,
        max_ready_window: int = 8,
        block_size: int = 16,
        max_states_per_block: int = 2_000,
        cost_provider: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.num_cores = num_cores
        self.stage_overhead = stage_overhead
        self.max_group_size = max_group_size
        self.max_ready_window = max_ready_window
        self.block_size = block_size
        self.max_states_per_block = max_states_per_block
        self.cost_provider = cost_provider

    # ------------------------------------------------------------------
    def _duration(self, dfg: DataflowGraph, name: str) -> float:
        if self.cost_provider is not None and name in self.cost_provider:
            return max(float(self.cost_provider[name]), 0.0)
        return max(float(dfg.node(name).cost), 0.0)

    def _stage_cost(self, dfg: DataflowGraph, group: Sequence[str]) -> float:
        """Cost of one stage: greedy makespan of the group on ``num_cores`` cores."""
        durations = sorted((self._duration(dfg, n) for n in group), reverse=True)
        cores = [0.0] * min(self.num_cores, max(len(durations), 1))
        for d in durations:
            idx = min(range(len(cores)), key=cores.__getitem__)
            cores[idx] += d
        return max(cores) + self.stage_overhead


    # ------------------------------------------------------------------
    def _schedule_block(
        self,
        dfg: DataflowGraph,
        block: List[str],
        preds: Dict[str, List[str]],
        position: Dict[str, int],
    ) -> Tuple[List[List[str]], float, int]:
        """Optimal (capped) staging of one block via subset DP."""
        block_set = set(block)
        total = len(block)
        memo: Dict[FrozenSet[str], Tuple[float, Tuple[str, ...]]] = {}
        states = 0

        def ready_ops(done: FrozenSet[str]) -> List[str]:
            ready = [n for n in block
                     if n not in done
                     and all(p in done or p not in block_set for p in preds[n])]
            ready.sort(key=lambda n: (-self._duration(dfg, n), position[n]))
            return ready

        def greedy_tail(done: FrozenSet[str]) -> Tuple[float, List[List[str]]]:
            stages: List[List[str]] = []
            cost = 0.0
            current = set(done)
            while len(current) < total:
                ready = [n for n in block
                         if n not in current
                         and all(p in current or p not in block_set for p in preds[n])]
                ready.sort(key=lambda n: (-self._duration(dfg, n), position[n]))
                group = ready[: min(self.max_group_size, self.num_cores, len(ready))]
                stages.append(group)
                cost += self._stage_cost(dfg, group)
                current.update(group)
            return cost, stages

        use_greedy_only = False

        def solve(done: FrozenSet[str]) -> Tuple[float, Tuple[str, ...]]:
            nonlocal states, use_greedy_only
            if len(done) == total:
                return 0.0, ()
            cached = memo.get(done)
            if cached is not None:
                return cached
            if use_greedy_only or states >= self.max_states_per_block:
                use_greedy_only = True
                cost, stages = greedy_tail(done)
                result = (cost, tuple(stages[0]) if stages else ())
                memo[done] = result
                return result
            states += 1
            window = ready_ops(done)[: self.max_ready_window]
            best_cost = float("inf")
            best_group: Tuple[str, ...] = ()
            for k in range(1, min(self.max_group_size, len(window)) + 1):
                for combo in itertools.combinations(window, k):
                    cost = self._stage_cost(dfg, combo)
                    rest_cost, _ = solve(done | frozenset(combo))
                    if cost + rest_cost < best_cost:
                        best_cost = cost + rest_cost
                        best_group = combo
            memo[done] = (best_cost, best_group)
            return memo[done]

        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, total * 8 + 1000))
        try:
            stages: List[List[str]] = []
            makespan = 0.0
            done: FrozenSet[str] = frozenset()
            while len(done) < total:
                _, group = solve(done)
                if not group:
                    remaining = [n for n in block if n not in done]
                    group = tuple(remaining[:1])
                stages.append(list(group))
                makespan += self._stage_cost(dfg, group)
                done = done | frozenset(group)
        finally:
            sys.setrecursionlimit(old_limit)
        return stages, makespan, states

    # ------------------------------------------------------------------
    def schedule(self, dfg: DataflowGraph) -> IOSResult:
        """Compute a staged schedule for the whole graph."""
        start_time = time.perf_counter()
        order = topological_sort(dfg)
        position = {name: i for i, name in enumerate(order)}
        preds: Dict[str, List[str]] = {n: dfg.predecessors(n) for n in order}

        stages: List[List[str]] = []
        makespan = 0.0
        dp_states = 0
        for begin in range(0, len(order), self.block_size):
            block = order[begin:begin + self.block_size]
            block_stages, block_cost, block_states = self._schedule_block(
                dfg, block, preds, position)
            stages.extend(block_stages)
            makespan += block_cost
            dp_states += block_states

        sequential = sum(self._duration(dfg, n) for n in order)
        return IOSResult(
            model_name=dfg.name,
            stages=stages,
            makespan=makespan,
            sequential_time=sequential,
            compile_time_s=time.perf_counter() - start_time,
            num_cores=self.num_cores,
            dp_states=dp_states,
        )


def ios_schedule(dfg: DataflowGraph, **kwargs) -> IOSResult:
    """Convenience wrapper: schedule ``dfg`` with an :class:`IOSScheduler`."""
    return IOSScheduler(**kwargs).schedule(dfg)
