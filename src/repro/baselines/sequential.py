"""The sequential baseline: a single cluster containing every node."""

from __future__ import annotations

from repro.clustering.cluster import Cluster, Clustering
from repro.graph.critical_path import compute_distance_to_end
from repro.graph.dataflow import DataflowGraph
from repro.graph.traversal import topological_sort


def sequential_clustering(dfg: DataflowGraph) -> Clustering:
    """Place every node in one cluster, in topological order.

    Simulating this clustering with zero per-cluster overhead reproduces the
    sequential execution time that all the paper's speedups are measured
    against.
    """
    order = topological_sort(dfg)
    dist = compute_distance_to_end(dfg)
    return Clustering(dfg=dfg, clusters=[Cluster(0, order)], distance_to_end=dist)
