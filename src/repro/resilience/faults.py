"""Deterministic fault injection for the execution and serving stack.

Self-healing code is only trustworthy if its failure paths run in CI, and
failure paths are exactly the code you cannot reach with well-formed
inputs.  A :class:`FaultInjector` holds a list of :class:`FaultSpec`\\ s —
each naming a *site* (a string like ``"worker.execute"``), a fault *kind*,
and a deterministic schedule (skip the first ``after`` matching calls,
then fire ``times`` times, optionally only for one worker index) — and is
threaded through the dispatch paths:

* :class:`~repro.runtime.worker_pool.WarmExecutorPool` asks the injector
  for a *directive* per dispatched job and ships it inside the job tuple;
  the worker applies it (crash, hang, slow, exception, corrupt) on its own
  side of the process boundary.
* In-process call sites invoke :func:`FaultInjector.fire` directly, which
  raises/sleeps in place.

The harness is **zero-cost when disabled**: an unattached pool dispatches
``None`` in the directive slot and workers pay one ``is not None`` check
(gated at parity in ``benchmarks/test_observability_overhead.py``), and
in-process sites guard on the module-global :func:`active_injector` being
``None``.

Determinism: schedules are counter-based (``after`` / ``times``) so a
chaos test replays bit-for-bit; probabilistic specs draw from a private
``random.Random(seed)`` owned by the injector, never the global RNG.

Fault kinds
-----------
``"crash"``
    The worker dies abruptly — ``os._exit`` for process workers (no
    cleanup handlers, like a segfault or OOM kill), a bare ``return`` for
    thread workers (the thread vanishes without replying).
``"hang"``
    The worker sleeps for ``seconds`` *without replying* for this job —
    what a deadlocked channel ``get`` looks like from the coordinator.
``"slow"``
    The worker sleeps for ``seconds``, then executes and replies
    normally — a degraded-but-alive worker (tests deadline budgets).
``"exc"``
    The worker raises ``RuntimeError(message)`` inside its execute path —
    the traceback ships home across the process boundary.
``"corrupt"``
    The worker replies with a malformed message on the result channel —
    tests the collector's protocol hardening.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "active_injector",
    "apply_worker_fault",
    "install",
    "uninstall",
]

#: the supported fault kinds, in documentation order
FAULT_KINDS: Tuple[str, ...] = ("crash", "hang", "slow", "exc", "corrupt")


class InjectedFault(RuntimeError):
    """Raised by ``"exc"`` faults (and in-process ``fire`` sites)."""


@dataclass
class FaultSpec:
    """One deterministic fault schedule.

    Parameters
    ----------
    site:
        Dispatch-site name the spec matches (e.g. ``"worker.execute"``).
    kind:
        One of :data:`FAULT_KINDS`.
    times:
        How many matching calls fire the fault (``-1`` = every one).
    after:
        Skip this many matching calls before the first firing.
    worker:
        Restrict the fault to one worker/cluster index (``None`` = any).
    probability:
        Fire with this probability (drawn from the injector's seeded RNG)
        instead of unconditionally.  Schedules stay deterministic for a
        fixed seed.
    seconds:
        Sleep duration for ``"hang"`` / ``"slow"`` faults.
    message:
        Exception text for ``"exc"`` faults.
    """

    site: str
    kind: str
    times: int = 1
    after: int = 0
    worker: Optional[int] = None
    probability: float = 1.0
    seconds: float = 0.05
    message: str = "injected fault"
    #: matching calls seen so far (mutated by the injector, under its lock)
    seen: int = field(default=0, repr=False)
    #: times the spec actually fired
    fired: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")


class FaultInjector:
    """Decides, deterministically, which dispatches suffer which faults.

    Thread-safe: the serving engine's micro-batcher threads and a pool
    supervisor may consult one injector concurrently.  Construct with the
    specs (or :meth:`add`), attach via
    ``WarmExecutorPool.set_fault_injector`` /
    ``ResilienceConfig(fault_injector=...)`` — or :func:`install` it
    globally for in-process ``fire`` sites.
    """

    def __init__(self, specs: Optional[List[FaultSpec]] = None,
                 seed: int = 0) -> None:
        self._specs: List[FaultSpec] = list(specs or [])
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._fired: Dict[Tuple[str, str], int] = {}

    def add(self, spec: FaultSpec) -> FaultSpec:
        """Append one spec; returns it (counters live on the spec)."""
        with self._lock:
            self._specs.append(spec)
        return spec

    def clear(self) -> None:
        """Drop every spec (the injector stays attached but inert)."""
        with self._lock:
            self._specs.clear()

    # ------------------------------------------------------------------
    def directive(self, site: str,
                  worker: Optional[int] = None) -> Optional[Tuple]:
        """The fault directive for one dispatch, or ``None``.

        Coordinator-side: called once per (site, worker) dispatch; the
        returned tuple is small and picklable so it can ride a job tuple
        across the process boundary.  At most one spec fires per call
        (first match wins, in insertion order).
        """
        with self._lock:
            for spec in self._specs:
                if spec.site != site:
                    continue
                if spec.worker is not None and spec.worker != worker:
                    continue
                spec.seen += 1
                if spec.seen <= spec.after:
                    continue
                if spec.times >= 0 and spec.fired >= spec.times:
                    continue
                if spec.probability < 1.0 and \
                        self._rng.random() >= spec.probability:
                    continue
                spec.fired += 1
                key = (site, spec.kind)
                self._fired[key] = self._fired.get(key, 0) + 1
                if spec.kind in ("hang", "slow"):
                    return (spec.kind, spec.seconds)
                if spec.kind == "exc":
                    return (spec.kind, spec.message)
                return (spec.kind,)
        return None

    def fire(self, site: str, worker: Optional[int] = None) -> None:
        """Apply a fault in-process at ``site`` (raise or sleep in place).

        ``"crash"`` and ``"corrupt"`` make no sense in-process and map to
        :class:`InjectedFault` as well.
        """
        directive = self.directive(site, worker)
        if directive is None:
            return
        kind = directive[0]
        if kind == "slow":
            time.sleep(directive[1])
            return
        if kind == "hang":
            time.sleep(directive[1])
            raise InjectedFault(f"injected hang at {site!r} "
                                f"({directive[1]}s)")
        message = directive[1] if len(directive) > 1 else f"injected {kind}"
        raise InjectedFault(f"{message} (site={site!r})")

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """``{"site:kind": fired_count}`` for every fault that fired."""
        with self._lock:
            return {f"{site}:{kind}": count
                    for (site, kind), count in sorted(self._fired.items())}


# ---------------------------------------------------------------------------
# Worker-side application (runs inside pool workers, both backends)
# ---------------------------------------------------------------------------
def apply_worker_fault(directive: Tuple, *, is_process: bool) -> str:
    """Apply a shipped directive inside a worker; returns the next action.

    Returns one of:

    * ``"run"`` — continue executing the job normally (``"slow"`` slept
      first; ``"exc"`` raises from here instead),
    * ``"silent"`` — do not reply for this job (``"hang"``, and thread
      ``"crash"`` where the caller must exit its loop),
    * ``"corrupt"`` — reply with a malformed message.

    ``"crash"`` on a process worker never returns (``os._exit``).
    """
    kind = directive[0]
    if kind == "crash":
        if is_process:
            import os
            os._exit(23)
        return "silent"
    if kind == "hang":
        time.sleep(directive[1])
        return "silent"
    if kind == "slow":
        time.sleep(directive[1])
        return "run"
    if kind == "exc":
        raise InjectedFault(directive[1])
    if kind == "corrupt":
        return "corrupt"
    raise InjectedFault(f"unknown fault directive {directive!r}")


# ---------------------------------------------------------------------------
# Module-global installation for in-process fire() sites
# ---------------------------------------------------------------------------
_ACTIVE: Optional[FaultInjector] = None


def active_injector() -> Optional[FaultInjector]:
    """The globally installed injector, or ``None`` (the common case)."""
    return _ACTIVE


def install(injector: FaultInjector) -> FaultInjector:
    """Install ``injector`` as the process-global one; returns it."""
    global _ACTIVE
    _ACTIVE = injector
    return injector


def uninstall() -> None:
    """Remove the process-global injector."""
    global _ACTIVE
    _ACTIVE = None
