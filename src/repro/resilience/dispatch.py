"""Resilient dispatch: retry + recover, circuit breaking, degradation.

This is the policy layer the serving engine threads between a request
batch and the executor that runs it.  A :class:`ResilientDispatcher`
wraps one *primary* dispatch callable (a warm-pool batch run) with:

1. a :class:`~repro.resilience.policy.RetryPolicy` — failed or timed-out
   batches are re-dispatched (after an injectable ``recover`` hook, e.g.
   ``Session.recover()``) so callers' futures only fail once the policy
   is exhausted;
2. a :class:`~repro.resilience.breaker.CircuitBreaker` — an executor that
   keeps failing *after its retries* trips the breaker, and while it is
   open traffic flows to the *fallback* (the serving engine supplies a
   lazily-built in-process ``"plan"`` session) instead of hammering the
   broken primary; half-open probes restore the fast path;
3. counters for every decision (retries, degraded runs, breaker opens),
   visible in :meth:`stats` and a ``MetricsRegistry`` via
   :meth:`publish_metrics`.

:class:`ResilienceConfig` is the user-facing knob bundle
(``EngineConfig.resilience``); ``None`` — the default — keeps the legacy
fail-fast serving behavior bit-for-bit.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.resilience.breaker import BreakerOpen, CircuitBreaker
from repro.resilience.policy import RetryPolicy

__all__ = ["ResilienceConfig", "ResilientDispatcher"]


@dataclass(frozen=True)
class ResilienceConfig:
    """Fault-tolerance knobs for a serving engine (all layers optional).

    Parameters
    ----------
    retry:
        Policy applied around each primary dispatch; ``max_attempts=1``
        disables re-dispatch while keeping breaker/supervision.
    breaker_threshold / breaker_cooldown_s / breaker_half_open_probes:
        Artifact-level circuit breaker: consecutive *post-retry* failures
        before opening, seconds before half-open probing, and how many
        concurrent probes to admit.
    degrade:
        When True (and the artifact has a degraded fallback — pool- and
        process-backed artifacts fall back to the in-process ``"plan"``
        executor), an open breaker serves degraded instead of failing.
    supervise:
        Attach a :class:`~repro.resilience.supervisor.PoolSupervisor` to
        pool-backed sessions so dead/wedged workers are detected and
        respawned in seconds.
    heartbeat_interval_s / hang_timeout_s:
        Supervisor poll cadence and the silent-while-running threshold
        after which a worker is declared wedged.
    fault_injector:
        Optional deterministic :class:`~repro.resilience.faults.FaultInjector`
        attached to pool dispatch for chaos testing.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 5.0
    breaker_half_open_probes: int = 1
    degrade: bool = True
    supervise: bool = True
    heartbeat_interval_s: float = 0.25
    hang_timeout_s: float = 30.0
    fault_injector: Optional[object] = None


class ResilientDispatcher:
    """Retry/breaker/degradation wrapper around one dispatch callable.

    Parameters
    ----------
    primary:
        The fast-path dispatch, called with the caller's positional
        arguments (the serving engine passes the stacked batch feed).
    config:
        The :class:`ResilienceConfig` supplying policy and breaker knobs.
    recover:
        Optional hook run between retry attempts (e.g.
        ``Session.recover``); a recovery failure aborts the retry loop
        and propagates.
    fallback:
        Optional degraded dispatch used while the breaker is open (and
        as last resort when the primary exhausts its retries).  Called
        with the same arguments as ``primary``.
    name:
        Label for metrics/stats.
    """

    def __init__(self, primary: Callable, config: ResilienceConfig,
                 recover: Optional[Callable[[], None]] = None,
                 fallback: Optional[Callable] = None,
                 name: str = "dispatch") -> None:
        self.name = name
        self.config = config
        self._primary = primary
        self._recover = recover
        self._fallback = fallback
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_threshold,
            cooldown_s=config.breaker_cooldown_s,
            half_open_probes=config.breaker_half_open_probes)
        self._lock = threading.Lock()
        self._retries = 0
        self._recoveries = 0
        self._degraded_runs = 0
        self._primary_runs = 0
        self._exhausted = 0

    # ------------------------------------------------------------------
    def __call__(self, *args, **kwargs):
        """Dispatch under the full policy stack; returns the result.

        Raises :class:`~repro.resilience.breaker.BreakerOpen` when the
        breaker is open and no fallback is configured (or degradation is
        disabled); otherwise raises the primary's last failure once every
        layer is exhausted and no fallback can serve.
        """
        can_degrade = self.config.degrade and self._fallback is not None
        if not self.breaker.allow():
            if can_degrade:
                return self._run_fallback(*args, **kwargs)
            raise BreakerOpen(
                f"{self.name}: circuit breaker is open and no degraded "
                "fallback is configured")
        try:
            result = self.config.retry.call(
                lambda: self._run_primary(*args, **kwargs),
                on_retry=self._on_retry)
        except Exception:
            self.breaker.record_failure()
            with self._lock:
                self._exhausted += 1
            if can_degrade:
                return self._run_fallback(*args, **kwargs)
            raise
        self.breaker.record_success()
        return result

    def _run_primary(self, *args, **kwargs):
        with self._lock:
            self._primary_runs += 1
        return self._primary(*args, **kwargs)

    def _run_fallback(self, *args, **kwargs):
        with self._lock:
            self._degraded_runs += 1
        return self._fallback(*args, **kwargs)

    def _on_retry(self, attempt: int, exc: BaseException) -> None:
        with self._lock:
            self._retries += 1
        if self._recover is not None:
            self._recover()
            with self._lock:
                self._recoveries += 1

    # ------------------------------------------------------------------
    def stats(self) -> Dict:
        """Dispatch decision counters plus the breaker's state."""
        with self._lock:
            out = {
                "primary_runs": self._primary_runs,
                "retries": self._retries,
                "recoveries": self._recoveries,
                "degraded_runs": self._degraded_runs,
                "exhausted": self._exhausted,
            }
        out["breaker"] = self.breaker.stats()
        return out

    def publish_metrics(self, registry,
                        labels: Optional[Dict[str, str]] = None) -> None:
        """Mirror the dispatcher's counters into a ``MetricsRegistry``."""
        labels = dict(labels) if labels else {}
        gauge = registry.gauge
        _STATES = {"closed": 0, "half-open": 1, "open": 2}

        def collect(_registry) -> None:
            stats = self.stats()
            gauge("resilience_retries_total",
                  "Batch dispatches retried after a primary failure",
                  labels=labels).set(stats["retries"])
            gauge("resilience_recoveries_total",
                  "Session recoveries run between retry attempts",
                  labels=labels).set(stats["recoveries"])
            gauge("resilience_degraded_runs_total",
                  "Batches served by the degraded fallback executor",
                  labels=labels).set(stats["degraded_runs"])
            gauge("resilience_exhausted_total",
                  "Dispatches that exhausted their whole retry budget",
                  labels=labels).set(stats["exhausted"])
            gauge("resilience_breaker_opens_total",
                  "Times the circuit breaker tripped open",
                  labels=labels).set(stats["breaker"]["opens"])
            gauge("resilience_breaker_state",
                  "Breaker state (0=closed, 1=half-open, 2=open)",
                  labels=labels).set(
                      _STATES.get(stats["breaker"]["state"], -1))

        registry.register_collector(collect)
