"""An artifact-level circuit breaker with half-open recovery probes.

Retries heal transient faults; a *persistently* failing executor (workers
that die on every dispatch, a module that wedges its channels) would make
every request pay the full retry budget before failing.  A
:class:`CircuitBreaker` sits in front of such an executor:

* **closed** — traffic flows; consecutive failures are counted and any
  success resets the count;
* **open** — after ``failure_threshold`` consecutive failures the breaker
  trips: :meth:`allow` returns ``False`` and the caller routes traffic to
  its degraded fallback (the serving engine uses the in-process ``"plan"``
  executor) without touching the broken primary;
* **half-open** — once ``cooldown_s`` has elapsed, :meth:`allow` lets a
  bounded number of *probe* dispatches through; a probe success closes the
  breaker (restoring the fast path), a probe failure re-opens it and
  restarts the cooldown.

Thread-safe; the clock is injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict

__all__ = ["BreakerOpen", "CircuitBreaker"]


class BreakerOpen(RuntimeError):
    """Raised by callers that have no fallback when the breaker is open."""


class CircuitBreaker:
    """Consecutive-failure circuit breaker (closed / open / half-open)."""

    def __init__(self, failure_threshold: int = 3, cooldown_s: float = 5.0,
                 half_open_probes: int = 1,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_inflight = 0
        self._opens = 0
        self._successes = 0
        self._failures = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"`` (cooldown-aware)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def allow(self) -> bool:
        """Whether the next dispatch may use the primary executor.

        In half-open state this *admits a probe* (up to
        ``half_open_probes`` concurrently); the caller must report the
        probe's outcome via :meth:`record_success` /
        :meth:`record_failure`.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == "closed":
                return True
            if self._state == "half-open" and \
                    self._probes_inflight < self.half_open_probes:
                self._probes_inflight += 1
                return True
            return False

    def record_success(self) -> None:
        """A primary dispatch succeeded; closes a half-open breaker."""
        with self._lock:
            self._successes += 1
            self._consecutive_failures = 0
            if self._state != "closed":
                self._state = "closed"
            self._probes_inflight = 0

    def record_failure(self) -> None:
        """A primary dispatch failed (after its retries, if any)."""
        with self._lock:
            self._failures += 1
            self._consecutive_failures += 1
            if self._state == "half-open":
                self._trip()  # the probe failed: back to open, new cooldown
            elif (self._state == "closed"
                    and self._consecutive_failures >= self.failure_threshold):
                self._trip()

    # ------------------------------------------------------------------
    def _trip(self) -> None:
        self._state = "open"
        self._opened_at = self._clock()
        self._probes_inflight = 0
        self._opens += 1

    def _maybe_half_open(self) -> None:
        if (self._state == "open"
                and self._clock() - self._opened_at >= self.cooldown_s):
            self._state = "half-open"
            self._probes_inflight = 0

    def stats(self) -> Dict:
        """State plus success/failure/open counters."""
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "successes": self._successes,
                "failures": self._failures,
                "opens": self._opens,
            }
