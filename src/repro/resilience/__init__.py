"""Self-healing execution: supervision, fault injection, retry, degradation.

The serving stack's fault-tolerance layer, built from small orthogonal
pieces that compose across :mod:`repro.runtime` and :mod:`repro.serving`:

* :class:`FaultInjector` / :class:`FaultSpec` — deterministic fault
  injection (crash, hang, slow, exception, channel corruption) shipped to
  pool workers as picklable directives; zero-cost when detached.
* :class:`PoolSupervisor` — heartbeat + liveness polling over a
  :class:`~repro.runtime.worker_pool.WarmExecutorPool`; detects dead and
  wedged workers in seconds and respawns *individual* workers.
* :class:`RetryPolicy` — bounded attempts, deterministic-jitter backoff,
  per-request deadline budget.
* :class:`CircuitBreaker` — artifact-level closed/open/half-open gate.
* :class:`ResilientDispatcher` / :class:`ResilienceConfig` — the policy
  stack the serving engine wraps around batch dispatch (retry + recover,
  breaker, degraded fallback onto the in-process ``"plan"`` executor).
"""

from repro.resilience.breaker import BreakerOpen, CircuitBreaker
from repro.resilience.dispatch import ResilienceConfig, ResilientDispatcher
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    active_injector,
    install,
    uninstall,
)
from repro.resilience.policy import RetryPolicy
from repro.resilience.supervisor import PoolSupervisor

__all__ = [
    "BreakerOpen",
    "CircuitBreaker",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "PoolSupervisor",
    "ResilienceConfig",
    "ResilientDispatcher",
    "RetryPolicy",
    "active_injector",
    "install",
    "uninstall",
]
