"""Pool supervision: detect dead/wedged workers in seconds, respawn one.

Before this module, the only failure detector the warm pools had was the
batch watchdog: a worker that died (OOM kill, segfault, injected crash)
stalled its run until the full batch timeout — 300 s by default — and the
only recovery was a full :meth:`~repro.runtime.worker_pool.WarmExecutorPool.restart`
(or artifact invalidation and a recompile).  A :class:`PoolSupervisor` is
a small daemon thread that polls the pool's supervision primitives every
``interval_s``:

* **dead detection** — ``pool.worker_alive(i)`` (``Process.is_alive`` /
  thread liveness, i.e. the sentinel the OS already maintains).  A dead
  worker mid-run gets the in-flight run failed immediately via
  ``pool.fail_inflight`` (the caller's future fails in ~one poll interval
  instead of the batch timeout) and is respawned *individually* via
  ``pool.heal`` — healthy peers, warm weights and fork-inherited channels
  stay in place.
* **wedge detection** — heartbeat tickets (``pool.ping_workers``) are
  enqueued behind whatever a worker is doing; a live worker replies when
  it drains its queue, a wedged one stays silent.  A run in flight longer
  than ``hang_timeout_s`` whose worker has neither replied nor produced a
  result for ``hang_timeout_s`` (measured from the later of run start and
  its last message) is declared wedged, the run is failed fast, and the
  worker is terminated + respawned (threads are abandoned — they cannot
  be killed — exactly the batch-watchdog contract).

Recovery events emit ``supervisor.*`` spans through an attached tracer
and count into ``stats()`` (mirrored into a ``MetricsRegistry`` via
:meth:`publish_metrics`).  The supervisor stops itself when the pool
closes.  Fault-free overhead is one lock-free poll per interval; nothing
touches the dispatch hot path.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

__all__ = ["PoolSupervisor"]


class PoolSupervisor:
    """Watches one :class:`~repro.runtime.worker_pool.WarmExecutorPool`.

    Parameters
    ----------
    pool:
        The pool to supervise (its supervision primitives are the API
        boundary; the supervisor holds no pool internals).
    interval_s:
        Poll cadence; detection latency for dead workers is about one
        interval.
    hang_timeout_s:
        How long a worker may stay silent *during an in-flight run*
        before it is declared wedged.  Must exceed the longest legitimate
        cluster execution time.
    tracer:
        Optional :class:`~repro.observability.Tracer`; recovery events
        emit ``supervisor.respawn`` / ``supervisor.fail_inflight`` spans.
    """

    def __init__(self, pool, interval_s: float = 0.25,
                 hang_timeout_s: float = 30.0, tracer=None) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if hang_timeout_s <= 0:
            raise ValueError("hang_timeout_s must be positive")
        self.pool = pool
        self.interval_s = interval_s
        self.hang_timeout_s = hang_timeout_s
        self._tracer = tracer
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._deaths_detected = 0
        self._wedges_detected = 0
        self._respawns = 0
        self._failed_inflight = 0
        self._heal_errors = 0
        #: workers flagged wedged, pending a heal once the run unwinds
        self._pending_wedged: set = set()
        self._run_started = None  # monotonic start of the inflight run seen
        self._thread = threading.Thread(
            target=self._loop, daemon=True,
            name=f"pool-supervisor-{getattr(pool.module, 'MODEL_NAME', '?')}")
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> "PoolSupervisor":
        """Start the supervision thread (idempotent)."""
        if not self._started:
            self._started = True
            self._thread.start()
        return self

    def stop(self, join_timeout: float = 2.0) -> None:
        """Stop supervising (the pool itself is left untouched)."""
        self._stop.set()
        if self._started:
            self._thread.join(timeout=join_timeout)

    @property
    def running(self) -> bool:
        """Whether the supervision thread is alive."""
        return self._thread.is_alive()

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            if self.pool.closed:
                return
            try:
                self._tick()
            except Exception:  # noqa: BLE001 - supervision must not die
                self._heal_errors += 1

    def _tick(self) -> None:
        pool = self.pool
        inflight = pool.inflight()
        now = time.monotonic()

        # -- dead workers: the OS already knows ------------------------
        dead = [i for i in range(pool.num_clusters)
                if not pool.worker_alive(i)]
        for index in dead:
            self._deaths_detected += 1
            if inflight is not None:
                if pool.fail_inflight(
                        index, f"worker {index} died mid-run "
                        "(detected by supervisor; respawning)"):
                    self._failed_inflight += 1

        # -- wedged workers: silent while a run is stuck ---------------
        wedged: List[int] = []
        if inflight is not None:
            _, started = inflight
            if now - started > self.hang_timeout_s:
                for index in range(pool.num_clusters):
                    if index in dead:
                        continue
                    silent_for = min(pool.heartbeat_age(index), now - started)
                    if silent_for > self.hang_timeout_s:
                        wedged.append(index)
                        self._wedges_detected += 1
                        self._pending_wedged.add(index)
                        if pool.fail_inflight(
                                index, f"worker {index} wedged (silent for "
                                f"{silent_for:.1f}s; respawning)"):
                            self._failed_inflight += 1
        else:
            # idle: ping for liveness and drain ready replies so the
            # done queue stays bounded and heartbeats stay fresh
            pool.ping_workers()
            pool.poll_done()

        # -- heal: respawn dead + flagged-wedged workers ---------------
        # heal() takes the run lock, so it waits until the failed run has
        # unwound; fail_inflight above guarantees that happens within the
        # pool's fail-grace window rather than the batch timeout.
        if dead or self._pending_wedged:
            start_ns = time.perf_counter_ns() if self._tracer else 0
            respawned = pool.heal(wedged=sorted(self._pending_wedged))
            self._pending_wedged.difference_update(respawned)
            # a flagged worker that heal() did not respawn was alive and
            # not explicitly passed — drop stale flags for alive workers
            self._pending_wedged = {
                i for i in self._pending_wedged if not pool.worker_alive(i)}
            if respawned:
                self._respawns += len(respawned)
                if self._tracer is not None:
                    self._tracer.emit(
                        "supervisor.respawn", "supervisor", start_ns,
                        time.perf_counter_ns(),
                        args={"workers": ",".join(map(str, respawned)),
                              "dead": str(len(dead)),
                              "wedged": str(len(wedged))})

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Detection and recovery counters."""
        return {
            "deaths_detected": self._deaths_detected,
            "wedges_detected": self._wedges_detected,
            "respawns": self._respawns,
            "failed_inflight": self._failed_inflight,
            "heal_errors": self._heal_errors,
        }

    def publish_metrics(self, registry,
                        labels: Optional[Dict[str, str]] = None) -> None:
        """Mirror the supervisor's counters into a ``MetricsRegistry``."""
        labels = dict(labels) if labels else {}
        gauge = registry.gauge

        def collect(_registry) -> None:
            stats = self.stats()
            gauge("supervisor_deaths_detected_total",
                  "Dead workers detected by liveness polling",
                  labels=labels).set(stats["deaths_detected"])
            gauge("supervisor_wedges_detected_total",
                  "Wedged workers detected by heartbeat staleness",
                  labels=labels).set(stats["wedges_detected"])
            gauge("supervisor_respawns_total",
                  "Workers respawned by the supervisor",
                  labels=labels).set(stats["respawns"])
            gauge("supervisor_failed_inflight_total",
                  "In-flight runs failed fast on behalf of lost workers",
                  labels=labels).set(stats["failed_inflight"])

        registry.register_collector(collect)

    def __enter__(self) -> "PoolSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
