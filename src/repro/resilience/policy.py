"""Retry policies: bounded attempts, exponential backoff, deadline budget.

A :class:`RetryPolicy` is a frozen description of *how hard to try*: up to
``max_attempts`` attempts, exponential backoff between them
(``backoff_base_s`` doubling by ``backoff_multiplier`` up to
``backoff_max_s``) with **deterministic seeded jitter** — each
:meth:`call` derives its delays from a private ``random.Random(seed)`` so
a chaos test's recovery timeline replays exactly — all under an optional
``deadline_s`` wall-clock budget measured from the first attempt.

The policy is mechanism-free: :meth:`call` runs any callable, retrying on
the configured exception types and invoking an ``on_retry`` hook (used by
the serving dispatcher to run ``Session.recover()`` and bump metrics)
between attempts.  When attempts or deadline run out, the *last* failure
propagates unchanged, so callers still see the true error.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple, Type

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times, and how patiently, to re-dispatch failed work.

    Parameters
    ----------
    max_attempts:
        Total attempts (1 = no retries).
    backoff_base_s:
        Delay before the first retry.
    backoff_multiplier:
        Growth factor per subsequent retry.
    backoff_max_s:
        Ceiling on any single delay (pre-jitter).
    jitter:
        Fraction of each delay drawn (deterministically, from ``seed``)
        uniformly in ``[-jitter, +jitter]`` and added — de-synchronizes
        retry storms without sacrificing replayability.
    deadline_s:
        Optional wall-clock budget across *all* attempts, measured from
        the first; once exceeded no further attempt starts.
    seed:
        Seed of the per-call jitter stream.
    retry_on:
        Exception types that trigger a retry; anything else propagates
        immediately.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 2.0
    jitter: float = 0.1
    deadline_s: Optional[float] = None
    seed: int = 0
    retry_on: Tuple[Type[BaseException], ...] = (Exception,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be within [0, 1)")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")

    # ------------------------------------------------------------------
    def delays(self) -> Iterator[float]:
        """The deterministic backoff sequence (one delay per retry)."""
        rng = random.Random(self.seed)
        delay = self.backoff_base_s
        for _ in range(self.max_attempts - 1):
            capped = min(delay, self.backoff_max_s)
            if self.jitter:
                capped *= 1.0 + rng.uniform(-self.jitter, self.jitter)
            yield max(capped, 0.0)
            delay *= self.backoff_multiplier

    def call(self, fn: Callable[[], object], *,
             on_retry: Optional[Callable[[int, BaseException], None]] = None,
             clock: Callable[[], float] = time.monotonic,
             sleep: Callable[[float], None] = time.sleep):
        """Run ``fn()`` under this policy; returns its result.

        ``on_retry(attempt, exc)`` runs before each re-dispatch (attempt
        numbering starts at 1 for the first *retry*); it may itself raise
        to abort the retry loop (e.g. an unrecoverable session).  ``clock``
        and ``sleep`` are injectable for tests.
        """
        deadline = (clock() + self.deadline_s
                    if self.deadline_s is not None else None)
        delays = self.delays()
        attempt = 0
        while True:
            try:
                return fn()
            except self.retry_on as exc:
                attempt += 1
                delay = next(delays, None)
                if delay is None:
                    raise
                if deadline is not None:
                    remaining = deadline - clock()
                    if remaining <= delay:
                        raise  # the budget cannot fund another attempt
                if on_retry is not None:
                    on_retry(attempt, exc)
                if delay > 0:
                    sleep(delay)
