"""Shape and dtype inference over the IR.

:func:`infer_shapes` walks a :class:`~repro.ir.model.Graph` in topological
order and fills ``graph.value_info`` with a :class:`TensorInfo` for every
intermediate value it can reason about.  The cost model and the cluster
schedule simulator use these shapes to weight operators and messages; the
validator uses them to catch malformed model-zoo graphs early.

Inference is best-effort: an op whose output shape depends on runtime data
(e.g. ``NonZero``) simply produces an unknown shape rather than failing.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.ir.dtypes import DType, promote
from repro.ir.model import Graph
from repro.ir.node import OpNode
from repro.ir.tensor import (
    Shape,
    TensorInfo,
    broadcast_shapes,
    conv_output_dim,
    normalize_shape,
    pool_output_dim,
)


class ShapeInferenceError(RuntimeError):
    """Raised when shape inference encounters an inconsistent graph."""


_InferFn = Callable[["_Context", OpNode], List[TensorInfo]]
_INFER_FNS: Dict[str, _InferFn] = {}


def _infer(op_type: str) -> Callable[[_InferFn], _InferFn]:
    def wrap(fn: _InferFn) -> _InferFn:
        _INFER_FNS[op_type] = fn
        return fn

    return wrap


class _Context:
    """Mutable inference state: known infos and known constant values."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.infos: Dict[str, TensorInfo] = {}
        self.constants: Dict[str, np.ndarray] = {}
        for info in graph.inputs:
            self.infos[info.name] = info
        for name, array in graph.initializers.items():
            self.infos[name] = TensorInfo(name, _np_dtype(array), array.shape)
            self.constants[name] = array
        for name, info in graph.value_info.items():
            self.infos.setdefault(name, info)

    def info(self, name: str) -> Optional[TensorInfo]:
        return self.infos.get(name)

    def shape(self, name: str) -> Shape:
        info = self.infos.get(name)
        return None if info is None else info.shape

    def dtype(self, name: str, default: DType = DType.FLOAT32) -> DType:
        info = self.infos.get(name)
        return default if info is None else info.dtype

    def constant(self, name: str) -> Optional[np.ndarray]:
        return self.constants.get(name)


def _np_dtype(array: np.ndarray) -> DType:
    from repro.ir.dtypes import numpy_to_dtype

    return numpy_to_dtype(array.dtype)


def infer_shapes(graph: Graph, strict: bool = False) -> Graph:
    """Annotate ``graph.value_info`` with inferred shapes.

    Parameters
    ----------
    graph:
        The graph to annotate (modified in place and returned).
    strict:
        When True, raise :class:`ShapeInferenceError` for any node whose
        output shape could not be determined; otherwise record an unknown
        shape and keep going.
    """
    from repro.graph.traversal import topological_sort_nodes

    ctx = _Context(graph)
    for node in topological_sort_nodes(graph):
        fn = _INFER_FNS.get(node.op_type, _infer_unknown)
        try:
            outputs = fn(ctx, node)
        except ShapeInferenceError:
            raise
        except Exception as exc:  # noqa: BLE001 - inference must not crash callers
            if strict:
                raise ShapeInferenceError(
                    f"shape inference failed for node {node.name} ({node.op_type}): {exc}"
                ) from exc
            outputs = _unknown_outputs(ctx, node)
        if strict:
            for out in outputs:
                if out.shape is None:
                    raise ShapeInferenceError(
                        f"could not infer shape of {out.name} "
                        f"(node {node.name}, op {node.op_type})"
                    )
        for out in outputs:
            ctx.infos[out.name] = out
            graph.value_info[out.name] = out
    return graph


def _unknown_outputs(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    dtype = ctx.dtype(node.inputs[0]) if node.present_inputs else DType.FLOAT32
    return [TensorInfo(out, dtype, None) for out in node.outputs if out]


def _infer_unknown(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    return _unknown_outputs(ctx, node)


def _same_shape(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    info = ctx.info(node.inputs[0])
    shape = None if info is None else info.shape
    dtype = ctx.dtype(node.inputs[0])
    return [TensorInfo(out, dtype, shape) for out in node.outputs if out]


# ---------------------------------------------------------------------------
# Convolution / pooling
# ---------------------------------------------------------------------------
@_infer("Conv")
def _infer_conv(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    x = ctx.shape(node.inputs[0])
    w = ctx.shape(node.inputs[1])
    if x is None or w is None or len(x) != 4 or len(w) != 4:
        return _unknown_outputs(ctx, node)
    n, _, h, wdim = x
    out_channels = w[0]
    kernel = node.get_attr("kernel_shape", [w[2], w[3]])
    strides = node.get_attr("strides", [1, 1])
    pads = node.get_attr("pads", [0, 0, 0, 0])
    dilations = node.get_attr("dilations", [1, 1])
    oh = conv_output_dim(h, kernel[0], strides[0], pads[0], pads[2], dilations[0])
    ow = conv_output_dim(wdim, kernel[1], strides[1], pads[1], pads[3], dilations[1])
    return [TensorInfo(node.primary_output, ctx.dtype(node.inputs[0]), (n, out_channels, oh, ow))]


@_infer("ConvTranspose")
def _infer_conv_transpose(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    x = ctx.shape(node.inputs[0])
    w = ctx.shape(node.inputs[1])
    if x is None or w is None or len(x) != 4 or len(w) != 4:
        return _unknown_outputs(ctx, node)
    n, _, h, wdim = x
    out_channels = w[1]
    kernel = node.get_attr("kernel_shape", [w[2], w[3]])
    strides = node.get_attr("strides", [1, 1])
    pads = node.get_attr("pads", [0, 0, 0, 0])
    if h is None or wdim is None:
        oh = ow = None
    else:
        oh = (h - 1) * strides[0] - pads[0] - pads[2] + kernel[0]
        ow = (wdim - 1) * strides[1] - pads[1] - pads[3] + kernel[1]
    return [TensorInfo(node.primary_output, ctx.dtype(node.inputs[0]), (n, out_channels, oh, ow))]


def _infer_pool(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    x = ctx.shape(node.inputs[0])
    if x is None or len(x) != 4:
        return _unknown_outputs(ctx, node)
    n, c, h, w = x
    kernel = node.get_attr("kernel_shape", [1, 1])
    strides = node.get_attr("strides", [1, 1])
    pads = node.get_attr("pads", [0, 0, 0, 0])
    ceil_mode = bool(node.get_attr("ceil_mode", 0))
    oh = pool_output_dim(h, kernel[0], strides[0], pads[0], pads[2], ceil_mode)
    ow = pool_output_dim(w, kernel[1], strides[1], pads[1], pads[3], ceil_mode)
    return [TensorInfo(node.primary_output, ctx.dtype(node.inputs[0]), (n, c, oh, ow))]


_INFER_FNS["MaxPool"] = _infer_pool
_INFER_FNS["AveragePool"] = _infer_pool


def _infer_global_pool(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    x = ctx.shape(node.inputs[0])
    if x is None or len(x) != 4:
        return _unknown_outputs(ctx, node)
    n, c = x[0], x[1]
    return [TensorInfo(node.primary_output, ctx.dtype(node.inputs[0]), (n, c, 1, 1))]


_INFER_FNS["GlobalAveragePool"] = _infer_global_pool
_INFER_FNS["GlobalMaxPool"] = _infer_global_pool


# ---------------------------------------------------------------------------
# Linear algebra
# ---------------------------------------------------------------------------
@_infer("MatMul")
def _infer_matmul(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    a = ctx.shape(node.inputs[0])
    b = ctx.shape(node.inputs[1])
    if a is None or b is None or len(a) < 1 or len(b) < 1:
        return _unknown_outputs(ctx, node)
    dtype = promote(ctx.dtype(node.inputs[0]), ctx.dtype(node.inputs[1]))
    if len(a) == 1 and len(b) == 1:
        return [TensorInfo(node.primary_output, dtype, ())]
    a2 = a if len(a) >= 2 else (1,) + tuple(a)
    b2 = b if len(b) >= 2 else tuple(b) + (1,)
    batch = broadcast_shapes(a2[:-2] or (1,), b2[:-2] or (1,))
    m, k1 = a2[-2], a2[-1]
    k2, n = b2[-2], b2[-1]
    if k1 is not None and k2 is not None and k1 != k2:
        raise ShapeInferenceError(
            f"MatMul inner dimensions disagree: {a} @ {b} in node {node.name}"
        )
    batch = tuple(batch) if batch else ()
    if batch == (1,) and len(a) <= 2 and len(b) <= 2:
        batch = ()
    out_shape = batch + (m, n)
    return [TensorInfo(node.primary_output, dtype, out_shape)]


@_infer("Gemm")
def _infer_gemm(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    a = ctx.shape(node.inputs[0])
    b = ctx.shape(node.inputs[1])
    if a is None or b is None or len(a) != 2 or len(b) != 2:
        return _unknown_outputs(ctx, node)
    trans_a = bool(node.get_attr("transA", 0))
    trans_b = bool(node.get_attr("transB", 0))
    m = a[1] if trans_a else a[0]
    n = b[0] if trans_b else b[1]
    dtype = promote(ctx.dtype(node.inputs[0]), ctx.dtype(node.inputs[1]))
    return [TensorInfo(node.primary_output, dtype, (m, n))]


# ---------------------------------------------------------------------------
# Normalization / activations / elementwise
# ---------------------------------------------------------------------------
for _op in ("BatchNormalization", "LayerNormalization", "InstanceNormalization",
            "Relu", "Sigmoid", "Tanh", "Gelu", "Erf", "LeakyRelu", "Elu", "Selu",
            "Softplus", "HardSigmoid", "HardSwish", "Mish", "Clip", "PRelu",
            "Softmax", "LogSoftmax", "Sqrt", "Exp", "Log", "Neg", "Abs",
            "Reciprocal", "Floor", "Ceil", "Round", "Sign", "Cos", "Sin",
            "Identity", "Cast", "Dropout", "Pad", "Not"):
    _INFER_FNS[_op] = _same_shape


def _infer_binary(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    a = ctx.shape(node.inputs[0])
    b = ctx.shape(node.inputs[1]) if len(node.present_inputs) > 1 else a
    dtype = promote(ctx.dtype(node.inputs[0]), ctx.dtype(node.inputs[-1]))
    try:
        shape = broadcast_shapes(a, b)
    except ValueError as exc:
        raise ShapeInferenceError(f"node {node.name}: {exc}") from exc
    return [TensorInfo(node.primary_output, dtype, shape)]


for _op in ("Add", "Sub", "Mul", "Div", "Pow", "Mod", "Min", "Max",
            "Equal", "Greater", "Less", "GreaterOrEqual", "LessOrEqual",
            "And", "Or", "Xor"):
    _INFER_FNS[_op] = _infer_binary


@_infer("Where")
def _infer_where(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    cond = ctx.shape(node.inputs[0])
    a = ctx.shape(node.inputs[1])
    b = ctx.shape(node.inputs[2])
    shape = broadcast_shapes(broadcast_shapes(cond, a), b)
    return [TensorInfo(node.primary_output, ctx.dtype(node.inputs[1]), shape)]


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------
def _infer_reduce(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    x = ctx.shape(node.inputs[0])
    if x is None:
        return _unknown_outputs(ctx, node)
    axes = node.get_attr("axes")
    if axes is None and len(node.present_inputs) > 1:
        const = ctx.constant(node.inputs[1])
        axes = None if const is None else [int(v) for v in np.atleast_1d(const)]
    keepdims = bool(node.get_attr("keepdims", 1))
    if axes is None:
        shape: Shape = tuple(1 for _ in x) if keepdims else ()
    else:
        axes = [a % len(x) for a in axes]
        dims = []
        for i, d in enumerate(x):
            if i in axes:
                if keepdims:
                    dims.append(1)
            else:
                dims.append(d)
        shape = tuple(dims)
    return [TensorInfo(node.primary_output, ctx.dtype(node.inputs[0]), shape)]


for _op in ("ReduceMean", "ReduceSum", "ReduceMax", "ReduceMin", "ReduceProd", "ReduceL2"):
    _INFER_FNS[_op] = _infer_reduce


def _infer_arg_reduce(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    x = ctx.shape(node.inputs[0])
    if x is None:
        return [TensorInfo(node.primary_output, DType.INT64, None)]
    axis = int(node.get_attr("axis", 0)) % len(x)
    keepdims = bool(node.get_attr("keepdims", 1))
    dims = [d for i, d in enumerate(x) if i != axis or keepdims]
    if keepdims:
        dims = [1 if i == axis else d for i, d in enumerate(x)]
    return [TensorInfo(node.primary_output, DType.INT64, tuple(dims))]


_INFER_FNS["ArgMax"] = _infer_arg_reduce
_INFER_FNS["ArgMin"] = _infer_arg_reduce


# ---------------------------------------------------------------------------
# Concat / split / movement
# ---------------------------------------------------------------------------
@_infer("Concat")
def _infer_concat(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    shapes = [ctx.shape(i) for i in node.present_inputs]
    dtype = ctx.dtype(node.inputs[0])
    if any(s is None for s in shapes):
        return _unknown_outputs(ctx, node)
    axis = int(node.get_attr("axis", 0)) % len(shapes[0])
    total: Optional[int] = 0
    for s in shapes:
        if s[axis] is None:
            total = None
            break
        total += s[axis]
    dims = list(shapes[0])
    dims[axis] = total
    return [TensorInfo(node.primary_output, dtype, tuple(dims))]


@_infer("Split")
def _infer_split(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    x = ctx.shape(node.inputs[0])
    dtype = ctx.dtype(node.inputs[0])
    outs = [o for o in node.outputs if o]
    if x is None:
        return [TensorInfo(o, dtype, None) for o in outs]
    axis = int(node.get_attr("axis", 0)) % len(x)
    split = node.get_attr("split")
    if split is None and len(node.present_inputs) > 1:
        const = ctx.constant(node.inputs[1])
        split = None if const is None else [int(v) for v in np.atleast_1d(const)]
    if split is None:
        if x[axis] is None:
            sizes = [None] * len(outs)
        else:
            each = x[axis] // len(outs)
            sizes = [each] * len(outs)
    else:
        sizes = list(split)
    infos = []
    for out, size in zip(outs, sizes):
        dims = list(x)
        dims[axis] = size
        infos.append(TensorInfo(out, dtype, tuple(dims)))
    return infos


@_infer("Reshape")
def _infer_reshape(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    x = ctx.shape(node.inputs[0])
    dtype = ctx.dtype(node.inputs[0])
    target = node.get_attr("shape")
    if target is None and len(node.present_inputs) > 1:
        const = ctx.constant(node.inputs[1])
        target = None if const is None else [int(v) for v in np.atleast_1d(const)]
    if target is None:
        return _unknown_outputs(ctx, node)
    target = list(target)
    known_elems = None
    if x is not None and all(d is not None for d in x):
        known_elems = int(np.prod(x)) if x else 1
    dims: List[Optional[int]] = []
    neg_index = None
    accounted = 1
    for i, d in enumerate(target):
        if d == -1:
            neg_index = i
            dims.append(None)
        elif d == 0:
            val = x[i] if x is not None and i < len(x) else None
            dims.append(val)
            if val is not None:
                accounted *= val
        else:
            dims.append(int(d))
            accounted *= int(d)
    if neg_index is not None and known_elems is not None and accounted > 0:
        dims[neg_index] = known_elems // accounted
    return [TensorInfo(node.primary_output, dtype, tuple(dims))]


@_infer("Transpose")
def _infer_transpose(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    x = ctx.shape(node.inputs[0])
    if x is None:
        return _unknown_outputs(ctx, node)
    perm = node.get_attr("perm", list(reversed(range(len(x)))))
    dims = tuple(x[p] for p in perm)
    return [TensorInfo(node.primary_output, ctx.dtype(node.inputs[0]), dims)]


@_infer("Flatten")
def _infer_flatten(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    x = ctx.shape(node.inputs[0])
    if x is None:
        return _unknown_outputs(ctx, node)
    axis = int(node.get_attr("axis", 1)) % (len(x) + 1)
    head = x[:axis]
    tail = x[axis:]
    d0 = None if any(d is None for d in head) else int(np.prod(head)) if head else 1
    d1 = None if any(d is None for d in tail) else int(np.prod(tail)) if tail else 1
    return [TensorInfo(node.primary_output, ctx.dtype(node.inputs[0]), (d0, d1))]


def _axes_from(ctx: _Context, node: OpNode) -> Optional[List[int]]:
    axes = node.get_attr("axes")
    if axes is None and len(node.present_inputs) > 1:
        const = ctx.constant(node.inputs[1])
        axes = None if const is None else [int(v) for v in np.atleast_1d(const)]
    return None if axes is None else list(axes)


@_infer("Squeeze")
def _infer_squeeze(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    x = ctx.shape(node.inputs[0])
    if x is None:
        return _unknown_outputs(ctx, node)
    axes = _axes_from(ctx, node)
    if axes is None:
        dims = tuple(d for d in x if d != 1)
    else:
        axes = [a % len(x) for a in axes]
        dims = tuple(d for i, d in enumerate(x) if i not in axes)
    return [TensorInfo(node.primary_output, ctx.dtype(node.inputs[0]), dims)]


@_infer("Unsqueeze")
def _infer_unsqueeze(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    x = ctx.shape(node.inputs[0])
    if x is None:
        return _unknown_outputs(ctx, node)
    axes = _axes_from(ctx, node)
    if axes is None:
        return _unknown_outputs(ctx, node)
    out_rank = len(x) + len(axes)
    axes = sorted(a % out_rank for a in axes)
    dims: List[Optional[int]] = list(x)
    for a in axes:
        dims.insert(a, 1)
    return [TensorInfo(node.primary_output, ctx.dtype(node.inputs[0]), tuple(dims))]


@_infer("Slice")
def _infer_slice(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    x = ctx.shape(node.inputs[0])
    if x is None:
        return _unknown_outputs(ctx, node)
    starts = node.get_attr("starts")
    ends = node.get_attr("ends")
    axes = node.get_attr("axes")
    steps = node.get_attr("steps")
    inputs = node.present_inputs
    if starts is None and len(inputs) > 1:
        starts = _const_ints(ctx, inputs[1])
    if ends is None and len(inputs) > 2:
        ends = _const_ints(ctx, inputs[2])
    if axes is None and len(inputs) > 3:
        axes = _const_ints(ctx, inputs[3])
    if steps is None and len(inputs) > 4:
        steps = _const_ints(ctx, inputs[4])
    if starts is None or ends is None:
        return _unknown_outputs(ctx, node)
    axes = list(range(len(starts))) if axes is None else list(axes)
    steps = [1] * len(starts) if steps is None else list(steps)
    dims = list(x)
    for start, end, axis, step in zip(starts, ends, axes, steps):
        axis = axis % len(x)
        if dims[axis] is None:
            continue
        size = dims[axis]
        start_c = min(max(start + size if start < 0 else start, 0), size)
        end_c = min(max(end + size if end < 0 else end, 0), size) if end < 10**8 else size
        extent = max(end_c - start_c, 0)
        dims[axis] = max((extent + abs(step) - 1) // abs(step), 0)
    return [TensorInfo(node.primary_output, ctx.dtype(node.inputs[0]), tuple(dims))]


def _const_ints(ctx: _Context, name: str) -> Optional[List[int]]:
    const = ctx.constant(name)
    return None if const is None else [int(v) for v in np.atleast_1d(const)]


@_infer("Gather")
def _infer_gather(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    data = ctx.shape(node.inputs[0])
    indices = ctx.shape(node.inputs[1])
    if data is None or indices is None:
        return _unknown_outputs(ctx, node)
    axis = int(node.get_attr("axis", 0)) % len(data)
    dims = tuple(data[:axis]) + tuple(indices) + tuple(data[axis + 1:])
    return [TensorInfo(node.primary_output, ctx.dtype(node.inputs[0]), dims)]


_INFER_FNS["EmbeddingLookup"] = lambda ctx, node: [
    TensorInfo(
        node.primary_output,
        ctx.dtype(node.inputs[0]),
        (tuple(ctx.shape(node.inputs[1]) or ()) + tuple((ctx.shape(node.inputs[0]) or (None, None))[1:]))
        if ctx.shape(node.inputs[1]) is not None and ctx.shape(node.inputs[0]) is not None
        else None,
    )
]


@_infer("Expand")
def _infer_expand(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    x = ctx.shape(node.inputs[0])
    target = _const_ints(ctx, node.inputs[1]) if len(node.present_inputs) > 1 else None
    if target is None:
        return _unknown_outputs(ctx, node)
    shape = broadcast_shapes(x, tuple(target)) if x is not None else tuple(target)
    return [TensorInfo(node.primary_output, ctx.dtype(node.inputs[0]), shape)]


@_infer("Tile")
def _infer_tile(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    x = ctx.shape(node.inputs[0])
    reps = _const_ints(ctx, node.inputs[1]) if len(node.present_inputs) > 1 else None
    if x is None or reps is None:
        return _unknown_outputs(ctx, node)
    dims = tuple(None if d is None else d * r for d, r in zip(x, reps))
    return [TensorInfo(node.primary_output, ctx.dtype(node.inputs[0]), dims)]


def _infer_resize(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    x = ctx.shape(node.inputs[0])
    scales = node.get_attr("scales")
    if x is None or scales is None or len(x) != len(scales):
        return _unknown_outputs(ctx, node)
    dims = tuple(None if d is None else int(d * s) for d, s in zip(x, scales))
    return [TensorInfo(node.primary_output, ctx.dtype(node.inputs[0]), dims)]


_INFER_FNS["Resize"] = _infer_resize
_INFER_FNS["Upsample"] = _infer_resize


@_infer("DepthToSpace")
def _infer_depth_to_space(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    x = ctx.shape(node.inputs[0])
    if x is None or len(x) != 4:
        return _unknown_outputs(ctx, node)
    n, c, h, w = x
    b = int(node.get_attr("blocksize", 2))
    c_out = None if c is None else c // (b * b)
    return [TensorInfo(node.primary_output, ctx.dtype(node.inputs[0]),
                       (n, c_out, None if h is None else h * b, None if w is None else w * b))]


@_infer("SpaceToDepth")
def _infer_space_to_depth(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    x = ctx.shape(node.inputs[0])
    if x is None or len(x) != 4:
        return _unknown_outputs(ctx, node)
    n, c, h, w = x
    b = int(node.get_attr("blocksize", 2))
    return [TensorInfo(node.primary_output, ctx.dtype(node.inputs[0]),
                       (n, None if c is None else c * b * b,
                        None if h is None else h // b, None if w is None else w // b))]


# ---------------------------------------------------------------------------
# Metadata ops
# ---------------------------------------------------------------------------
@_infer("Shape")
def _infer_shape_op(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    x = ctx.shape(node.inputs[0])
    rank = None if x is None else len(x)
    return [TensorInfo(node.primary_output, DType.INT64, (rank,) if rank is not None else None)]


@_infer("Size")
def _infer_size(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    return [TensorInfo(node.primary_output, DType.INT64, ())]


@_infer("Constant")
def _infer_constant(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    value = node.get_attr("value")
    if value is None:
        return [TensorInfo(node.primary_output, DType.FLOAT32, None)]
    arr = np.asarray(value)
    ctx.constants[node.primary_output] = arr
    return [TensorInfo(node.primary_output, _np_dtype(arr), arr.shape)]


@_infer("ConstantOfShape")
def _infer_constant_of_shape(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    shape = _const_ints(ctx, node.inputs[0]) if node.present_inputs else None
    value = node.get_attr("value", 0.0)
    dtype = _np_dtype(np.asarray(value)) if value is not None else DType.FLOAT32
    return [TensorInfo(node.primary_output, dtype, tuple(shape) if shape is not None else None)]


@_infer("Range")
def _infer_range(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    start = ctx.constant(node.inputs[0])
    limit = ctx.constant(node.inputs[1])
    delta = ctx.constant(node.inputs[2])
    if start is None or limit is None or delta is None:
        return [TensorInfo(node.primary_output, DType.INT64, None)]
    count = int(max(np.ceil((float(limit) - float(start)) / float(delta)), 0))
    return [TensorInfo(node.primary_output, DType.INT64, (count,))]


@_infer("NonZero")
def _infer_nonzero(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    x = ctx.shape(node.inputs[0])
    rank = None if x is None else len(x)
    return [TensorInfo(node.primary_output, DType.INT64,
                       (rank, None) if rank is not None else None)]


@_infer("TopK")
def _infer_topk(ctx: _Context, node: OpNode) -> List[TensorInfo]:
    x = ctx.shape(node.inputs[0])
    k = _const_ints(ctx, node.inputs[1]) if len(node.present_inputs) > 1 else None
    if x is None:
        return _unknown_outputs(ctx, node)
    axis = int(node.get_attr("axis", -1)) % len(x)
    dims = list(x)
    dims[axis] = k[0] if k else None
    outs = [o for o in node.outputs if o]
    infos = [TensorInfo(outs[0], ctx.dtype(node.inputs[0]), tuple(dims))]
    if len(outs) > 1:
        infos.append(TensorInfo(outs[1], DType.INT64, tuple(dims)))
    return infos
