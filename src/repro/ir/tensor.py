"""Tensor value descriptions (name + dtype + shape) and shape helpers."""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, Optional, Sequence, Tuple, Union

from repro.ir.dtypes import DType, parse_dtype

#: A tensor shape.  ``None`` in a dimension means "dynamic / unknown"
#: (e.g. a symbolic batch dimension), ``None`` as the whole shape means the
#: rank itself is unknown.
Shape = Optional[Tuple[Optional[int], ...]]


def normalize_shape(shape: Union[None, Sequence[Optional[int]]]) -> Shape:
    """Normalize any sequence of dims into the canonical tuple form.

    Negative dimensions are rejected; ``None`` dims pass through.
    """
    if shape is None:
        return None
    dims = []
    for d in shape:
        if d is None:
            dims.append(None)
            continue
        d = int(d)
        if d < 0:
            raise ValueError(f"negative dimension in shape: {tuple(shape)}")
        dims.append(d)
    return tuple(dims)


def num_elements(shape: Shape) -> Optional[int]:
    """Number of elements of a shape, or ``None`` if any dim is unknown."""
    if shape is None:
        return None
    total = 1
    for d in shape:
        if d is None:
            return None
        total *= d
    return total


def is_static(shape: Shape) -> bool:
    """True when the shape is fully known (no ``None`` dims, known rank)."""
    return shape is not None and all(d is not None for d in shape)


def broadcast_shapes(a: Shape, b: Shape) -> Shape:
    """Numpy-style broadcasting of two (possibly partially unknown) shapes."""
    if a is None or b is None:
        return None
    ra, rb = len(a), len(b)
    rank = max(ra, rb)
    # Missing leading dimensions broadcast as 1 (numpy semantics).
    padded_a = (1,) * (rank - ra) + tuple(a)
    padded_b = (1,) * (rank - rb) + tuple(b)
    out = []
    for da, db in zip(padded_a, padded_b):
        if da is None and db is None:
            out.append(None)
        elif da is None:
            out.append(db if db != 1 else None)
        elif db is None:
            out.append(da if da != 1 else None)
        elif da == db or db == 1:
            out.append(da)
        elif da == 1:
            out.append(db)
        else:
            raise ValueError(f"shapes {a} and {b} are not broadcastable")
    return tuple(out)


@dataclasses.dataclass(frozen=True)
class TensorInfo:
    """Description of a tensor value flowing along a graph edge.

    Parameters
    ----------
    name:
        Unique SSA-style value name within the graph.
    dtype:
        Element type.
    shape:
        Tuple of dimensions; ``None`` entries are dynamic, ``None`` as a
        whole means unknown rank.
    """

    name: str
    dtype: DType = DType.FLOAT32
    shape: Shape = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("TensorInfo requires a non-empty name")
        object.__setattr__(self, "dtype", parse_dtype(self.dtype))
        object.__setattr__(self, "shape", normalize_shape(self.shape))

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def rank(self) -> Optional[int]:
        """Rank (number of dimensions), or None if unknown."""
        return None if self.shape is None else len(self.shape)

    @property
    def num_elements(self) -> Optional[int]:
        """Total element count, or None if any dimension is dynamic."""
        return num_elements(self.shape)

    @property
    def nbytes(self) -> Optional[int]:
        """Size in bytes, or None when the shape is not fully static."""
        n = self.num_elements
        return None if n is None else n * self.dtype.itemsize

    def is_static(self) -> bool:
        """True when the full shape is known."""
        return is_static(self.shape)

    def with_shape(self, shape: Union[None, Sequence[Optional[int]]]) -> "TensorInfo":
        """Return a copy of this info with a different shape."""
        return TensorInfo(self.name, self.dtype, normalize_shape(shape))

    def with_name(self, name: str) -> "TensorInfo":
        """Return a copy of this info with a different name."""
        return TensorInfo(name, self.dtype, self.shape)

    # ------------------------------------------------------------------
    # Serialization helpers
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible dictionary form."""
        return {
            "name": self.name,
            "dtype": self.dtype.value,
            "shape": None if self.shape is None else list(self.shape),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TensorInfo":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            dtype=parse_dtype(data.get("dtype", "float32")),
            shape=data.get("shape"),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        shape = "?" if self.shape is None else "x".join(
            "?" if d is None else str(d) for d in self.shape
        )
        return f"TensorInfo({self.name!r}, {self.dtype.value}, {shape})"


def tensor_volume_mb(infos: Iterable[TensorInfo]) -> float:
    """Total static size of a collection of tensors in MiB (unknown = 0)."""
    total = 0
    for info in infos:
        nbytes = info.nbytes
        if nbytes:
            total += nbytes
    return total / (1024.0 * 1024.0)


def conv_output_dim(
    in_dim: Optional[int],
    kernel: int,
    stride: int = 1,
    pad_begin: int = 0,
    pad_end: int = 0,
    dilation: int = 1,
) -> Optional[int]:
    """Standard convolution/pooling output-size formula for one dimension."""
    if in_dim is None:
        return None
    effective_kernel = dilation * (kernel - 1) + 1
    out = (in_dim + pad_begin + pad_end - effective_kernel) // stride + 1
    return max(int(out), 0)


def pool_output_dim(
    in_dim: Optional[int],
    kernel: int,
    stride: int = 1,
    pad_begin: int = 0,
    pad_end: int = 0,
    ceil_mode: bool = False,
) -> Optional[int]:
    """Pooling output-size formula (optionally with ceil rounding)."""
    if in_dim is None:
        return None
    numer = in_dim + pad_begin + pad_end - kernel
    if ceil_mode:
        out = math.ceil(numer / stride) + 1
    else:
        out = numer // stride + 1
    return max(int(out), 0)
