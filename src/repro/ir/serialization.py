"""JSON (de)serialization of IR models.

The paper's tool consumes frozen ONNX protobuf files.  In this reproduction
a model saved with :func:`save_model` plays that role: it is a complete,
self-contained description of the dataflow graph (nodes, attributes,
initializers, inputs/outputs) that can be exchanged between the model zoo,
the Ramiel pipeline and tests without importing any builder code.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.ir.dtypes import dtype_to_numpy, numpy_to_dtype, parse_dtype
from repro.ir.model import Graph, Model
from repro.ir.node import OpNode
from repro.ir.tensor import TensorInfo


def _initializer_to_dict(name: str, array: np.ndarray) -> dict:
    return {
        "name": name,
        "dtype": numpy_to_dtype(array.dtype).value,
        "shape": list(array.shape),
        "data": array.ravel().tolist(),
    }


def _initializer_from_dict(data: dict) -> np.ndarray:
    np_dtype = dtype_to_numpy(parse_dtype(data["dtype"]))
    return np.asarray(data["data"], dtype=np_dtype).reshape(data["shape"])


def graph_to_dict(graph: Graph) -> dict:
    """Convert a :class:`Graph` to a JSON-compatible dictionary."""
    return {
        "name": graph.name,
        "nodes": [n.to_dict() for n in graph.nodes],
        "inputs": [i.to_dict() for i in graph.inputs],
        "outputs": [o.to_dict() for o in graph.outputs],
        "initializers": [
            _initializer_to_dict(name, arr) for name, arr in graph.initializers.items()
        ],
        "value_info": [info.to_dict() for info in graph.value_info.values()],
    }


def graph_from_dict(data: dict) -> Graph:
    """Inverse of :func:`graph_to_dict`."""
    graph = Graph(
        name=data.get("name", "graph"),
        nodes=[OpNode.from_dict(n) for n in data.get("nodes", [])],
        inputs=[TensorInfo.from_dict(i) for i in data.get("inputs", [])],
        outputs=[TensorInfo.from_dict(o) for o in data.get("outputs", [])],
    )
    for init in data.get("initializers", []):
        graph.initializers[init["name"]] = _initializer_from_dict(init)
    for info in data.get("value_info", []):
        ti = TensorInfo.from_dict(info)
        graph.value_info[ti.name] = ti
    return graph


def model_to_dict(model: Model) -> dict:
    """Convert a :class:`Model` to a JSON-compatible dictionary.

    Keys under the ``ramiel.`` metadata namespace hold derived,
    process-local values (e.g. the memoized content fingerprint used by the
    serving cache) and are not persisted: a saved model edited and reloaded
    must re-derive them rather than trust a stale copy.
    """
    return {
        "format": "repro-ir",
        "version": 1,
        "name": model.name,
        "producer": model.producer,
        "opset_version": model.opset_version,
        "doc": model.doc,
        "metadata": {key: value for key, value in model.metadata.items()
                     if not key.startswith("ramiel.")},
        "graph": graph_to_dict(model.graph),
    }


def model_from_dict(data: dict) -> Model:
    """Inverse of :func:`model_to_dict`."""
    if data.get("format") != "repro-ir":
        raise ValueError("not a repro-ir model dictionary")
    return Model(
        graph=graph_from_dict(data["graph"]),
        name=data.get("name", ""),
        producer=data.get("producer", "repro"),
        opset_version=int(data.get("opset_version", 17)),
        doc=data.get("doc", ""),
        metadata=dict(data.get("metadata", {})),
    )


def save_model(model: Model, path: Union[str, Path], compress: bool = True) -> Path:
    """Serialize a model to disk as (optionally gzipped) JSON.

    Paths ending in ``.gz`` are always gzip-compressed regardless of the
    ``compress`` flag.
    """
    path = Path(path)
    payload = json.dumps(model_to_dict(model)).encode("utf-8")
    if compress or path.suffix == ".gz":
        if path.suffix != ".gz":
            path = path.with_suffix(path.suffix + ".gz")
        with gzip.open(path, "wb") as fh:
            fh.write(payload)
    else:
        path.write_bytes(payload)
    return path


def load_model(path: Union[str, Path]) -> Model:
    """Load a model previously saved with :func:`save_model`."""
    path = Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "rb") as fh:
            payload = fh.read()
    else:
        payload = path.read_bytes()
    return model_from_dict(json.loads(payload.decode("utf-8")))
