"""Fluent graph construction API used by the model zoo.

:class:`GraphBuilder` wraps a :class:`~repro.ir.model.Graph` and provides
one method per common operator.  Each method creates the operator node,
registers any weight initializers it needs (with a seeded RNG so models are
reproducible), runs local shape inference, and returns the output value
name so that calls chain naturally::

    b = GraphBuilder("toy", seed=0)
    x = b.input("x", (1, 3, 32, 32))
    y = b.relu(b.conv(x, out_channels=8, kernel=3, pads=1))
    b.output(y)
    model = b.build()
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.ir.dtypes import DType
from repro.ir.model import Graph, Model
from repro.ir.node import OpNode
from repro.ir.shape_inference import infer_shapes
from repro.ir.tensor import TensorInfo, conv_output_dim, pool_output_dim
from repro.ir.validation import validate_graph

IntOrPair = Union[int, Sequence[int]]


def _pair(value: IntOrPair) -> List[int]:
    if isinstance(value, (list, tuple)):
        return [int(value[0]), int(value[1])]
    return [int(value), int(value)]


def _quad(value: IntOrPair) -> List[int]:
    if isinstance(value, (list, tuple)):
        if len(value) == 4:
            return [int(v) for v in value]
        return [int(value[0]), int(value[1]), int(value[0]), int(value[1])]
    return [int(value)] * 4


class GraphBuilder:
    """Incrementally build an IR :class:`Graph`/:class:`Model`.

    Parameters
    ----------
    name:
        Graph/model name.
    seed:
        Seed for the weight-initializer RNG, so that every build of a zoo
        model produces bit-identical initializers.
    small_weights:
        When True (default), weights are drawn from a narrow distribution
        scaled by fan-in, keeping activations numerically tame for the
        real execution paths.
    """

    def __init__(self, name: str, seed: int = 0, small_weights: bool = True) -> None:
        self.graph = Graph(name=name)
        self.rng = np.random.default_rng(seed)
        self.small_weights = small_weights
        self._counters: Dict[str, itertools.count] = {}
        #: best-known shapes for values created through the builder
        self.shapes: Dict[str, Tuple[Optional[int], ...]] = {}

    # ------------------------------------------------------------------
    # Naming helpers
    # ------------------------------------------------------------------
    def fresh(self, prefix: str) -> str:
        """Return a fresh value/node name with the given prefix."""
        counter = self._counters.setdefault(prefix, itertools.count())
        return f"{prefix}_{next(counter)}"

    # ------------------------------------------------------------------
    # Graph-level I/O
    # ------------------------------------------------------------------
    def input(
        self,
        name: str,
        shape: Sequence[Optional[int]],
        dtype: DType = DType.FLOAT32,
    ) -> str:
        """Declare a graph input and return its value name."""
        info = TensorInfo(name, dtype, tuple(shape))
        self.graph.inputs.append(info)
        self.shapes[name] = info.shape
        return name

    def output(self, name: str, dtype: DType = DType.FLOAT32) -> str:
        """Declare a graph output."""
        shape = self.shapes.get(name)
        self.graph.outputs.append(TensorInfo(name, dtype, shape))
        return name

    def initializer(self, name: str, array: np.ndarray) -> str:
        """Register an explicit initializer array."""
        self.graph.add_initializer(name, np.asarray(array))
        self.shapes[name] = tuple(np.asarray(array).shape)
        return name

    def weight(self, prefix: str, shape: Sequence[int], scale: Optional[float] = None) -> str:
        """Create a random float32 weight initializer."""
        shape = tuple(int(s) for s in shape)
        if scale is None:
            fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else max(shape[0], 1)
            scale = 1.0 / np.sqrt(max(fan_in, 1)) if self.small_weights else 1.0
        array = (self.rng.standard_normal(shape) * scale).astype(np.float32)
        return self.initializer(self.fresh(prefix), array)

    def const(self, value: np.ndarray, prefix: str = "const") -> str:
        """Register a constant tensor as an initializer and return its name."""
        return self.initializer(self.fresh(prefix), np.asarray(value))

    # ------------------------------------------------------------------
    # Core node factory
    # ------------------------------------------------------------------
    def node(
        self,
        op_type: str,
        inputs: Sequence[str],
        num_outputs: int = 1,
        name: Optional[str] = None,
        out_names: Optional[Sequence[str]] = None,
        **attrs,
    ) -> Union[str, List[str]]:
        """Add a node; returns its single output name, or the list of names."""
        node_name = name or self.fresh(op_type.lower())
        if out_names is None:
            out_names = [f"{node_name}_out{i}" if num_outputs > 1 else f"{node_name}_out"
                         for i in range(num_outputs)]
        node = OpNode.create(op_type, list(inputs), list(out_names), name=node_name, **attrs)
        self.graph.add_node(node)
        return out_names[0] if num_outputs == 1 else list(out_names)

    # ------------------------------------------------------------------
    # Convolution / pooling
    # ------------------------------------------------------------------
    def conv(
        self,
        x: str,
        out_channels: int,
        kernel: IntOrPair = 3,
        strides: IntOrPair = 1,
        pads: IntOrPair = 0,
        dilations: IntOrPair = 1,
        group: int = 1,
        bias: bool = True,
        name: Optional[str] = None,
    ) -> str:
        """2D convolution with freshly created weights."""
        in_shape = self.shapes.get(x)
        in_channels = in_shape[1] if in_shape and in_shape[1] is not None else out_channels
        k = _pair(kernel)
        w = self.weight("conv_w", (out_channels, max(in_channels // group, 1), k[0], k[1]))
        inputs = [x, w]
        if bias:
            inputs.append(self.weight("conv_b", (out_channels,), scale=0.01))
        out = self.node(
            "Conv",
            inputs,
            name=name,
            kernel_shape=k,
            strides=_pair(strides),
            pads=_quad(pads),
            dilations=_pair(dilations),
            group=group,
        )
        if in_shape is not None and len(in_shape) == 4:
            s, p, d = _pair(strides), _quad(pads), _pair(dilations)
            oh = conv_output_dim(in_shape[2], k[0], s[0], p[0], p[2], d[0])
            ow = conv_output_dim(in_shape[3], k[1], s[1], p[1], p[3], d[1])
            self.shapes[out] = (in_shape[0], out_channels, oh, ow)
        return out

    def depthwise_conv(self, x: str, kernel: IntOrPair = 3, strides: IntOrPair = 1,
                       pads: IntOrPair = 1, name: Optional[str] = None) -> str:
        """Depthwise separable convolution (group == channels)."""
        in_shape = self.shapes.get(x)
        channels = in_shape[1] if in_shape and in_shape[1] is not None else 1
        return self.conv(x, out_channels=channels, kernel=kernel, strides=strides,
                         pads=pads, group=channels, name=name)

    def _pool(self, op: str, x: str, kernel: IntOrPair, strides: IntOrPair,
              pads: IntOrPair, ceil_mode: bool, name: Optional[str]) -> str:
        k, s, p = _pair(kernel), _pair(strides), _quad(pads)
        out = self.node(op, [x], name=name, kernel_shape=k, strides=s, pads=p,
                        ceil_mode=int(ceil_mode))
        in_shape = self.shapes.get(x)
        if in_shape is not None and len(in_shape) == 4:
            oh = pool_output_dim(in_shape[2], k[0], s[0], p[0], p[2], ceil_mode)
            ow = pool_output_dim(in_shape[3], k[1], s[1], p[1], p[3], ceil_mode)
            self.shapes[out] = (in_shape[0], in_shape[1], oh, ow)
        return out

    def maxpool(self, x: str, kernel: IntOrPair = 3, strides: IntOrPair = 2,
                pads: IntOrPair = 0, ceil_mode: bool = False, name: Optional[str] = None) -> str:
        """2D max pooling."""
        return self._pool("MaxPool", x, kernel, strides, pads, ceil_mode, name)

    def avgpool(self, x: str, kernel: IntOrPair = 3, strides: IntOrPair = 1,
                pads: IntOrPair = 1, ceil_mode: bool = False, name: Optional[str] = None) -> str:
        """2D average pooling."""
        return self._pool("AveragePool", x, kernel, strides, pads, ceil_mode, name)

    def global_avgpool(self, x: str, name: Optional[str] = None) -> str:
        """Global average pooling down to 1x1 spatial size."""
        out = self.node("GlobalAveragePool", [x], name=name)
        in_shape = self.shapes.get(x)
        if in_shape is not None and len(in_shape) == 4:
            self.shapes[out] = (in_shape[0], in_shape[1], 1, 1)
        return out

    # ------------------------------------------------------------------
    # Elementwise / activations / normalization
    # ------------------------------------------------------------------
    def _unary(self, op: str, x: str, name: Optional[str] = None, **attrs) -> str:
        out = self.node(op, [x], name=name, **attrs)
        self.shapes[out] = self.shapes.get(x)
        return out

    def relu(self, x: str, name: Optional[str] = None) -> str:
        """ReLU activation."""
        return self._unary("Relu", x, name)

    def sigmoid(self, x: str, name: Optional[str] = None) -> str:
        """Sigmoid activation."""
        return self._unary("Sigmoid", x, name)

    def tanh(self, x: str, name: Optional[str] = None) -> str:
        """Tanh activation."""
        return self._unary("Tanh", x, name)

    def gelu(self, x: str, name: Optional[str] = None) -> str:
        """GELU activation (used by BERT)."""
        return self._unary("Gelu", x, name)

    def erf(self, x: str, name: Optional[str] = None) -> str:
        """Error function (appears in ONNX-exported GELU)."""
        return self._unary("Erf", x, name)

    def leaky_relu(self, x: str, alpha: float = 0.1, name: Optional[str] = None) -> str:
        """LeakyReLU activation (Yolo)."""
        return self._unary("LeakyRelu", x, name, alpha=alpha)

    def softmax(self, x: str, axis: int = -1, name: Optional[str] = None) -> str:
        """Softmax along an axis."""
        return self._unary("Softmax", x, name, axis=axis)

    def identity(self, x: str, name: Optional[str] = None) -> str:
        """Identity pass-through."""
        return self._unary("Identity", x, name)

    def cast(self, x: str, to: str = "float32", name: Optional[str] = None) -> str:
        """Cast element type."""
        return self._unary("Cast", x, name, to=to)

    def _binary(self, op: str, a: str, b: str, name: Optional[str] = None) -> str:
        out = self.node(op, [a, b], name=name)
        sa, sb = self.shapes.get(a), self.shapes.get(b)
        self.shapes[out] = sa if sa is not None else sb
        return out

    def add(self, a: str, b: str, name: Optional[str] = None) -> str:
        """Elementwise addition."""
        return self._binary("Add", a, b, name)

    def sub(self, a: str, b: str, name: Optional[str] = None) -> str:
        """Elementwise subtraction."""
        return self._binary("Sub", a, b, name)

    def mul(self, a: str, b: str, name: Optional[str] = None) -> str:
        """Elementwise multiplication."""
        return self._binary("Mul", a, b, name)

    def div(self, a: str, b: str, name: Optional[str] = None) -> str:
        """Elementwise division."""
        return self._binary("Div", a, b, name)

    def pow(self, a: str, b: str, name: Optional[str] = None) -> str:
        """Elementwise power."""
        return self._binary("Pow", a, b, name)

    def sqrt(self, x: str, name: Optional[str] = None) -> str:
        """Elementwise square root."""
        return self._unary("Sqrt", x, name)

    def batchnorm(self, x: str, epsilon: float = 1e-5, name: Optional[str] = None) -> str:
        """Inference-mode batch normalization with fresh scale/bias/mean/var."""
        in_shape = self.shapes.get(x)
        channels = in_shape[1] if in_shape and in_shape[1] is not None else 1
        scale = self.initializer(self.fresh("bn_scale"),
                                 np.ones(channels, dtype=np.float32))
        bias = self.initializer(self.fresh("bn_bias"),
                                np.zeros(channels, dtype=np.float32))
        mean = self.initializer(self.fresh("bn_mean"),
                                np.zeros(channels, dtype=np.float32))
        var = self.initializer(self.fresh("bn_var"),
                               np.ones(channels, dtype=np.float32))
        out = self.node("BatchNormalization", [x, scale, bias, mean, var],
                        name=name, epsilon=epsilon)
        self.shapes[out] = in_shape
        return out

    def layernorm(self, x: str, normalized_dim: int, axis: int = -1,
                  epsilon: float = 1e-5, name: Optional[str] = None) -> str:
        """Layer normalization over the trailing dimension."""
        scale = self.initializer(self.fresh("ln_scale"),
                                 np.ones(normalized_dim, dtype=np.float32))
        bias = self.initializer(self.fresh("ln_bias"),
                                np.zeros(normalized_dim, dtype=np.float32))
        out = self.node("LayerNormalization", [x, scale, bias], name=name,
                        axis=axis, epsilon=epsilon)
        self.shapes[out] = self.shapes.get(x)
        return out

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, a: str, b: str, name: Optional[str] = None) -> str:
        """Batched matrix multiplication of two existing values."""
        out = self.node("MatMul", [a, b], name=name)
        sa, sb = self.shapes.get(a), self.shapes.get(b)
        if sa is not None and sb is not None and len(sa) >= 2 and len(sb) >= 2:
            self.shapes[out] = tuple(sa[:-1]) + (sb[-1],)
        return out

    def linear(self, x: str, out_features: int, bias: bool = True,
               name: Optional[str] = None) -> str:
        """Dense layer: MatMul with a fresh weight (+ Add bias)."""
        in_shape = self.shapes.get(x)
        in_features = in_shape[-1] if in_shape and in_shape[-1] is not None else out_features
        w = self.weight("linear_w", (in_features, out_features))
        out = self.matmul(x, w, name=name)
        if bias:
            b = self.weight("linear_b", (out_features,), scale=0.01)
            out = self.add(out, b)
        if in_shape is not None:
            self.shapes[out] = tuple(in_shape[:-1]) + (out_features,)
        return out

    def gemm(self, x: str, out_features: int, name: Optional[str] = None) -> str:
        """Gemm (fully connected classifier head) with fresh weights."""
        in_shape = self.shapes.get(x)
        in_features = in_shape[-1] if in_shape and in_shape[-1] is not None else out_features
        w = self.weight("gemm_w", (out_features, in_features))
        b = self.weight("gemm_b", (out_features,), scale=0.01)
        out = self.node("Gemm", [x, w, b], name=name, alpha=1.0, beta=1.0,
                        transA=0, transB=1)
        if in_shape is not None:
            self.shapes[out] = (in_shape[0], out_features)
        return out

    # ------------------------------------------------------------------
    # Shape / movement ops
    # ------------------------------------------------------------------
    def concat(self, inputs: Sequence[str], axis: int = 1, name: Optional[str] = None) -> str:
        """Concatenate values along an axis."""
        out = self.node("Concat", list(inputs), name=name, axis=axis)
        shapes = [self.shapes.get(i) for i in inputs]
        if all(s is not None for s in shapes) and shapes:
            ref = list(shapes[0])
            ax = axis % len(ref)
            if all(s[ax] is not None for s in shapes):
                ref[ax] = sum(s[ax] for s in shapes)
                self.shapes[out] = tuple(ref)
        return out

    def split(self, x: str, parts: int, axis: int = 1, name: Optional[str] = None) -> List[str]:
        """Split a value into ``parts`` equal chunks along ``axis``."""
        outs = self.node("Split", [x], num_outputs=parts, name=name, axis=axis)
        in_shape = self.shapes.get(x)
        if in_shape is not None and in_shape[axis % len(in_shape)] is not None:
            dims = list(in_shape)
            ax = axis % len(in_shape)
            dims[ax] = dims[ax] // parts
            for o in outs:
                self.shapes[o] = tuple(dims)
        return outs

    def reshape(self, x: str, shape: Sequence[int], name: Optional[str] = None) -> str:
        """Reshape to a static target shape (passed via a constant tensor)."""
        shape_const = self.const(np.asarray(shape, dtype=np.int64), prefix="reshape_shape")
        out = self.node("Reshape", [x, shape_const], name=name, shape=list(shape))
        in_shape = self.shapes.get(x)
        dims = list(shape)
        if in_shape is not None and all(d is not None for d in in_shape):
            total = int(np.prod(in_shape)) if in_shape else 1
            accounted = int(np.prod([d for d in dims if d > 0])) or 1
            dims = [total // accounted if d == -1 else d for d in dims]
        self.shapes[out] = tuple(None if d == -1 else d for d in dims)
        return out

    def transpose(self, x: str, perm: Sequence[int], name: Optional[str] = None) -> str:
        """Permute dimensions."""
        out = self.node("Transpose", [x], name=name, perm=list(perm))
        in_shape = self.shapes.get(x)
        if in_shape is not None and len(in_shape) == len(perm):
            self.shapes[out] = tuple(in_shape[p] for p in perm)
        return out

    def flatten(self, x: str, axis: int = 1, name: Optional[str] = None) -> str:
        """Flatten trailing dimensions starting at ``axis``."""
        out = self.node("Flatten", [x], name=name, axis=axis)
        in_shape = self.shapes.get(x)
        if in_shape is not None and all(d is not None for d in in_shape):
            head = int(np.prod(in_shape[:axis])) if axis > 0 else 1
            tail = int(np.prod(in_shape[axis:])) if in_shape[axis:] else 1
            self.shapes[out] = (head, tail)
        return out

    def slice(self, x: str, starts: Sequence[int], ends: Sequence[int],
              axes: Optional[Sequence[int]] = None, name: Optional[str] = None) -> str:
        """Slice a tensor with static starts/ends."""
        out = self.node("Slice", [x], name=name, starts=list(starts), ends=list(ends),
                        axes=list(axes) if axes is not None else list(range(len(starts))))
        in_shape = self.shapes.get(x)
        if in_shape is not None:
            dims = list(in_shape)
            use_axes = list(axes) if axes is not None else list(range(len(starts)))
            for s, e, a in zip(starts, ends, use_axes):
                if dims[a] is None:
                    continue
                size = dims[a]
                s_c = min(max(s + size if s < 0 else s, 0), size)
                e_c = size if e >= 10**8 else min(max(e + size if e < 0 else e, 0), size)
                dims[a] = max(e_c - s_c, 0)
            self.shapes[out] = tuple(dims)
        return out

    def gather(self, data: str, indices: str, axis: int = 0, name: Optional[str] = None) -> str:
        """Gather rows/elements along an axis."""
        out = self.node("Gather", [data, indices], name=name, axis=axis)
        d, i = self.shapes.get(data), self.shapes.get(indices)
        if d is not None and i is not None:
            ax = axis % len(d)
            self.shapes[out] = tuple(d[:ax]) + tuple(i) + tuple(d[ax + 1:])
        return out

    def shape_of(self, x: str, name: Optional[str] = None) -> str:
        """Shape metadata op."""
        out = self.node("Shape", [x], name=name)
        in_shape = self.shapes.get(x)
        self.shapes[out] = (len(in_shape),) if in_shape is not None else None
        return out

    def resize(self, x: str, scale: float = 2.0, mode: str = "nearest",
               name: Optional[str] = None) -> str:
        """Spatial upsampling by a uniform scale factor (Yolo/Retinanet FPN)."""
        out = self.node("Resize", [x], name=name, mode=mode,
                        scales=[1.0, 1.0, float(scale), float(scale)])
        in_shape = self.shapes.get(x)
        if in_shape is not None and len(in_shape) == 4:
            self.shapes[out] = (
                in_shape[0], in_shape[1],
                None if in_shape[2] is None else int(in_shape[2] * scale),
                None if in_shape[3] is None else int(in_shape[3] * scale),
            )
        return out

    def dropout(self, x: str, ratio: float = 0.1, name: Optional[str] = None) -> str:
        """Inference-mode dropout (a pass-through the passes can eliminate)."""
        node_name = name or self.fresh("dropout")
        outs = self.node("Dropout", [x], num_outputs=2, name=node_name, ratio=ratio)
        self.shapes[outs[0]] = self.shapes.get(x)
        return outs[0]

    def reduce_mean(self, x: str, axes: Sequence[int], keepdims: bool = True,
                    name: Optional[str] = None) -> str:
        """Mean reduction over the given axes."""
        out = self.node("ReduceMean", [x], name=name, axes=list(axes),
                        keepdims=int(keepdims))
        in_shape = self.shapes.get(x)
        if in_shape is not None:
            norm_axes = [a % len(in_shape) for a in axes]
            dims = []
            for i, d in enumerate(in_shape):
                if i in norm_axes:
                    if keepdims:
                        dims.append(1)
                else:
                    dims.append(d)
            self.shapes[out] = tuple(dims)
        return out

    # ------------------------------------------------------------------
    # Composite blocks commonly used in the zoo
    # ------------------------------------------------------------------
    def conv_bn_relu(self, x: str, out_channels: int, kernel: IntOrPair = 3,
                     strides: IntOrPair = 1, pads: IntOrPair = 0,
                     name: Optional[str] = None) -> str:
        """Conv -> BatchNorm -> ReLU block."""
        y = self.conv(x, out_channels, kernel=kernel, strides=strides, pads=pads, name=name)
        y = self.batchnorm(y)
        return self.relu(y)

    def conv_relu(self, x: str, out_channels: int, kernel: IntOrPair = 3,
                  strides: IntOrPair = 1, pads: IntOrPair = 0,
                  name: Optional[str] = None) -> str:
        """Conv -> ReLU block (the Squeezenet/Googlenet idiom in Fig. 1)."""
        return self.relu(self.conv(x, out_channels, kernel=kernel, strides=strides,
                                   pads=pads, name=name))

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def build(self, validate: bool = True, infer: bool = True) -> Model:
        """Finalize and return the model (validated, shapes inferred)."""
        if validate:
            validate_graph(self.graph)
        if infer:
            infer_shapes(self.graph)
        return Model(graph=self.graph, name=self.graph.name)
