"""Element data types for IR tensors.

Mirrors the subset of ONNX element types that the reproduced models use.
The mapping to/from numpy dtypes is centralized here so the rest of the
code base never hard-codes numpy dtype strings.
"""

from __future__ import annotations

import enum
from typing import Union

import numpy as np


class DType(enum.Enum):
    """Supported tensor element types."""

    FLOAT32 = "float32"
    FLOAT64 = "float64"
    FLOAT16 = "float16"
    INT64 = "int64"
    INT32 = "int32"
    INT8 = "int8"
    UINT8 = "uint8"
    BOOL = "bool"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_floating(self) -> bool:
        """True for floating-point element types."""
        return self in (DType.FLOAT32, DType.FLOAT64, DType.FLOAT16)

    @property
    def is_integer(self) -> bool:
        """True for integer element types (bool excluded)."""
        return self in (DType.INT64, DType.INT32, DType.INT8, DType.UINT8)

    @property
    def itemsize(self) -> int:
        """Size in bytes of one element of this type."""
        return np.dtype(self.value).itemsize


_NUMPY_TO_DTYPE = {
    np.dtype("float32"): DType.FLOAT32,
    np.dtype("float64"): DType.FLOAT64,
    np.dtype("float16"): DType.FLOAT16,
    np.dtype("int64"): DType.INT64,
    np.dtype("int32"): DType.INT32,
    np.dtype("int8"): DType.INT8,
    np.dtype("uint8"): DType.UINT8,
    np.dtype("bool"): DType.BOOL,
}


def dtype_to_numpy(dtype: DType) -> np.dtype:
    """Return the numpy dtype corresponding to an IR :class:`DType`."""
    return np.dtype(dtype.value)


def numpy_to_dtype(np_dtype: Union[np.dtype, type, str]) -> DType:
    """Return the IR :class:`DType` for a numpy dtype.

    Raises
    ------
    ValueError
        If the numpy dtype has no IR equivalent.
    """
    key = np.dtype(np_dtype)
    try:
        return _NUMPY_TO_DTYPE[key]
    except KeyError as exc:
        raise ValueError(f"unsupported numpy dtype for IR: {key}") from exc


def parse_dtype(value: Union[str, DType]) -> DType:
    """Coerce a string (e.g. ``"float32"``) or :class:`DType` into a DType."""
    if isinstance(value, DType):
        return value
    try:
        return DType(value)
    except ValueError as exc:
        raise ValueError(f"unknown dtype string: {value!r}") from exc


def promote(a: DType, b: DType) -> DType:
    """Very small type-promotion lattice used by shape inference.

    Floating beats integer; wider beats narrower.  This is sufficient for
    the model zoo where almost everything is float32 with int64 index
    tensors.
    """
    if a == b:
        return a
    order = [
        DType.BOOL,
        DType.UINT8,
        DType.INT8,
        DType.INT32,
        DType.INT64,
        DType.FLOAT16,
        DType.FLOAT32,
        DType.FLOAT64,
    ]
    return order[max(order.index(a), order.index(b))]
