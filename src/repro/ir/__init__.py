"""ONNX-like intermediate representation (IR) for ML/DL dataflow graphs.

The paper's tool, Ramiel, ingests ONNX models.  The ``onnx`` package is not
available in this environment, so this subpackage provides an in-memory IR
with the same essential vocabulary:

* :class:`~repro.ir.tensor.TensorInfo` — a named, typed, shaped tensor value
  (the analogue of ONNX ``ValueInfoProto``).
* :class:`~repro.ir.node.OpNode` — a single operator invocation with named
  inputs/outputs and typed attributes (the analogue of ``NodeProto``).
* :class:`~repro.ir.model.Graph` and :class:`~repro.ir.model.Model` — a
  dataflow graph with inputs, outputs, initializers (weights/constants) and
  its enclosing model container (``GraphProto`` / ``ModelProto``).
* :mod:`~repro.ir.opset` — a registry of operator schemas (arity, attribute
  signatures, operator *kind* used by the cost model, and shape-inference
  hooks).
* :class:`~repro.ir.builder.GraphBuilder` — a fluent construction API used
  by the model zoo in :mod:`repro.models`.

Models serialize to/from JSON via :mod:`repro.ir.serialization`, providing a
frozen-graph interchange format that plays the role ONNX files play in the
paper's pipeline.
"""

from repro.ir.dtypes import DType, dtype_to_numpy, numpy_to_dtype
from repro.ir.tensor import TensorInfo, Shape
from repro.ir.attributes import Attribute, AttributeType
from repro.ir.node import OpNode
from repro.ir.model import Graph, Model
from repro.ir.opset import OpSchema, OpKind, get_schema, has_schema, register_op, registered_ops
from repro.ir.builder import GraphBuilder
from repro.ir.validation import ValidationError, validate_graph, validate_model
from repro.ir.serialization import (
    model_to_dict,
    model_from_dict,
    save_model,
    load_model,
)
from repro.ir.shape_inference import infer_shapes, ShapeInferenceError

__all__ = [
    "DType",
    "dtype_to_numpy",
    "numpy_to_dtype",
    "TensorInfo",
    "Shape",
    "Attribute",
    "AttributeType",
    "OpNode",
    "Graph",
    "Model",
    "OpSchema",
    "OpKind",
    "get_schema",
    "has_schema",
    "register_op",
    "registered_ops",
    "GraphBuilder",
    "ValidationError",
    "validate_graph",
    "validate_model",
    "model_to_dict",
    "model_from_dict",
    "save_model",
    "load_model",
    "infer_shapes",
    "ShapeInferenceError",
]
