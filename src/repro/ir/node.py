"""Operator nodes of the IR graph."""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.ir.attributes import Attribute, attrs_from_kwargs

_node_counter = itertools.count()


@dataclasses.dataclass
class OpNode:
    """A single operator invocation in a dataflow graph.

    Parameters
    ----------
    op_type:
        Operator name, e.g. ``"Conv"`` or ``"MatMul"``.  Must be registered
        in :mod:`repro.ir.opset` for shape inference / cost modelling to
        work, but unregistered custom ops are tolerated by the container.
    inputs:
        Ordered list of value names consumed.  Empty string entries denote
        optional inputs that are absent (ONNX convention).
    outputs:
        Ordered list of value names produced.
    name:
        Unique node name within the graph; auto-generated when omitted.
    attributes:
        Mapping of attribute name to :class:`Attribute`.
    """

    op_type: str
    inputs: List[str] = dataclasses.field(default_factory=list)
    outputs: List[str] = dataclasses.field(default_factory=list)
    name: str = ""
    attributes: Dict[str, Attribute] = dataclasses.field(default_factory=dict)
    doc: str = ""

    def __post_init__(self) -> None:
        if not self.op_type:
            raise ValueError("OpNode requires a non-empty op_type")
        self.inputs = list(self.inputs)
        self.outputs = list(self.outputs)
        if not self.name:
            self.name = f"{self.op_type.lower()}_{next(_node_counter)}"
        if not isinstance(self.attributes, dict):
            self.attributes = {a.name: a for a in self.attributes}

    # ------------------------------------------------------------------
    # Attribute access
    # ------------------------------------------------------------------
    def set_attr(self, name: str, value: Any) -> None:
        """Set (or overwrite) an attribute from a plain value."""
        self.attributes[name] = Attribute.from_value(name, value)

    def get_attr(self, name: str, default: Any = None) -> Any:
        """Return the raw payload of an attribute, or ``default``."""
        attr = self.attributes.get(name)
        return default if attr is None else attr.value

    def has_attr(self, name: str) -> bool:
        """True when the node carries the named attribute."""
        return name in self.attributes

    def del_attr(self, name: str) -> None:
        """Remove an attribute if present."""
        self.attributes.pop(name, None)

    # ------------------------------------------------------------------
    # Structural helpers
    # ------------------------------------------------------------------
    @property
    def present_inputs(self) -> List[str]:
        """Input names with absent optional inputs ("") filtered out."""
        return [i for i in self.inputs if i]

    @property
    def primary_output(self) -> str:
        """The first output name (most ops have exactly one output)."""
        if not self.outputs:
            raise ValueError(f"node {self.name} has no outputs")
        return self.outputs[0]

    def rename_input(self, old: str, new: str) -> int:
        """Replace every occurrence of input ``old`` with ``new``.

        Returns the number of replacements performed.
        """
        count = 0
        for idx, value in enumerate(self.inputs):
            if value == old:
                self.inputs[idx] = new
                count += 1
        return count

    def rename_output(self, old: str, new: str) -> int:
        """Replace every occurrence of output ``old`` with ``new``."""
        count = 0
        for idx, value in enumerate(self.outputs):
            if value == old:
                self.outputs[idx] = new
                count += 1
        return count

    def copy(self, name: Optional[str] = None) -> "OpNode":
        """Deep copy of this node, optionally renamed."""
        return OpNode(
            op_type=self.op_type,
            inputs=list(self.inputs),
            outputs=list(self.outputs),
            name=name if name is not None else self.name,
            attributes={k: v.copy() for k, v in self.attributes.items()},
            doc=self.doc,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible dictionary form."""
        return {
            "op_type": self.op_type,
            "name": self.name,
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
            "attributes": [a.to_dict() for a in self.attributes.values()],
            "doc": self.doc,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OpNode":
        """Inverse of :meth:`to_dict`."""
        attrs = {a["name"]: Attribute.from_dict(a) for a in data.get("attributes", [])}
        return cls(
            op_type=data["op_type"],
            inputs=list(data.get("inputs", [])),
            outputs=list(data.get("outputs", [])),
            name=data.get("name", ""),
            attributes=attrs,
            doc=data.get("doc", ""),
        )

    @classmethod
    def create(
        cls,
        op_type: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        name: str = "",
        **attrs: Any,
    ) -> "OpNode":
        """Convenience constructor taking attributes as keyword arguments."""
        attributes = {a.name: a for a in attrs_from_kwargs(**attrs)}
        return cls(
            op_type=op_type,
            inputs=list(inputs),
            outputs=list(outputs),
            name=name,
            attributes=attributes,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OpNode({self.op_type}, name={self.name!r}, "
            f"inputs={self.inputs}, outputs={self.outputs})"
        )


def reset_node_counter() -> None:
    """Reset the auto-naming counter (used by tests for determinism)."""
    global _node_counter
    _node_counter = itertools.count()
