"""Typed operator attributes.

ONNX nodes carry a bag of named attributes (ints, floats, strings, int
lists, tensors).  We mirror that with a small tagged-value class so that
attribute round-trips through JSON serialization are loss-less and so the
code generator can render attributes back into Python literals.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, List, Sequence, Union

import numpy as np

from repro.ir.dtypes import numpy_to_dtype, dtype_to_numpy, parse_dtype


class AttributeType(enum.Enum):
    """Tag describing the payload type of an :class:`Attribute`."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    INTS = "ints"
    FLOATS = "floats"
    STRINGS = "strings"
    TENSOR = "tensor"
    BOOL = "bool"


@dataclasses.dataclass
class Attribute:
    """A single named, typed attribute value attached to an operator node."""

    name: str
    type: AttributeType
    value: Any

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("Attribute requires a non-empty name")
        self.value = _coerce(self.type, self.value)

    # ------------------------------------------------------------------
    @classmethod
    def from_value(cls, name: str, value: Any) -> "Attribute":
        """Infer the attribute type from a plain Python/numpy value."""
        if isinstance(value, Attribute):
            return Attribute(name, value.type, value.value)
        if isinstance(value, bool):
            return cls(name, AttributeType.BOOL, value)
        if isinstance(value, (int, np.integer)):
            return cls(name, AttributeType.INT, int(value))
        if isinstance(value, (float, np.floating)):
            return cls(name, AttributeType.FLOAT, float(value))
        if isinstance(value, str):
            return cls(name, AttributeType.STRING, value)
        if isinstance(value, np.ndarray):
            return cls(name, AttributeType.TENSOR, value)
        if isinstance(value, (list, tuple)):
            if len(value) == 0:
                return cls(name, AttributeType.INTS, [])
            first = value[0]
            if isinstance(first, str):
                return cls(name, AttributeType.STRINGS, list(value))
            if isinstance(first, (float, np.floating)) and not isinstance(first, (int, np.integer)):
                return cls(name, AttributeType.FLOATS, [float(v) for v in value])
            if all(isinstance(v, (int, np.integer, bool)) for v in value):
                return cls(name, AttributeType.INTS, [int(v) for v in value])
            return cls(name, AttributeType.FLOATS, [float(v) for v in value])
        raise TypeError(f"cannot infer attribute type for {name}={value!r}")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible dictionary form."""
        value = self.value
        if self.type is AttributeType.TENSOR:
            arr: np.ndarray = value
            value = {
                "dtype": numpy_to_dtype(arr.dtype).value,
                "shape": list(arr.shape),
                "data": arr.ravel().tolist(),
            }
        return {"name": self.name, "type": self.type.value, "value": value}

    @classmethod
    def from_dict(cls, data: dict) -> "Attribute":
        """Inverse of :meth:`to_dict`."""
        atype = AttributeType(data["type"])
        value = data["value"]
        if atype is AttributeType.TENSOR:
            np_dtype = dtype_to_numpy(parse_dtype(value["dtype"]))
            arr = np.asarray(value["data"], dtype=np_dtype).reshape(value["shape"])
            value = arr
        return cls(name=data["name"], type=atype, value=value)

    def copy(self) -> "Attribute":
        """Deep-enough copy (tensor payloads are copied)."""
        value = self.value.copy() if isinstance(self.value, np.ndarray) else self.value
        if isinstance(value, list):
            value = list(value)
        return Attribute(self.name, self.type, value)


def _coerce(atype: AttributeType, value: Any) -> Any:
    """Validate/coerce a raw value against its declared attribute type."""
    if atype is AttributeType.INT:
        return int(value)
    if atype is AttributeType.FLOAT:
        return float(value)
    if atype is AttributeType.BOOL:
        return bool(value)
    if atype is AttributeType.STRING:
        return str(value)
    if atype is AttributeType.INTS:
        return [int(v) for v in value]
    if atype is AttributeType.FLOATS:
        return [float(v) for v in value]
    if atype is AttributeType.STRINGS:
        return [str(v) for v in value]
    if atype is AttributeType.TENSOR:
        return np.asarray(value)
    raise TypeError(f"unknown attribute type {atype}")


def attrs_from_kwargs(**kwargs: Any) -> List[Attribute]:
    """Build a list of attributes from keyword arguments (Nones dropped)."""
    out: List[Attribute] = []
    for name, value in kwargs.items():
        if value is None:
            continue
        out.append(Attribute.from_value(name, value))
    return out
