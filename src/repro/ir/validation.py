"""Structural validation of IR graphs.

The checks here catch the mistakes that are easiest to make when building
graphs programmatically (the model zoo) or transforming them (the passes
and the cloning/clustering machinery):

* duplicate node names or duplicate value producers (SSA violation),
* references to values that nothing produces,
* graph outputs that are never produced,
* cycles in the dataflow graph,
* operator arities that violate the registered schema.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.model import Graph, Model
from repro.ir.opset import has_schema, get_schema


class ValidationError(ValueError):
    """Raised when a graph fails structural validation."""

    def __init__(self, problems: List[str]):
        self.problems = list(problems)
        super().__init__(
            "graph validation failed:\n  - " + "\n  - ".join(self.problems)
        )


def collect_problems(graph: Graph, check_schemas: bool = True) -> List[str]:
    """Return a list of human-readable problems (empty when the graph is valid)."""
    problems: List[str] = []

    # Unique node names -----------------------------------------------------
    seen_nodes: Set[str] = set()
    for node in graph.nodes:
        if node.name in seen_nodes:
            problems.append(f"duplicate node name {node.name!r}")
        seen_nodes.add(node.name)

    # Unique producers (SSA) ------------------------------------------------
    producers: Dict[str, str] = {}
    for node in graph.nodes:
        for out in node.outputs:
            if not out:
                continue
            if out in producers:
                problems.append(
                    f"value {out!r} produced by both {producers[out]!r} and {node.name!r}"
                )
            producers[out] = node.name
    for name in graph.input_names:
        if name in producers:
            problems.append(f"graph input {name!r} is also produced by node {producers[name]!r}")
    for name in graph.initializers:
        if name in producers:
            problems.append(
                f"initializer {name!r} is also produced by node {producers[name]!r}"
            )

    # Dangling references ---------------------------------------------------
    available: Set[str] = set(graph.input_names) | set(graph.initializers) | set(producers)
    for node in graph.nodes:
        for inp in node.present_inputs:
            if inp not in available:
                problems.append(
                    f"node {node.name!r} ({node.op_type}) reads undefined value {inp!r}"
                )
    for out in graph.output_names:
        if out not in available:
            problems.append(f"graph output {out!r} is never produced")

    # Schema / arity checks -------------------------------------------------
    if check_schemas:
        for node in graph.nodes:
            if not has_schema(node.op_type):
                problems.append(f"node {node.name!r} uses unregistered op {node.op_type!r}")
                continue
            schema = get_schema(node.op_type)
            arity = len(node.present_inputs)
            if not schema.accepts_arity(arity):
                problems.append(
                    f"node {node.name!r} ({node.op_type}) has {arity} inputs; "
                    f"schema allows [{schema.min_inputs}, {schema.max_inputs}]"
                )

    # Acyclicity ------------------------------------------------------------
    problems.extend(_check_acyclic(graph, producers))
    return problems


def _check_acyclic(graph: Graph, producers: Dict[str, str]) -> List[str]:
    """Kahn's algorithm; returns a problem entry when a cycle exists."""
    node_by_name = {n.name: n for n in graph.nodes}
    indegree: Dict[str, int] = {n.name: 0 for n in graph.nodes}
    dependents: Dict[str, List[str]] = {n.name: [] for n in graph.nodes}
    for node in graph.nodes:
        for inp in node.present_inputs:
            producer = producers.get(inp)
            if producer is not None and producer != node.name:
                indegree[node.name] += 1
                dependents[producer].append(node.name)
    ready = [name for name, deg in indegree.items() if deg == 0]
    visited = 0
    while ready:
        name = ready.pop()
        visited += 1
        for dep in dependents[name]:
            indegree[dep] -= 1
            if indegree[dep] == 0:
                ready.append(dep)
    if visited != len(node_by_name):
        stuck = sorted(name for name, deg in indegree.items() if deg > 0)
        return [f"graph contains a cycle involving nodes: {stuck[:8]}"]
    return []


def validate_graph(graph: Graph, check_schemas: bool = True) -> Graph:
    """Validate a graph, raising :class:`ValidationError` on any problem."""
    problems = collect_problems(graph, check_schemas=check_schemas)
    if problems:
        raise ValidationError(problems)
    return graph


def validate_model(model: Model, check_schemas: bool = True) -> Model:
    """Validate the graph inside a model."""
    validate_graph(model.graph, check_schemas=check_schemas)
    return model
