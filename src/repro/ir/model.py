"""Graph and Model containers — the IR analogues of ONNX GraphProto/ModelProto."""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

import numpy as np

from repro.ir.node import OpNode
from repro.ir.tensor import TensorInfo
from repro.ir.dtypes import numpy_to_dtype


@dataclasses.dataclass
class Graph:
    """A dataflow graph: operator nodes plus the values flowing between them.

    Attributes
    ----------
    name:
        Human-readable graph name (usually the model name).
    nodes:
        Operator nodes in (not necessarily topological) order.
    inputs:
        Graph-level inputs (activations fed at inference time).
    outputs:
        Graph-level outputs.
    initializers:
        Mapping value-name -> numpy array for weights and embedded constants.
        A value present here is *not* expected to appear as a graph input.
    value_info:
        Optional shape/type annotations for intermediate values (filled in
        by :func:`repro.ir.shape_inference.infer_shapes`).
    """

    name: str = "graph"
    nodes: List[OpNode] = dataclasses.field(default_factory=list)
    inputs: List[TensorInfo] = dataclasses.field(default_factory=list)
    outputs: List[TensorInfo] = dataclasses.field(default_factory=list)
    initializers: Dict[str, np.ndarray] = dataclasses.field(default_factory=dict)
    value_info: Dict[str, TensorInfo] = dataclasses.field(default_factory=dict)

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def add_node(self, node: OpNode) -> OpNode:
        """Append a node to the graph and return it."""
        self.nodes.append(node)
        return node

    def remove_nodes(self, names: Iterable[str]) -> int:
        """Remove all nodes whose name is in ``names``; returns count removed."""
        doomed = set(names)
        before = len(self.nodes)
        self.nodes = [n for n in self.nodes if n.name not in doomed]
        return before - len(self.nodes)

    def node_by_name(self, name: str) -> OpNode:
        """Look up a node by its unique name."""
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r} in graph {self.name!r}")

    def __iter__(self) -> Iterator[OpNode]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    # Value management
    # ------------------------------------------------------------------
    def add_initializer(self, name: str, array: np.ndarray) -> TensorInfo:
        """Register a weight/constant tensor and return its TensorInfo."""
        array = np.asarray(array)
        self.initializers[name] = array
        info = TensorInfo(name, numpy_to_dtype(array.dtype), array.shape)
        self.value_info[name] = info
        return info

    def is_initializer(self, name: str) -> bool:
        """True when ``name`` refers to a weight/constant."""
        return name in self.initializers

    @property
    def input_names(self) -> List[str]:
        """Names of the graph inputs."""
        return [i.name for i in self.inputs]

    @property
    def output_names(self) -> List[str]:
        """Names of the graph outputs."""
        return [o.name for o in self.outputs]

    def tensor_info(self, name: str) -> Optional[TensorInfo]:
        """Best-known :class:`TensorInfo` for any value name, if recorded."""
        for info in self.inputs:
            if info.name == name:
                return info
        for info in self.outputs:
            if info.name == name:
                return info
        return self.value_info.get(name)

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    def producers(self) -> Dict[str, OpNode]:
        """Map from value name to the node that produces it."""
        result: Dict[str, OpNode] = {}
        for node in self.nodes:
            for out in node.outputs:
                result[out] = node
        return result

    def consumers(self) -> Dict[str, List[OpNode]]:
        """Map from value name to the nodes that consume it."""
        result: Dict[str, List[OpNode]] = {}
        for node in self.nodes:
            for inp in node.present_inputs:
                result.setdefault(inp, []).append(node)
        return result

    def all_value_names(self) -> Set[str]:
        """Every value name referenced anywhere in the graph."""
        names: Set[str] = set(self.initializers)
        names.update(self.input_names)
        names.update(self.output_names)
        for node in self.nodes:
            names.update(node.present_inputs)
            names.update(node.outputs)
        return names

    def op_type_histogram(self) -> Dict[str, int]:
        """Count of nodes per op_type (useful for model-zoo sanity checks)."""
        hist: Dict[str, int] = {}
        for node in self.nodes:
            hist[node.op_type] = hist.get(node.op_type, 0) + 1
        return dict(sorted(hist.items()))

    # ------------------------------------------------------------------
    # Copying / serialization
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Deep copy of the graph (initializers share no storage)."""
        return Graph(
            name=self.name,
            nodes=[n.copy() for n in self.nodes],
            inputs=list(self.inputs),
            outputs=list(self.outputs),
            initializers={k: v.copy() for k, v in self.initializers.items()},
            value_info=dict(self.value_info),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Graph({self.name!r}, nodes={len(self.nodes)}, "
            f"inputs={self.input_names}, outputs={self.output_names})"
        )


@dataclasses.dataclass
class Model:
    """Top-level model container (graph + metadata), analogue of ModelProto."""

    graph: Graph
    name: str = ""
    producer: str = "repro"
    opset_version: int = 17
    doc: str = ""
    metadata: Dict[str, str] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.graph.name

    def copy(self) -> "Model":
        """Deep copy of the model."""
        return Model(
            graph=self.graph.copy(),
            name=self.name,
            producer=self.producer,
            opset_version=self.opset_version,
            doc=self.doc,
            metadata=dict(self.metadata),
        )

    @property
    def num_nodes(self) -> int:
        """Number of operator nodes in the underlying graph."""
        return len(self.graph.nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Model({self.name!r}, nodes={self.num_nodes})"
