"""Operator schema registry.

Every operator the model zoo emits is registered here with:

* its *kind* (used by the static cost model of
  :mod:`repro.graph.cost_model` — e.g. heavy ``CONV``/``GEMM`` ops versus
  unit-cost ``ELEMENTWISE`` ops versus near-free ``SHAPE`` metadata ops),
* its input arity bounds,
* the number of outputs it produces, and
* the names of the attributes it understands.

The registry intentionally mirrors (a subset of) the ONNX operator set so
that graphs written against it read like ONNX graphs.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterable, List, Optional, Tuple


class OpKind(enum.Enum):
    """Coarse operator categories used by the cost model and the passes."""

    CONV = "conv"                 # convolutions — the heavy hitters
    GEMM = "gemm"                 # matmul / gemm / linear layers
    POOL = "pool"                 # pooling ops
    NORMALIZATION = "normalization"
    ACTIVATION = "activation"     # elementwise nonlinearities
    ELEMENTWISE = "elementwise"   # binary/unary arithmetic
    REDUCTION = "reduction"
    CONCAT = "concat"             # concat / split / stack
    MOVEMENT = "movement"         # reshape / transpose / slice / gather
    SHAPE = "shape"               # pure metadata ops (Shape, Constant, Cast…)
    CONTROL = "control"           # identity / dropout(eval) / no-ops
    EMBEDDING = "embedding"       # gather-based table lookups
    SOFTMAX = "softmax"
    RESIZE = "resize"


@dataclasses.dataclass(frozen=True)
class OpSchema:
    """Static description of one operator type."""

    op_type: str
    kind: OpKind
    min_inputs: int = 1
    max_inputs: Optional[int] = 1
    num_outputs: int = 1
    attributes: Tuple[str, ...] = ()
    commutative: bool = False
    doc: str = ""

    def accepts_arity(self, n: int) -> bool:
        """True when ``n`` inputs is a legal arity for this operator."""
        if n < self.min_inputs:
            return False
        if self.max_inputs is not None and n > self.max_inputs:
            return False
        return True


_REGISTRY: Dict[str, OpSchema] = {}


def register_op(schema: OpSchema) -> OpSchema:
    """Register (or overwrite) an operator schema."""
    _REGISTRY[schema.op_type] = schema
    return schema


def get_schema(op_type: str) -> OpSchema:
    """Return the schema for ``op_type``.

    Raises
    ------
    KeyError
        If the operator was never registered.
    """
    try:
        return _REGISTRY[op_type]
    except KeyError as exc:
        raise KeyError(
            f"operator {op_type!r} is not registered in the opset; "
            f"known ops: {sorted(_REGISTRY)[:10]}..."
        ) from exc


def has_schema(op_type: str) -> bool:
    """True when ``op_type`` is a registered operator."""
    return op_type in _REGISTRY


def registered_ops() -> List[str]:
    """Sorted list of all registered operator type names."""
    return sorted(_REGISTRY)


def ops_of_kind(kind: OpKind) -> List[str]:
    """All registered operators of a given kind."""
    return sorted(name for name, schema in _REGISTRY.items() if schema.kind == kind)


def _reg(
    op_type: str,
    kind: OpKind,
    min_inputs: int = 1,
    max_inputs: Optional[int] = 1,
    num_outputs: int = 1,
    attributes: Iterable[str] = (),
    commutative: bool = False,
    doc: str = "",
) -> None:
    register_op(
        OpSchema(
            op_type=op_type,
            kind=kind,
            min_inputs=min_inputs,
            max_inputs=max_inputs,
            num_outputs=num_outputs,
            attributes=tuple(attributes),
            commutative=commutative,
            doc=doc,
        )
    )


# ---------------------------------------------------------------------------
# Convolution / pooling
# ---------------------------------------------------------------------------
_reg(
    "Conv",
    OpKind.CONV,
    min_inputs=2,
    max_inputs=3,
    attributes=("kernel_shape", "strides", "pads", "dilations", "group"),
    doc="2D convolution: X, W[, B] -> Y (NCHW layout).",
)
_reg(
    "ConvTranspose",
    OpKind.CONV,
    min_inputs=2,
    max_inputs=3,
    attributes=("kernel_shape", "strides", "pads", "output_padding", "group"),
    doc="Transposed (fractionally strided) convolution.",
)
_reg(
    "MaxPool",
    OpKind.POOL,
    attributes=("kernel_shape", "strides", "pads", "ceil_mode"),
    doc="2D max pooling.",
)
_reg(
    "AveragePool",
    OpKind.POOL,
    attributes=("kernel_shape", "strides", "pads", "ceil_mode", "count_include_pad"),
    doc="2D average pooling.",
)
_reg("GlobalAveragePool", OpKind.POOL, doc="Spatial global average pooling.")
_reg("GlobalMaxPool", OpKind.POOL, doc="Spatial global max pooling.")

# ---------------------------------------------------------------------------
# Linear algebra
# ---------------------------------------------------------------------------
_reg("MatMul", OpKind.GEMM, min_inputs=2, max_inputs=2, doc="Batched matrix multiply.")
_reg(
    "Gemm",
    OpKind.GEMM,
    min_inputs=2,
    max_inputs=3,
    attributes=("alpha", "beta", "transA", "transB"),
    doc="General matrix multiply with optional bias: alpha*A@B + beta*C.",
)
_reg("Einsum", OpKind.GEMM, min_inputs=1, max_inputs=None, attributes=("equation",))

# ---------------------------------------------------------------------------
# Normalization
# ---------------------------------------------------------------------------
_reg(
    "BatchNormalization",
    OpKind.NORMALIZATION,
    min_inputs=5,
    max_inputs=5,
    attributes=("epsilon", "momentum"),
    doc="Inference-mode batch normalization: X, scale, B, mean, var -> Y.",
)
_reg(
    "LayerNormalization",
    OpKind.NORMALIZATION,
    min_inputs=2,
    max_inputs=3,
    attributes=("axis", "epsilon"),
    doc="Layer normalization: X, scale[, bias] -> Y.",
)
_reg(
    "InstanceNormalization",
    OpKind.NORMALIZATION,
    min_inputs=3,
    max_inputs=3,
    attributes=("epsilon",),
)

# ---------------------------------------------------------------------------
# Activations
# ---------------------------------------------------------------------------
for _act in ("Relu", "Sigmoid", "Tanh", "Gelu", "Erf", "LeakyRelu", "Elu",
             "Softplus", "HardSigmoid", "HardSwish", "Mish", "Selu"):
    _reg(_act, OpKind.ACTIVATION, attributes=("alpha", "gamma"))
_reg("Clip", OpKind.ACTIVATION, min_inputs=1, max_inputs=3, attributes=("min", "max"))
_reg("Softmax", OpKind.SOFTMAX, attributes=("axis",))
_reg("LogSoftmax", OpKind.SOFTMAX, attributes=("axis",))
_reg("PRelu", OpKind.ACTIVATION, min_inputs=2, max_inputs=2)

# ---------------------------------------------------------------------------
# Elementwise arithmetic
# ---------------------------------------------------------------------------
for _bin in ("Add", "Mul"):
    _reg(_bin, OpKind.ELEMENTWISE, min_inputs=2, max_inputs=2, commutative=True)
for _bin in ("Sub", "Div", "Pow", "Mod", "Min", "Max"):
    _reg(_bin, OpKind.ELEMENTWISE, min_inputs=2, max_inputs=2)
for _un in ("Sqrt", "Exp", "Log", "Neg", "Abs", "Reciprocal", "Floor", "Ceil",
            "Round", "Sign", "Cos", "Sin"):
    _reg(_un, OpKind.ELEMENTWISE)
for _cmp in ("Equal", "Greater", "Less", "GreaterOrEqual", "LessOrEqual", "And",
             "Or", "Not", "Xor"):
    _reg(_cmp, OpKind.ELEMENTWISE, min_inputs=1, max_inputs=2)
_reg("Where", OpKind.ELEMENTWISE, min_inputs=3, max_inputs=3)

# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------
for _red in ("ReduceMean", "ReduceSum", "ReduceMax", "ReduceMin", "ReduceProd",
             "ReduceL2"):
    _reg(_red, OpKind.REDUCTION, min_inputs=1, max_inputs=2,
         attributes=("axes", "keepdims"))
_reg("ArgMax", OpKind.REDUCTION, attributes=("axis", "keepdims"))
_reg("ArgMin", OpKind.REDUCTION, attributes=("axis", "keepdims"))
_reg("CumSum", OpKind.REDUCTION, min_inputs=2, max_inputs=2)
_reg("TopK", OpKind.REDUCTION, min_inputs=2, max_inputs=2, num_outputs=2,
     attributes=("axis", "largest", "sorted"))

# ---------------------------------------------------------------------------
# Concatenation / splitting
# ---------------------------------------------------------------------------
_reg("Concat", OpKind.CONCAT, min_inputs=1, max_inputs=None, attributes=("axis",))
_reg("Split", OpKind.CONCAT, min_inputs=1, max_inputs=2, num_outputs=-1,
     attributes=("axis", "split"))

# ---------------------------------------------------------------------------
# Data movement / indexing
# ---------------------------------------------------------------------------
_reg("Reshape", OpKind.MOVEMENT, min_inputs=1, max_inputs=2, attributes=("shape",))
_reg("Transpose", OpKind.MOVEMENT, attributes=("perm",))
_reg("Flatten", OpKind.MOVEMENT, attributes=("axis",))
_reg("Squeeze", OpKind.MOVEMENT, min_inputs=1, max_inputs=2, attributes=("axes",))
_reg("Unsqueeze", OpKind.MOVEMENT, min_inputs=1, max_inputs=2, attributes=("axes",))
_reg("Slice", OpKind.MOVEMENT, min_inputs=1, max_inputs=5,
     attributes=("starts", "ends", "axes", "steps"))
_reg("Gather", OpKind.MOVEMENT, min_inputs=2, max_inputs=2, attributes=("axis",))
_reg("GatherElements", OpKind.MOVEMENT, min_inputs=2, max_inputs=2, attributes=("axis",))
_reg("ScatterND", OpKind.MOVEMENT, min_inputs=3, max_inputs=3)
_reg("Expand", OpKind.MOVEMENT, min_inputs=2, max_inputs=2)
_reg("Tile", OpKind.MOVEMENT, min_inputs=2, max_inputs=2)
_reg("Pad", OpKind.MOVEMENT, min_inputs=1, max_inputs=3,
     attributes=("pads", "mode", "value"))
_reg("DepthToSpace", OpKind.MOVEMENT, attributes=("blocksize", "mode"))
_reg("SpaceToDepth", OpKind.MOVEMENT, attributes=("blocksize",))
_reg("Resize", OpKind.RESIZE, min_inputs=1, max_inputs=4,
     attributes=("mode", "scales", "coordinate_transformation_mode"))
_reg("Upsample", OpKind.RESIZE, min_inputs=1, max_inputs=2, attributes=("mode", "scales"))

# ---------------------------------------------------------------------------
# Metadata / constants / casting
# ---------------------------------------------------------------------------
_reg("Shape", OpKind.SHAPE, doc="Returns the shape of its input as an int64 tensor.")
_reg("Size", OpKind.SHAPE)
_reg("Constant", OpKind.SHAPE, min_inputs=0, max_inputs=0, attributes=("value",))
_reg("ConstantOfShape", OpKind.SHAPE, min_inputs=1, max_inputs=1, attributes=("value",))
_reg("Range", OpKind.SHAPE, min_inputs=3, max_inputs=3)
_reg("Cast", OpKind.SHAPE, attributes=("to",))
_reg("NonZero", OpKind.SHAPE)
_reg("OneHot", OpKind.SHAPE, min_inputs=3, max_inputs=3, attributes=("axis",))

# ---------------------------------------------------------------------------
# Control / no-ops
# ---------------------------------------------------------------------------
_reg("Identity", OpKind.CONTROL)
_reg("Dropout", OpKind.CONTROL, min_inputs=1, max_inputs=3, num_outputs=2,
     attributes=("ratio",),
     doc="Inference-mode dropout is a pass-through (mask output unused).")

# ---------------------------------------------------------------------------
# Embedding-style lookups (BERT)
# ---------------------------------------------------------------------------
_reg("EmbeddingLookup", OpKind.EMBEDDING, min_inputs=2, max_inputs=2,
     doc="Table lookup: weights[indices] (Gather specialization for NLP models).")
