"""Low-level numpy helpers shared by the operator implementations.

Following the HPC-Python guidance used for this project, the hot paths
(convolution, pooling) avoid Python-level loops over pixels: convolution is
lowered to an im2col transform followed by a single GEMM, and pooling uses
a strided sliding-window view so the reduction happens inside numpy.

The helpers here support **destination passing**: callers that already own
correctly sized buffers (the planned execution engine's arena, or a
:class:`Workspace`) pass them via ``out=`` so the steady state allocates
nothing.  With ``out=None`` behaviour is identical to the allocating path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class Workspace:
    """Reusable scratch-buffer provider for destination-passing operators.

    ``take(shape, dtype)`` leases an *uninitialized* buffer; ``reset()``
    returns every leased buffer to the internal ``(shape, dtype)`` pools.
    Two ``take`` calls between resets always return distinct buffers, so an
    operator can safely hold several same-shaped scratch arrays at once.

    Operators that accept ``workspace=`` reset it before returning, which
    means one :class:`Workspace` can serve a whole inference loop with a
    bounded, steady-state set of buffers::

        ws = Workspace()
        for batch in batches:
            y = F.conv2d(batch, w, out=y, workspace=ws)   # zero-realloc once warm

    The planned execution engine substitutes an arena-backed provider with
    the same ``take``/``reset`` protocol so scratch buffers are shared
    across nodes by slot.
    """

    __slots__ = ("_pools", "_taken", "allocations", "reuses")

    def __init__(self) -> None:
        self._pools: Dict[Tuple, List[np.ndarray]] = {}
        self._taken: List[np.ndarray] = []
        self.allocations = 0
        self.reuses = 0

    def take(self, shape: Sequence[int], dtype=np.float32) -> np.ndarray:
        key = (tuple(int(s) for s in shape), np.dtype(dtype))
        pool = self._pools.get(key)
        if pool:
            buffer = pool.pop()
            self.reuses += 1
        else:
            buffer = np.empty(key[0], key[1])
            self.allocations += 1
        self._taken.append(buffer)
        return buffer

    def reset(self) -> None:
        taken, self._taken = self._taken, []
        for buffer in taken:
            self._pools.setdefault((buffer.shape, buffer.dtype), []).append(buffer)

    def stats(self) -> Dict[str, int]:
        return {
            "allocations": self.allocations,
            "reuses": self.reuses,
            "slots": len(self._pools),
            "pooled": sum(len(pool) for pool in self._pools.values()),
        }


def scratch(workspace: Optional[Workspace], shape: Sequence[int],
            dtype=np.float32) -> np.ndarray:
    """A scratch buffer from ``workspace``, or a fresh one when it is None."""
    if workspace is None:
        return np.empty(tuple(int(s) for s in shape), dtype)
    return workspace.take(shape, dtype)


def reset_workspace(workspace: Optional[Workspace]) -> None:
    """Return every leased scratch buffer to ``workspace`` (None-safe)."""
    if workspace is not None:
        workspace.reset()


def pad_nchw(x: np.ndarray, pads: Sequence[int], value: float = 0.0,
             out: Optional[np.ndarray] = None) -> np.ndarray:
    """Pad an NCHW tensor with an ONNX-style ``[top, left, bottom, right]`` spec.

    With ``out=`` the padded tensor is written into the caller-owned buffer
    (which must have the padded shape) instead of allocating via ``np.pad``.
    """
    top, left, bottom, right = (int(p) for p in pads)
    if top == left == bottom == right == 0:
        if out is None:
            return x
        np.copyto(out, x)
        return out
    if out is None:
        return np.pad(
            x,
            ((0, 0), (0, 0), (top, bottom), (left, right)),
            mode="constant",
            constant_values=value,
        )
    n, c, h, w = x.shape
    if out.shape != (n, c, h + top + bottom, w + left + right):
        raise ValueError(
            f"pad_nchw out buffer has shape {out.shape}, expected "
            f"{(n, c, h + top + bottom, w + left + right)}")
    out.fill(value)
    out[:, :, top:top + h, left:left + w] = x
    return out


def padded_shape(shape: Sequence[int], pads: Sequence[int]) -> Tuple[int, ...]:
    """The NCHW shape produced by :func:`pad_nchw` for a given pad spec."""
    n, c, h, w = (int(s) for s in shape)
    top, left, bottom, right = (int(p) for p in pads)
    return (n, c, h + top + bottom, w + left + right)


def conv_output_hw(
    spatial: Tuple[int, int],
    kernel: Tuple[int, int],
    strides: Tuple[int, int],
    pads: Sequence[int],
    dilations: Tuple[int, int] = (1, 1),
) -> Tuple[int, int]:
    """Output spatial size of a convolution/pooling window sweep."""
    h, w = spatial
    kh, kw = kernel
    sh, sw = strides
    dh, dw = dilations
    top, left, bottom, right = (int(p) for p in pads)
    eff_kh = dh * (kh - 1) + 1
    eff_kw = dw * (kw - 1) + 1
    oh = (h + top + bottom - eff_kh) // sh + 1
    ow = (w + left + right - eff_kw) // sw + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(
            f"kernel {kernel} with strides {strides} does not fit input of "
            f"spatial size {(h, w)} (pads {list(pads)})")
    return oh, ow


def sliding_windows(
    x: np.ndarray,
    kernel: Tuple[int, int],
    strides: Tuple[int, int],
    dilations: Tuple[int, int] = (1, 1),
) -> np.ndarray:
    """Return a strided view of shape (N, C, OH, OW, KH, KW) over an NCHW tensor.

    The view shares storage with ``x`` (no copy); callers must not write to
    it.  ``x`` must already be padded.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = strides
    dh, dw = dilations
    eff_kh = dh * (kh - 1) + 1
    eff_kw = dw * (kw - 1) + 1
    oh = (h - eff_kh) // sh + 1
    ow = (w - eff_kw) // sw + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(
            f"kernel {kernel} with strides {strides} does not fit input of spatial size {(h, w)}"
        )
    sn, sc, sh_b, sw_b = x.strides
    shape = (n, c, oh, ow, kh, kw)
    strides_b = (sn, sc, sh_b * sh, sw_b * sw, sh_b * dh, sw_b * dw)
    return np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides_b, writeable=False)


def im2col(
    x: np.ndarray,
    kernel: Tuple[int, int],
    strides: Tuple[int, int],
    pads: Sequence[int],
    dilations: Tuple[int, int] = (1, 1),
    out: Optional[np.ndarray] = None,
    pad_out: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Lower an NCHW tensor to the im2col matrix used for GEMM convolution.

    Returns ``(cols, (oh, ow))`` where ``cols`` has shape
    ``(N * OH * OW, C * KH * KW)``.  With ``out=`` the columns are
    materialized directly into the caller-owned (contiguous) matrix and
    ``pad_out=`` receives the padded input, so the lowering allocates
    nothing.
    """
    x_p = pad_nchw(x, pads, out=pad_out)
    windows = sliding_windows(x_p, kernel, strides, dilations)
    n, c, oh, ow, kh, kw = windows.shape
    # (N, OH, OW, C, KH, KW) -> rows are output positions, columns the patch.
    patches = windows.transpose(0, 2, 3, 1, 4, 5)
    if out is None:
        return np.ascontiguousarray(patches.reshape(n * oh * ow, c * kh * kw)), (oh, ow)
    np.copyto(out.reshape(n, oh, ow, c, kh, kw), patches)
    return out, (oh, ow)


def normalize_pads(pads: Sequence[int]) -> List[int]:
    """Normalize a 2- or 4-element pad spec to ``[top, left, bottom, right]``."""
    pads = [int(p) for p in pads]
    if len(pads) == 2:
        return [pads[0], pads[1], pads[0], pads[1]]
    if len(pads) == 4:
        return pads
    raise ValueError(f"expected 2 or 4 pad values, got {pads}")


def as_pair(value) -> Tuple[int, int]:
    """Coerce an int or length-2 sequence into an ``(int, int)`` pair."""
    if isinstance(value, (list, tuple, np.ndarray)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def onnx_axis(axis: int, rank: int) -> int:
    """Normalize a possibly negative axis index."""
    if rank == 0:
        return 0
    return axis % rank
