"""Low-level numpy helpers shared by the operator implementations.

Following the HPC-Python guidance used for this project, the hot paths
(convolution, pooling) avoid Python-level loops over pixels: convolution is
lowered to an im2col transform followed by a single GEMM, and pooling uses
a strided sliding-window view so the reduction happens inside numpy.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def pad_nchw(x: np.ndarray, pads: Sequence[int], value: float = 0.0) -> np.ndarray:
    """Pad an NCHW tensor with an ONNX-style ``[top, left, bottom, right]`` spec."""
    top, left, bottom, right = (int(p) for p in pads)
    if top == left == bottom == right == 0:
        return x
    return np.pad(
        x,
        ((0, 0), (0, 0), (top, bottom), (left, right)),
        mode="constant",
        constant_values=value,
    )


def sliding_windows(
    x: np.ndarray,
    kernel: Tuple[int, int],
    strides: Tuple[int, int],
    dilations: Tuple[int, int] = (1, 1),
) -> np.ndarray:
    """Return a strided view of shape (N, C, OH, OW, KH, KW) over an NCHW tensor.

    The view shares storage with ``x`` (no copy); callers must not write to
    it.  ``x`` must already be padded.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = strides
    dh, dw = dilations
    eff_kh = dh * (kh - 1) + 1
    eff_kw = dw * (kw - 1) + 1
    oh = (h - eff_kh) // sh + 1
    ow = (w - eff_kw) // sw + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(
            f"kernel {kernel} with strides {strides} does not fit input of spatial size {(h, w)}"
        )
    sn, sc, sh_b, sw_b = x.strides
    shape = (n, c, oh, ow, kh, kw)
    strides_b = (sn, sc, sh_b * sh, sw_b * sw, sh_b * dh, sw_b * dw)
    return np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides_b, writeable=False)


def im2col(
    x: np.ndarray,
    kernel: Tuple[int, int],
    strides: Tuple[int, int],
    pads: Sequence[int],
    dilations: Tuple[int, int] = (1, 1),
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Lower an NCHW tensor to the im2col matrix used for GEMM convolution.

    Returns ``(cols, (oh, ow))`` where ``cols`` has shape
    ``(N * OH * OW, C * KH * KW)``.
    """
    x_p = pad_nchw(x, pads)
    windows = sliding_windows(x_p, kernel, strides, dilations)
    n, c, oh, ow, kh, kw = windows.shape
    # (N, OH, OW, C, KH, KW) -> rows are output positions, columns the patch.
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols), (oh, ow)


def normalize_pads(pads: Sequence[int]) -> List[int]:
    """Normalize a 2- or 4-element pad spec to ``[top, left, bottom, right]``."""
    pads = [int(p) for p in pads]
    if len(pads) == 2:
        return [pads[0], pads[1], pads[0], pads[1]]
    if len(pads) == 4:
        return pads
    raise ValueError(f"expected 2 or 4 pad values, got {pads}")


def as_pair(value) -> Tuple[int, int]:
    """Coerce an int or length-2 sequence into an ``(int, int)`` pair."""
    if isinstance(value, (list, tuple, np.ndarray)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def onnx_axis(axis: int, rank: int) -> int:
    """Normalize a possibly negative axis index."""
    if rank == 0:
        return 0
    return axis % rank
