"""Reference interpreter for IR graphs.

:class:`GraphExecutor` executes a model node-by-node in topological order
using the numpy operators of :mod:`repro.runtime.functional`.  It serves
three purposes in the reproduction:

1. ground truth that Ramiel-generated sequential and parallel code is
   compared against in the tests,
2. the evaluation engine behind constant folding
   (:mod:`repro.passes.constant_folding`), and
3. the measurement probe used by :mod:`repro.runtime.profiler` to obtain
   per-op execution times for the schedule simulator.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

import repro.runtime.functional as F
from repro.graph.traversal import topological_sort_nodes
from repro.ir.model import Graph, Model
from repro.ir.node import OpNode


class ExecutionError(RuntimeError):
    """Raised when a node cannot be executed."""


_Handler = Callable[[OpNode, List[np.ndarray]], List[np.ndarray]]
_HANDLERS: Dict[str, _Handler] = {}


def _handler(op_type: str) -> Callable[[_Handler], _Handler]:
    def wrap(fn: _Handler) -> _Handler:
        _HANDLERS[op_type] = fn
        return fn

    return wrap


def supported_ops() -> List[str]:
    """Operator types the executor can run."""
    return sorted(_HANDLERS)


# ---------------------------------------------------------------------------
# Handlers
# ---------------------------------------------------------------------------
@_handler("Conv")
def _run_conv(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    x, w = inputs[0], inputs[1]
    bias = inputs[2] if len(inputs) > 2 else None
    return [F.conv2d(
        x, w, bias,
        strides=node.get_attr("strides", [1, 1]),
        pads=node.get_attr("pads", [0, 0, 0, 0]),
        dilations=node.get_attr("dilations", [1, 1]),
        group=node.get_attr("group", 1),
    )]


@_handler("ConvTranspose")
def _run_conv_transpose(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    x, w = inputs[0], inputs[1]
    bias = inputs[2] if len(inputs) > 2 else None
    return [F.conv_transpose2d(
        x, w, bias,
        strides=node.get_attr("strides", [1, 1]),
        pads=node.get_attr("pads", [0, 0, 0, 0]),
        output_padding=node.get_attr("output_padding", [0, 0]),
        group=node.get_attr("group", 1),
    )]


@_handler("MaxPool")
def _run_maxpool(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    return [F.max_pool2d(
        inputs[0],
        kernel=node.get_attr("kernel_shape", [1, 1]),
        strides=node.get_attr("strides", [1, 1]),
        pads=node.get_attr("pads", [0, 0, 0, 0]),
        ceil_mode=bool(node.get_attr("ceil_mode", 0)),
    )]


@_handler("AveragePool")
def _run_avgpool(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    return [F.avg_pool2d(
        inputs[0],
        kernel=node.get_attr("kernel_shape", [1, 1]),
        strides=node.get_attr("strides", [1, 1]),
        pads=node.get_attr("pads", [0, 0, 0, 0]),
        ceil_mode=bool(node.get_attr("ceil_mode", 0)),
        count_include_pad=bool(node.get_attr("count_include_pad", 0)),
    )]


_HANDLERS["GlobalAveragePool"] = lambda node, inputs: [F.global_avg_pool2d(inputs[0])]
_HANDLERS["GlobalMaxPool"] = lambda node, inputs: [F.global_max_pool2d(inputs[0])]

_HANDLERS["MatMul"] = lambda node, inputs: [F.matmul(inputs[0], inputs[1])]


@_handler("Gemm")
def _run_gemm(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    c = inputs[2] if len(inputs) > 2 else None
    return [F.gemm(
        inputs[0], inputs[1], c,
        alpha=float(node.get_attr("alpha", 1.0)),
        beta=float(node.get_attr("beta", 1.0)),
        trans_a=bool(node.get_attr("transA", 0)),
        trans_b=bool(node.get_attr("transB", 0)),
    )]


@_handler("Einsum")
def _run_einsum(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    return [F.einsum(node.get_attr("equation"), *inputs)]


@_handler("BatchNormalization")
def _run_batchnorm(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    return [F.batch_norm(inputs[0], inputs[1], inputs[2], inputs[3], inputs[4],
                         epsilon=float(node.get_attr("epsilon", 1e-5)))]


@_handler("LayerNormalization")
def _run_layernorm(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    bias = inputs[2] if len(inputs) > 2 else None
    return [F.layer_norm(inputs[0], inputs[1], bias,
                         axis=int(node.get_attr("axis", -1)),
                         epsilon=float(node.get_attr("epsilon", 1e-5)))]


@_handler("InstanceNormalization")
def _run_instancenorm(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    return [F.instance_norm(inputs[0], inputs[1], inputs[2],
                            epsilon=float(node.get_attr("epsilon", 1e-5)))]


# -- activations -------------------------------------------------------------
_SIMPLE_UNARY = {
    "Relu": F.relu,
    "Sigmoid": F.sigmoid,
    "Tanh": F.tanh,
    "Gelu": F.gelu,
    "Erf": F.erf,
    "Softplus": F.softplus,
    "HardSwish": F.hard_swish,
    "Mish": F.mish,
    "Sqrt": F.sqrt,
    "Exp": F.exp,
    "Log": F.log,
    "Neg": F.neg,
    "Abs": F.abs_,
    "Reciprocal": F.reciprocal,
    "Floor": F.floor,
    "Ceil": F.ceil,
    "Round": F.round_,
    "Sign": F.sign,
    "Cos": F.cos,
    "Sin": F.sin,
    "Not": F.logical_not,
    "Identity": lambda x: np.asarray(x),
}
for _name, _fn in _SIMPLE_UNARY.items():
    _HANDLERS[_name] = (lambda fn: (lambda node, inputs: [fn(inputs[0])]))(_fn)


@_handler("LeakyRelu")
def _run_leaky_relu(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    return [F.leaky_relu(inputs[0], alpha=float(node.get_attr("alpha", 0.01)))]


@_handler("Elu")
def _run_elu(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    return [F.elu(inputs[0], alpha=float(node.get_attr("alpha", 1.0)))]


@_handler("Selu")
def _run_selu(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    return [F.selu(inputs[0])]


@_handler("HardSigmoid")
def _run_hard_sigmoid(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    return [F.hard_sigmoid(inputs[0], alpha=float(node.get_attr("alpha", 0.2)),
                           beta=float(node.get_attr("beta", 0.5)))]


@_handler("PRelu")
def _run_prelu(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    return [F.prelu(inputs[0], inputs[1])]


@_handler("Clip")
def _run_clip(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    lo = inputs[1] if len(inputs) > 1 else node.get_attr("min")
    hi = inputs[2] if len(inputs) > 2 else node.get_attr("max")
    lo = None if lo is None else float(np.asarray(lo))
    hi = None if hi is None else float(np.asarray(hi))
    return [F.clip(inputs[0], lo, hi)]


@_handler("Softmax")
def _run_softmax(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    return [F.softmax(inputs[0], axis=int(node.get_attr("axis", -1)))]


@_handler("LogSoftmax")
def _run_log_softmax(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    return [F.log_softmax(inputs[0], axis=int(node.get_attr("axis", -1)))]


# -- binary elementwise ------------------------------------------------------
_SIMPLE_BINARY = {
    "Add": F.add, "Sub": F.sub, "Mul": F.mul, "Div": F.div, "Pow": F.pow_,
    "Mod": F.mod, "Min": F.minimum, "Max": F.maximum, "Equal": F.equal,
    "Greater": F.greater, "Less": F.less, "GreaterOrEqual": F.greater_or_equal,
    "LessOrEqual": F.less_or_equal, "And": F.logical_and, "Or": F.logical_or,
    "Xor": F.logical_xor,
}
for _name, _fn in _SIMPLE_BINARY.items():
    _HANDLERS[_name] = (lambda fn: (lambda node, inputs: [fn(inputs[0], inputs[1])]))(_fn)

_HANDLERS["Where"] = lambda node, inputs: [F.where(inputs[0], inputs[1], inputs[2])]


# -- reductions ---------------------------------------------------------------
def _reduce_axes(node: OpNode, inputs: List[np.ndarray]) -> Optional[List[int]]:
    axes = node.get_attr("axes")
    if axes is None and len(inputs) > 1:
        axes = [int(v) for v in np.atleast_1d(inputs[1])]
    return axes


def _make_reduce(fn) -> _Handler:
    def run(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
        return [fn(inputs[0], axes=_reduce_axes(node, inputs),
                   keepdims=bool(node.get_attr("keepdims", 1)))]

    return run


_HANDLERS["ReduceMean"] = _make_reduce(F.reduce_mean)
_HANDLERS["ReduceSum"] = _make_reduce(F.reduce_sum)
_HANDLERS["ReduceMax"] = _make_reduce(F.reduce_max)
_HANDLERS["ReduceMin"] = _make_reduce(F.reduce_min)
_HANDLERS["ReduceProd"] = _make_reduce(F.reduce_prod)
_HANDLERS["ReduceL2"] = _make_reduce(F.reduce_l2)


@_handler("ArgMax")
def _run_argmax(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    return [F.argmax(inputs[0], axis=int(node.get_attr("axis", 0)),
                     keepdims=bool(node.get_attr("keepdims", 1)))]


@_handler("ArgMin")
def _run_argmin(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    return [F.argmin(inputs[0], axis=int(node.get_attr("axis", 0)),
                     keepdims=bool(node.get_attr("keepdims", 1)))]


@_handler("CumSum")
def _run_cumsum(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    axis = int(np.asarray(inputs[1])) if len(inputs) > 1 else 0
    return [F.cumsum(inputs[0], axis=axis)]


@_handler("TopK")
def _run_topk(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    k = int(np.atleast_1d(inputs[1])[0])
    values, idx = F.topk(inputs[0], k, axis=int(node.get_attr("axis", -1)),
                         largest=bool(node.get_attr("largest", 1)),
                         sorted_=bool(node.get_attr("sorted", 1)))
    return [values, idx]


# -- concat / split / movement -----------------------------------------------
@_handler("Concat")
def _run_concat(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    return [F.concat(inputs, axis=int(node.get_attr("axis", 0)))]


@_handler("Split")
def _run_split(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    sizes = node.get_attr("split")
    if sizes is None and len(inputs) > 1:
        sizes = [int(v) for v in np.atleast_1d(inputs[1])]
    parts = len([o for o in node.outputs if o])
    return F.split(inputs[0], parts=None if sizes else parts, sizes=sizes,
                   axis=int(node.get_attr("axis", 0)))


@_handler("Reshape")
def _run_reshape(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    target = inputs[1] if len(inputs) > 1 else np.asarray(node.get_attr("shape"))
    return [F.reshape(inputs[0], target)]


@_handler("Transpose")
def _run_transpose(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    return [F.transpose(inputs[0], node.get_attr("perm"))]


@_handler("Flatten")
def _run_flatten(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    return [F.flatten(inputs[0], axis=int(node.get_attr("axis", 1)))]


@_handler("Squeeze")
def _run_squeeze(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    axes = node.get_attr("axes")
    if axes is None and len(inputs) > 1:
        axes = [int(v) for v in np.atleast_1d(inputs[1])]
    return [F.squeeze(inputs[0], axes)]


@_handler("Unsqueeze")
def _run_unsqueeze(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    axes = node.get_attr("axes")
    if axes is None and len(inputs) > 1:
        axes = [int(v) for v in np.atleast_1d(inputs[1])]
    return [F.unsqueeze(inputs[0], axes)]


@_handler("Slice")
def _run_slice(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    def pick(attr_name: str, idx: int):
        value = node.get_attr(attr_name)
        if value is None and len(inputs) > idx:
            value = [int(v) for v in np.atleast_1d(inputs[idx])]
        return value

    starts = pick("starts", 1)
    ends = pick("ends", 2)
    axes = pick("axes", 3)
    steps = pick("steps", 4)
    return [F.slice_(inputs[0], starts, ends, axes, steps)]


@_handler("Gather")
def _run_gather(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    return [F.gather(inputs[0], inputs[1], axis=int(node.get_attr("axis", 0)))]


@_handler("GatherElements")
def _run_gather_elements(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    return [F.gather_elements(inputs[0], inputs[1], axis=int(node.get_attr("axis", 0)))]


_HANDLERS["EmbeddingLookup"] = lambda node, inputs: [F.gather(inputs[0], inputs[1], axis=0)]
_HANDLERS["Expand"] = lambda node, inputs: [F.expand(inputs[0], inputs[1])]
_HANDLERS["Tile"] = lambda node, inputs: [F.tile(inputs[0], inputs[1])]


@_handler("Pad")
def _run_pad(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    pads = node.get_attr("pads")
    if pads is None and len(inputs) > 1:
        pads = [int(v) for v in np.atleast_1d(inputs[1])]
    value = node.get_attr("value", 0.0)
    if len(inputs) > 2:
        value = float(np.asarray(inputs[2]))
    return [F.pad(inputs[0], pads, mode=node.get_attr("mode", "constant"), value=value)]


@_handler("Resize")
def _run_resize(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    scales = node.get_attr("scales")
    if scales is None and len(inputs) > 2:
        scales = [float(v) for v in np.atleast_1d(inputs[2])]
    return [F.resize_nearest(inputs[0], scales)]


_HANDLERS["Upsample"] = _HANDLERS["Resize"]


@_handler("DepthToSpace")
def _run_depth_to_space(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    return [F.depth_to_space(inputs[0], int(node.get_attr("blocksize", 2)),
                             mode=node.get_attr("mode", "DCR"))]


@_handler("SpaceToDepth")
def _run_space_to_depth(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    return [F.space_to_depth(inputs[0], int(node.get_attr("blocksize", 2)))]


# -- metadata ops --------------------------------------------------------------
_HANDLERS["Shape"] = lambda node, inputs: [F.shape_of(inputs[0])]
_HANDLERS["Size"] = lambda node, inputs: [F.size_of(inputs[0])]


@_handler("Cast")
def _run_cast(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    return [F.cast(inputs[0], to=node.get_attr("to", "float32"))]


@_handler("Constant")
def _run_constant(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    value = node.get_attr("value")
    if value is None:
        raise ExecutionError(f"Constant node {node.name} has no value attribute")
    return [np.asarray(value)]


@_handler("ConstantOfShape")
def _run_constant_of_shape(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    return [F.constant_of_shape(inputs[0], value=node.get_attr("value", 0.0))]


@_handler("Range")
def _run_range(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    start, limit, delta = (np.asarray(v).item() for v in inputs[:3])
    return [np.arange(start, limit, delta)]


@_handler("OneHot")
def _run_one_hot(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    depth = int(np.atleast_1d(inputs[1])[0])
    values = [float(v) for v in np.atleast_1d(inputs[2])] if len(inputs) > 2 else (0.0, 1.0)
    return [F.one_hot(inputs[0], depth, values, axis=int(node.get_attr("axis", -1)))]


@_handler("NonZero")
def _run_nonzero(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    return [np.asarray(np.nonzero(inputs[0]), dtype=np.int64)]


@_handler("Dropout")
def _run_dropout(node: OpNode, inputs: List[np.ndarray]) -> List[np.ndarray]:
    x = np.asarray(inputs[0])
    return [x, np.ones_like(x, dtype=bool)]


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------
class GraphExecutor:
    """Execute an IR model with the numpy runtime.

    Parameters
    ----------
    model:
        An IR :class:`Model` or bare :class:`Graph`.
    check_supported:
        When True (default), raise immediately for ops with no handler so
        errors surface at construction rather than mid-run.
    """

    def __init__(self, model, check_supported: bool = True) -> None:
        self.graph: Graph = model.graph if isinstance(model, Model) else model
        self._order = topological_sort_nodes(self.graph)
        if check_supported:
            missing = sorted({n.op_type for n in self._order} - set(_HANDLERS))
            if missing:
                raise ExecutionError(f"no handlers for ops: {missing}")

    # ------------------------------------------------------------------
    def run(
        self,
        inputs: Mapping[str, np.ndarray],
        outputs: Optional[Sequence[str]] = None,
        trace_hook: Optional[Callable[[OpNode, float], None]] = None,
    ) -> Dict[str, np.ndarray]:
        """Run the graph and return the requested outputs (graph outputs by default).

        Parameters
        ----------
        inputs:
            Mapping of graph-input name to numpy array.
        outputs:
            Names of values to return; defaults to the graph outputs.
        trace_hook:
            Optional callable invoked as ``trace_hook(node, seconds)`` after
            each node (used by the profiler).
        """
        values: Dict[str, np.ndarray] = {}
        for name, array in self.graph.initializers.items():
            values[name] = array
        for name in self.graph.input_names:
            if name not in inputs:
                raise ExecutionError(f"missing graph input {name!r}")
        for name, array in inputs.items():
            values[name] = np.asarray(array)

        for node in self._order:
            handler = _HANDLERS.get(node.op_type)
            if handler is None:
                raise ExecutionError(f"no handler for op {node.op_type!r} (node {node.name})")
            try:
                args = [values[name] for name in node.present_inputs]
            except KeyError as exc:
                raise ExecutionError(
                    f"node {node.name} ({node.op_type}) requires value {exc} "
                    "which has not been computed"
                ) from exc
            # Timing is only measured when a trace hook is attached; the
            # untraced hot path skips both perf_counter() calls per node.
            start = time.perf_counter() if trace_hook is not None else 0.0
            try:
                results = handler(node, args)
            except ExecutionError:
                raise
            except Exception as exc:  # noqa: BLE001 - augment with node context
                raise ExecutionError(
                    f"execution of node {node.name} ({node.op_type}) failed: {exc}"
                ) from exc
            if trace_hook is not None:
                trace_hook(node, time.perf_counter() - start)
            out_names = [o for o in node.outputs if o]
            for name, value in zip(out_names, results):
                values[name] = value

        wanted = list(outputs) if outputs is not None else self.graph.output_names
        missing = [name for name in wanted if name not in values]
        if missing:
            raise ExecutionError(f"requested outputs never produced: {missing}")
        return {name: values[name] for name in wanted}


def execute_model(model, inputs: Mapping[str, np.ndarray],
                  outputs: Optional[Sequence[str]] = None) -> Dict[str, np.ndarray]:
    """One-shot convenience wrapper around :class:`GraphExecutor`."""
    return GraphExecutor(model).run(inputs, outputs=outputs)
