"""Message-passing channels used by generated parallel code.

The generated cluster functions only assume that ``channels[name]`` supports
``put(obj)`` and ``get()``.  Three factories are provided:

* :func:`make_process_channels` — ``multiprocessing.Queue`` per channel (the
  paper's configuration: clusters are separate Python processes because of
  the GIL),
* :func:`make_thread_channels` — ``queue.Queue`` per channel,
* :func:`make_serial_channels` — unbounded in-process FIFOs for executing
  the clusters one after another on a single thread (used to test that the
  generated code is semantically equivalent to the sequential module even
  without any parallel runtime).

Channels can optionally be wrapped for observability
(:func:`instrument_channels`): an :class:`InstrumentedChannel` counts every
``put``/``get``, the payload bytes it moved and the nanoseconds the
hand-off call took, accumulating into a :class:`ChannelTelemetry` the warm
worker pools publish into the engine's ``MetricsRegistry``.  The wrapper is
opt-in — the generated code's hot path sees plain queues unless a tracer
was attached — and adds only the counter updates when active.
"""

from __future__ import annotations

import collections
import multiprocessing
import queue
import threading
import time
from typing import Dict, Iterable, Mapping


class SerialChannel:
    """A trivial FIFO with the Queue ``put``/``get`` interface.

    ``get`` on an empty serial channel raises immediately instead of
    blocking: in the serial schedule every value must have been produced by
    an earlier cluster, so an empty channel indicates an ordering bug and
    should fail loudly rather than deadlock.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._items = collections.deque()

    def put(self, item) -> None:
        """Append an item to the FIFO."""
        self._items.append(item)

    def get(self):
        """Pop the oldest item; raises ``LookupError`` when empty."""
        if not self._items:
            raise LookupError(
                f"serial channel {self.name!r} is empty — cluster execution order "
                "does not satisfy this dependence"
            )
        return self._items.popleft()

    def empty(self) -> bool:
        """True when no items are queued."""
        return not self._items


def make_serial_channels(names: Iterable[str]) -> Dict[str, SerialChannel]:
    """In-process FIFOs for serial cluster-by-cluster execution."""
    return {name: SerialChannel(name) for name in names}


def make_thread_channels(names: Iterable[str]) -> Dict[str, "queue.Queue"]:
    """Blocking thread-safe queues for the thread backend."""
    return {name: queue.Queue() for name in names}


def make_process_channels(names: Iterable[str], ctx=None) -> Dict[str, object]:
    """Multiprocessing queues for the process backend (the paper's runtime)."""
    ctx = ctx or multiprocessing.get_context()
    return {name: ctx.Queue() for name in names}


# ---------------------------------------------------------------------------
# Channel observability
# ---------------------------------------------------------------------------
def payload_nbytes(obj) -> int:
    """Approximate wire size of a channel payload, in bytes.

    Arrays report their exact buffer size; containers recurse.  This
    deliberately avoids re-pickling the payload (the real wire encoding for
    process channels) because measuring would then cost as much as the
    hand-off it measures; for the tensor-dominated payloads the generated
    code ships, the array bytes *are* the traffic.
    """
    nbytes = getattr(obj, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(obj, dict):
        return sum(payload_nbytes(v) for v in obj.values())
    if isinstance(obj, (list, tuple)):
        return sum(payload_nbytes(v) for v in obj)
    if isinstance(obj, (bytes, bytearray, str)):
        return len(obj)
    return 0


class ChannelTelemetry:
    """Thread-safe accumulator of channel hand-off counters.

    One telemetry object aggregates across every channel it instruments;
    the worker pools ship per-worker snapshots back with run results and
    publish the aggregate into the engine's ``MetricsRegistry``.  For
    process channels ``put`` returns once the payload is enqueued to the
    feeder thread, so ``put_ns`` measures the producer-visible hand-off
    cost (serialization happens on the feeder); ``get_ns`` includes the
    consumer-side deserialization and any blocking wait.
    """

    __slots__ = ("_lock", "puts", "gets", "put_bytes", "get_bytes",
                 "put_ns", "get_ns")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.puts = 0
        self.gets = 0
        self.put_bytes = 0
        self.get_bytes = 0
        self.put_ns = 0
        self.get_ns = 0

    def record_put(self, nbytes: int, elapsed_ns: int) -> None:
        """Account one ``put`` of ``nbytes`` taking ``elapsed_ns``."""
        with self._lock:
            self.puts += 1
            self.put_bytes += nbytes
            self.put_ns += elapsed_ns

    def record_get(self, nbytes: int, elapsed_ns: int) -> None:
        """Account one ``get`` of ``nbytes`` taking ``elapsed_ns``."""
        with self._lock:
            self.gets += 1
            self.get_bytes += nbytes
            self.get_ns += elapsed_ns

    def snapshot(self) -> Dict[str, int]:
        """The current counters as a plain dict (picklable)."""
        with self._lock:
            return {"puts": self.puts, "gets": self.gets,
                    "put_bytes": self.put_bytes, "get_bytes": self.get_bytes,
                    "put_ns": self.put_ns, "get_ns": self.get_ns}

    @staticmethod
    def delta(after: Mapping[str, int], before: Mapping[str, int]) -> Dict[str, int]:
        """``after - before``, field-wise (for per-job accounting)."""
        return {key: after[key] - before.get(key, 0) for key in after}


class InstrumentedChannel:
    """A channel proxy accounting puts/gets into a :class:`ChannelTelemetry`.

    Exposes exactly the ``put``/``get`` (plus ``empty``) surface the
    generated cluster functions assume, so it can wrap any of the three
    channel kinds transparently.
    """

    __slots__ = ("_channel", "_telemetry", "name")

    def __init__(self, channel, telemetry: ChannelTelemetry,
                 name: str = "") -> None:
        self._channel = channel
        self._telemetry = telemetry
        self.name = name

    def put(self, item) -> None:
        start = time.perf_counter_ns()
        self._channel.put(item)
        self._telemetry.record_put(payload_nbytes(item),
                                   time.perf_counter_ns() - start)

    def get(self):
        start = time.perf_counter_ns()
        item = self._channel.get()
        self._telemetry.record_get(payload_nbytes(item),
                                   time.perf_counter_ns() - start)
        return item

    def empty(self) -> bool:
        return self._channel.empty()


def instrument_channels(channels: Mapping[str, object],
                        telemetry: ChannelTelemetry) -> Dict[str, InstrumentedChannel]:
    """Wrap every channel in a dict with hand-off accounting."""
    return {name: InstrumentedChannel(channel, telemetry, name=name)
            for name, channel in channels.items()}
