"""Message-passing channels used by generated parallel code.

The generated cluster functions only assume that ``channels[name]`` supports
``put(obj)`` and ``get()``.  Three factories are provided:

* :func:`make_process_channels` — ``multiprocessing.Queue`` per channel (the
  paper's configuration: clusters are separate Python processes because of
  the GIL),
* :func:`make_thread_channels` — ``queue.Queue`` per channel,
* :func:`make_serial_channels` — unbounded in-process FIFOs for executing
  the clusters one after another on a single thread (used to test that the
  generated code is semantically equivalent to the sequential module even
  without any parallel runtime).
"""

from __future__ import annotations

import collections
import multiprocessing
import queue
from typing import Dict, Iterable, Mapping


class SerialChannel:
    """A trivial FIFO with the Queue ``put``/``get`` interface.

    ``get`` on an empty serial channel raises immediately instead of
    blocking: in the serial schedule every value must have been produced by
    an earlier cluster, so an empty channel indicates an ordering bug and
    should fail loudly rather than deadlock.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._items = collections.deque()

    def put(self, item) -> None:
        """Append an item to the FIFO."""
        self._items.append(item)

    def get(self):
        """Pop the oldest item; raises ``LookupError`` when empty."""
        if not self._items:
            raise LookupError(
                f"serial channel {self.name!r} is empty — cluster execution order "
                "does not satisfy this dependence"
            )
        return self._items.popleft()

    def empty(self) -> bool:
        """True when no items are queued."""
        return not self._items


def make_serial_channels(names: Iterable[str]) -> Dict[str, SerialChannel]:
    """In-process FIFOs for serial cluster-by-cluster execution."""
    return {name: SerialChannel(name) for name in names}


def make_thread_channels(names: Iterable[str]) -> Dict[str, "queue.Queue"]:
    """Blocking thread-safe queues for the thread backend."""
    return {name: queue.Queue() for name in names}


def make_process_channels(names: Iterable[str], ctx=None) -> Dict[str, object]:
    """Multiprocessing queues for the process backend (the paper's runtime)."""
    ctx = ctx or multiprocessing.get_context()
    return {name: ctx.Queue() for name in names}
