"""Intra-operator thread parallelism.

The paper enables "intra-op parallelism" as a downstream optimization by
varying the number of OpenMP threads PyTorch uses (Table V).  Our numpy
runtime mirrors that with a module-level thread-count knob plus a helper
that splits the batch (or another leading dimension) of an operator across
a thread pool.  Numpy releases the GIL inside its C loops and inside BLAS,
so this provides genuine concurrency for the heavy operators.

Usage::

    from repro.runtime import intra_op_threads, set_num_threads

    set_num_threads(4)                  # like OMP_NUM_THREADS=4
    with intra_op_threads(2):           # scoped override
        y = F.conv2d(x, w)
"""

from __future__ import annotations

import contextlib
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterator, List, Optional

import numpy as np

_state = threading.local()
_DEFAULT_NUM_THREADS = 1
_POOL_LOCK = threading.Lock()
_POOLS: dict = {}


def get_num_threads() -> int:
    """Current intra-op thread count (thread-local override or global default)."""
    return getattr(_state, "num_threads", _DEFAULT_NUM_THREADS)


def set_num_threads(num_threads: int) -> None:
    """Set the global default intra-op thread count (like ``OMP_NUM_THREADS``)."""
    global _DEFAULT_NUM_THREADS
    if num_threads < 1:
        raise ValueError("num_threads must be >= 1")
    _DEFAULT_NUM_THREADS = int(num_threads)


@contextlib.contextmanager
def intra_op_threads(num_threads: int) -> Iterator[None]:
    """Scoped override of the intra-op thread count for the calling thread."""
    if num_threads < 1:
        raise ValueError("num_threads must be >= 1")
    previous = getattr(_state, "num_threads", None)
    _state.num_threads = int(num_threads)
    try:
        yield
    finally:
        if previous is None:
            del _state.num_threads
        else:
            _state.num_threads = previous


def _pool(workers: int) -> ThreadPoolExecutor:
    """Return a shared thread pool with the requested worker count."""
    with _POOL_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(max_workers=workers,
                                      thread_name_prefix=f"intraop{workers}")
            _POOLS[workers] = pool
        return pool


def parallel_over_batch(fn: Callable[[np.ndarray], np.ndarray], x: np.ndarray) -> np.ndarray:
    """Apply ``fn`` to chunks of the leading (batch) dimension in parallel.

    With one intra-op thread (the default, matching the paper's batch-size-1
    inference focus) this is a plain call.  With more threads and a
    splittable batch, the work is sharded across the shared pool and the
    results concatenated.  ``fn`` must be pure and thread-safe.
    """
    workers = get_num_threads()
    n = x.shape[0] if x.ndim > 0 else 1
    if workers <= 1 or n <= 1:
        return fn(x)
    workers = min(workers, n)
    chunks = np.array_split(np.arange(n), workers)
    pool = _pool(workers)
    futures = [pool.submit(fn, x[idx[0]:idx[-1] + 1]) for idx in chunks if len(idx)]
    parts: List[np.ndarray] = [f.result() for f in futures]
    return np.concatenate(parts, axis=0)


def parallel_map(fn: Callable, items: List, num_threads: Optional[int] = None) -> List:
    """Map ``fn`` over ``items`` with the intra-op pool (ordered results)."""
    workers = num_threads if num_threads is not None else get_num_threads()
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    pool = _pool(min(workers, len(items)))
    return list(pool.map(fn, items))


def shutdown_pools() -> None:
    """Dispose of all shared pools (used by tests to avoid thread leaks)."""
    with _POOL_LOCK:
        for pool in _POOLS.values():
            pool.shutdown(wait=False)
        _POOLS.clear()
