"""Unified execution surface: compile once, bind buffers, run many.

Execution used to be scattered across ``RamielResult.run_planned``,
``ExecutionPlan.run``, ``GraphExecutor``, ``profile_model(engine=...)`` and
the serving engine's executor strings.  :func:`create_session` replaces that
zoo with one front door, modeled on ONNX Runtime's ``InferenceSession`` +
``IOBinding`` pattern:

* a :class:`Session` owns the compiled artifact (pipeline result, execution
  plan and buffer arena, or a warm worker pool) behind one executor name
  from :data:`EXECUTOR_REGISTRY` — the single registry every entry point
  (serving config, CLI flags, this module) validates against;
* :meth:`Session.run` executes a plain feed dict, whatever the executor;
* :meth:`Session.bind` returns an :class:`IOBinding`.  ``bind_input`` pins
  caller-owned staging buffers (the serving micro-batcher stacks request
  batches straight into them — no per-batch ``concatenate``), and
  ``bind_output`` threads caller-owned destinations through
  ``ExecutionPlan.run(feed, out=...)`` so graph outputs stop allocating
  per run;
* :meth:`Session.run_with_binding` executes a bound feed.  On a warm
  ``"plan"`` session the loop performs **zero** arena allocations and
  **zero** graph-output allocations — outputs land in place in the bound
  buffers (gated in ``benchmarks/test_execution_throughput.py``).

``"interp"`` sessions expose the exact same interface over the reference
interpreter, which is what the differential tests compare against; bound
outputs there are finalized by copy rather than written in place.

Example::

    import numpy as np
    from repro import create_session
    from repro.models import build_model

    session = create_session(build_model("squeezenet"))
    binding = session.bind()
    staging = binding.bind_input(
        "input", np.zeros((1, 3, 224, 224), np.float32))
    binding.bind_output("softmax_0_out")    # session-managed, reused buffer
    for request in stream:
        staging[...] = request              # refill the pinned buffer
        outputs = session.run_with_binding(binding)
        # outputs["softmax_0_out"] IS the bound buffer, written in place
        # (also available as binding.get_outputs() after the first run)
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.ir.model import Model
from repro.runtime.executor import GraphExecutor
from repro.runtime.plan import ExecutionPlan
from repro.runtime.worker_pool import WarmExecutorPool

__all__ = [
    "EXECUTOR_REGISTRY",
    "IOBinding",
    "Session",
    "create_session",
    "known_executors",
    "validate_executor",
]

#: The one registry of execution-surface names.  Every entry point that
#: accepts an executor string — :func:`create_session`, the serving
#: ``EngineConfig``, the CLI ``--executor`` flag — validates against this
#: table via :func:`validate_executor` instead of keeping its own list.
EXECUTOR_REGISTRY: Dict[str, str] = {
    "plan": "compile-once ExecutionPlan hot path (zero-realloc once warm)",
    "interp": "GraphExecutor reference interpreter (semantic ground truth)",
    "pool": "generated parallel module on a warm thread-backed worker pool",
    "process": "generated parallel module on warm forked worker processes",
}


def known_executors() -> Tuple[str, ...]:
    """The registered executor names, in registry order."""
    return tuple(EXECUTOR_REGISTRY)


def validate_executor(name: str, allowed: Optional[Sequence[str]] = None,
                      context: str = "executor") -> str:
    """Validate an executor name eagerly against the central registry.

    Raises :class:`ValueError` naming the known registry (and, when a
    caller supports only a subset, the subset) so a typo fails at
    configuration time instead of deep inside dispatch.
    """
    if name not in EXECUTOR_REGISTRY:
        raise ValueError(
            f"unknown {context} {name!r}; known executors: "
            f"{', '.join(EXECUTOR_REGISTRY)}")
    if allowed is not None and name not in allowed:
        raise ValueError(
            f"{context} {name!r} is not supported here; choose from: "
            f"{', '.join(allowed)} (full registry: "
            f"{', '.join(EXECUTOR_REGISTRY)})")
    return name


class IOBinding:
    """Pinned input/output buffers for one :class:`Session`.

    Created via :meth:`Session.bind`.  Input buffers are read directly by
    the executor (zero-copy staging: write new request data into a pinned
    buffer, or cheaply rebind a new array).  Output buffers are written in
    place by ``"plan"`` sessions; ``bind_output(name)`` without a buffer
    lets the session materialize a private, reused buffer on first run.

    A binding is not thread-safe: it describes one caller's buffers, and
    concurrent ``run_with_binding`` calls over the same binding would race
    on them.
    """

    def __init__(self, session: "Session") -> None:
        self._session = session
        self._inputs: Dict[str, np.ndarray] = {}
        self._outputs: Dict[str, Optional[np.ndarray]] = {}

    # ------------------------------------------------------------------
    def bind_input(self, name: str, buffer) -> np.ndarray:
        """Pin ``buffer`` as the staging array for graph input ``name``.

        The array is validated against the model's declared signature
        (leading/batch and ``None`` dims are free); the session reads it
        directly on every :meth:`Session.run_with_binding` call, so the
        caller can refill it between runs without rebinding.
        """
        session = self._session
        if name not in session.input_names:
            raise ValueError(
                f"model {session.model_name!r} has no input {name!r}; "
                f"inputs: {sorted(session.input_names)}")
        array = np.asarray(buffer)
        info = session._input_info.get(name)
        declared = getattr(info, "shape", None)
        if declared is not None:
            if array.ndim != len(declared):
                raise ValueError(
                    f"input {name!r}: expected {len(declared)} dimensions "
                    f"{tuple(declared)}, got shape {array.shape}")
            for axis, dim in enumerate(declared):
                if axis == 0 or dim is None:
                    continue  # batch axis / wildcard
                if array.shape[axis] != dim:
                    raise ValueError(
                        f"input {name!r}: axis {axis} must be {dim}, got "
                        f"{array.shape[axis]} (shape {array.shape} vs "
                        f"declared {tuple(declared)})")
        if info is not None and np.dtype(info.dtype.value) != array.dtype:
            raise ValueError(
                f"input {name!r}: declared dtype {info.dtype.value}, got "
                f"{array.dtype}")
        self._inputs[name] = array
        return array

    def bind_output(self, name: str, buffer=None) -> Optional[np.ndarray]:
        """Bind a destination buffer for graph output ``name``.

        With ``buffer=None`` the session allocates a private buffer on the
        first bound run and reuses it afterwards (returned by
        :meth:`get_outputs`).  A caller-provided buffer must be a
        writeable array and must not overlap any other bound output; shape
        and dtype are checked against the produced output at run time.
        """
        session = self._session
        if name not in session.output_names:
            raise ValueError(
                f"model {session.model_name!r} has no output {name!r}; "
                f"outputs: {sorted(session.output_names)}")
        if buffer is None:
            return self._outputs.setdefault(name, None)
        array = np.asarray(buffer)
        if not array.flags.writeable:
            raise ValueError(
                f"output buffer for {name!r} must be writeable")
        for other_name, other in self._outputs.items():
            if (other is not None and other_name != name
                    and np.may_share_memory(array, other)):
                raise ValueError(
                    f"output buffer for {name!r} overlaps the buffer "
                    f"bound to {other_name!r}")
        self._outputs[name] = array
        return array

    # ------------------------------------------------------------------
    @property
    def inputs(self) -> Dict[str, np.ndarray]:
        """The bound input arrays (a shallow copy of the mapping)."""
        return dict(self._inputs)

    def get_outputs(self) -> Dict[str, np.ndarray]:
        """Bound (or session-materialized) output buffers seen so far."""
        return {name: buf for name, buf in self._outputs.items()
                if buf is not None}

    def clear(self) -> None:
        """Drop every bound input and output."""
        self._inputs.clear()
        self._outputs.clear()


class Session:
    """One compiled model behind one executor, with an IOBinding surface.

    Construct via :func:`create_session` (or
    :meth:`repro.pipeline.RamielResult.session`).  A session is
    thread-safe for plain :meth:`run` calls (the underlying plan/pool
    serializes); :meth:`run_with_binding` is as thread-safe as the
    binding's buffers — use one binding per caller.
    """

    def __init__(self, executor: str, *, graph, model_name: str,
                 result=None, plan: Optional[ExecutionPlan] = None,
                 interp: Optional[GraphExecutor] = None,
                 pool: Optional[WarmExecutorPool] = None,
                 timeout_s: float = 300.0) -> None:
        self.executor = validate_executor(executor)
        self.result = result
        self.model_name = model_name
        self.timeout_s = timeout_s
        self._graph = graph
        self._plan = plan
        self._interp = interp
        self._pool = pool
        self._input_info = {info.name: info for info in graph.inputs}
        self._closed = False
        self._broken: Optional[str] = None
        self._tracer = None
        #: precomputed span args so traced runs do no per-call dict building
        self._span_args = {"model": model_name, "executor": self.executor}
        self._metrics_collectors: list = []

    # ------------------------------------------------------------------
    @property
    def plan(self) -> Optional[ExecutionPlan]:
        """The underlying :class:`ExecutionPlan` (``"plan"`` sessions)."""
        return self._plan

    @property
    def interpreter(self) -> Optional[GraphExecutor]:
        """The underlying :class:`GraphExecutor` (``"interp"`` sessions)."""
        return self._interp

    @property
    def pool(self) -> Optional[WarmExecutorPool]:
        """The warm worker pool (``"pool"`` / ``"process"`` sessions)."""
        return self._pool

    @property
    def input_names(self) -> Tuple[str, ...]:
        """Graph input names of the compiled model."""
        return tuple(self._graph.input_names)

    @property
    def output_names(self) -> Tuple[str, ...]:
        """Graph output names of the compiled model."""
        return tuple(self._graph.output_names)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    @property
    def broken(self) -> bool:
        """True once a watchdog marked the session unusable."""
        return self._broken is not None

    def mark_broken(self, reason: str) -> None:
        """Mark the session unusable (e.g. a run is wedged inside it)."""
        self._broken = reason

    def recover(self) -> "Session":
        """Rebuild this session's executor in place and clear ``broken``.

        The retry path's repair hook: instead of discarding a broken
        session (and the compiled artifact inside it) and recompiling,
        replace just the execution machinery:

        * pool-backed sessions :meth:`~WarmExecutorPool.heal` the pool
          (respawn dead workers individually); if it is still broken —
          e.g. a wedged-but-alive worker the pool cannot identify — they
          fall back to a full :meth:`~WarmExecutorPool.restart`;
        * ``"plan"`` sessions build a **fresh** :class:`ExecutionPlan`
          over the same optimized model — a watchdogged run may hold the
          old plan's run lock forever, so the old object is abandoned,
          not reused;
        * ``"interp"`` sessions get a fresh :class:`GraphExecutor`.

        Existing :class:`IOBinding` objects remain valid: they reference
        the session, not the replaced executor.  The attached tracer is
        re-propagated.  Raises if the session is closed.
        """
        if self._closed:
            raise RuntimeError(
                f"cannot recover closed session for {self.model_name!r}")
        if self._pool is not None:
            self._pool.heal()
            if self._pool.broken:
                self._pool.restart()
        elif self._plan is not None:
            if self.result is not None:
                source = self.result.optimized_model
            else:  # a bare-ExecutionPlan artifact: rebuild over its graph
                source = self._plan.graph
            old = self._plan
            self._plan = ExecutionPlan(source, fuse=old.fused,
                                       heavy_out=old.heavy_out)
            if self._tracer is not None:
                self._plan.enable_tracing(self._tracer)
        elif self._interp is not None:
            self._interp = GraphExecutor(self.result.optimized_model)
        self._broken = None
        return self

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def tracer(self):
        """The attached :class:`~repro.observability.Tracer`, if any."""
        return self._tracer

    def set_tracer(self, tracer) -> None:
        """Attach (or, with ``None``, detach) a span tracer.

        Run-level spans (``session.run`` / ``session.run_with_binding``,
        category ``"session"``) are emitted around every execution, and a
        ``"plan"`` session propagates the tracer into its
        :class:`ExecutionPlan` so per-step spans nest inside the run span.
        Pool-backed sessions propagate the tracer into the
        :class:`WarmExecutorPool`: dispatched jobs carry trace contexts and
        the workers ship their span buffers home (see
        :meth:`worker_trace_buffers`).
        """
        self._tracer = tracer
        if self._plan is not None:
            if tracer is None:
                self._plan.disable_tracing()
            else:
                self._plan.enable_tracing(tracer)
        if self._pool is not None:
            self._pool.set_tracer(tracer)

    def worker_trace_buffers(self):
        """Per-worker span buffers of a traced pool session (else ``[]``).

        The returned :class:`~repro.observability.merge.WorkerTraceBuffer`
        list — together with the session's tracer — feeds
        :func:`repro.observability.merge.merge_traces`, which aligns the
        worker clocks and emits one multi-process Chrome trace.
        """
        if self._pool is None:
            return []
        return self._pool.worker_trace_buffers()

    def publish_metrics(self, registry, labels: Optional[Mapping[str, str]] = None) -> None:
        """Mirror this session's counters into a ``MetricsRegistry``.

        Registers a pull-style collector that refreshes gauges from
        :meth:`stats` before every registry snapshot/exposition: plan shape
        (steps, fused nodes), arena allocations/reuses, and output-binding
        direct/copy writes — the counters that previously required calling
        ``Session.stats()`` by hand.
        """
        labels = dict(labels) if labels else {"model": self.model_name}
        gauge = registry.gauge

        def collect(_registry) -> None:
            stats = self.stats()
            plan_stats = stats.get("plan")
            if plan_stats is not None:
                gauge("plan_steps", "Compiled plan steps",
                      labels=labels).set(plan_stats["steps"])
                gauge("plan_fused_nodes", "Nodes fused into producer steps",
                      labels=labels).set(plan_stats["fused_nodes"])
                arena = plan_stats["arena"]
                gauge("plan_arena_allocations",
                      "Buffers the plan arena has allocated",
                      labels=labels).set(arena["allocations"])
                gauge("plan_arena_reuses",
                      "Buffer acquisitions served from the arena pools",
                      labels=labels).set(arena["reuses"])
                gauge("plan_arena_pooled", "Buffers currently pooled",
                      labels=labels).set(arena["pooled"])
                binding = plan_stats["output_binding"]
                gauge("plan_output_direct_writes",
                      "Bound outputs written in place by the producing step",
                      labels=labels).set(binding["direct_writes"])
                gauge("plan_output_copy_writes",
                      "Bound outputs finalized by an end-of-run copy",
                      labels=labels).set(binding["copy_writes"])
            if stats.get("pool_clusters") is not None:
                gauge("pool_clusters", "Clusters in the warm worker pool",
                      labels=labels).set(stats["pool_clusters"])

        registry.register_collector(collect)
        self._metrics_collectors.append((registry, collect))
        if self._pool is not None:
            # Worker-layer counters (runs, dispatch/execute/queue-wait time,
            # channel bytes, restarts) publish under the same labels.
            self._pool.publish_metrics(registry, labels)

    # ------------------------------------------------------------------
    def _check_usable(self) -> None:
        if self._closed:
            raise RuntimeError(
                f"session for {self.model_name!r} is closed")
        if self._broken is not None:
            raise RuntimeError(
                f"session for {self.model_name!r} is broken "
                f"({self._broken}); discard it and create a fresh one")

    def run(self, inputs: Mapping[str, np.ndarray],
            outputs: Optional[Sequence[str]] = None,
            trace_hook=None,
            timeout: Optional[float] = None) -> Dict[str, np.ndarray]:
        """Execute one feed dict and return the graph outputs.

        ``outputs`` / ``trace_hook`` work on in-process sessions
        (``"plan"`` / ``"interp"``); ``timeout`` applies to pool-backed
        sessions (defaults to the session's ``timeout_s``).
        """
        self._check_usable()
        tracer = self._tracer
        if tracer is not None:
            with tracer.span("session.run", cat="session",
                             args=self._span_args):
                return self._run_dispatch(inputs, outputs, trace_hook, timeout)
        return self._run_dispatch(inputs, outputs, trace_hook, timeout)

    def _run_dispatch(self, inputs, outputs, trace_hook, timeout):
        if self._plan is not None:
            return self._plan.run(inputs, outputs=outputs,
                                  trace_hook=trace_hook)
        if self._interp is not None:
            return self._interp.run(inputs, outputs=outputs,
                                    trace_hook=trace_hook)
        if outputs is not None or trace_hook is not None:
            raise ValueError(
                "outputs=/trace_hook= require an in-process session "
                "('plan' or 'interp'), not " + repr(self.executor))
        return self._pool.run(
            inputs, timeout=timeout if timeout is not None else self.timeout_s)

    def bind(self) -> IOBinding:
        """A fresh :class:`IOBinding` for this session."""
        self._check_usable()
        return IOBinding(self)

    def run_with_binding(self, binding: IOBinding) -> Dict[str, np.ndarray]:
        """Execute the bound feed; bound outputs are written in place.

        Returns the output dict; for bound names the returned arrays *are*
        the bound buffers.  On a warm ``"plan"`` session this loop makes
        zero arena allocations and zero graph-output allocations.  Bound
        vs unbound runs are bitwise-identical.
        """
        self._check_usable()
        tracer = self._tracer
        if tracer is not None:
            with tracer.span("session.run_with_binding", cat="session",
                             args=self._span_args):
                return self._run_with_binding(binding)
        return self._run_with_binding(binding)

    def _run_with_binding(self, binding: IOBinding) -> Dict[str, np.ndarray]:
        if binding._session is not self:
            raise ValueError("binding belongs to a different session")
        feed = binding._inputs
        missing = [name for name in self.input_names if name not in feed]
        if missing:
            raise ValueError(
                f"binding is missing graph inputs {missing}; bind_input() "
                "them first")
        bound = {name: buf for name, buf in binding._outputs.items()
                 if buf is not None}
        if self._plan is not None:
            result = self._plan.run(feed, out=bound or None)
        else:
            result = self.run(feed)
            # Mirror the plan path's aliasing discipline: an interp/pool
            # output can be a view of a bound input, so snapshot every
            # source overlapping any destination before the first copy.
            buffers = list(bound.values())
            sources = []
            for name, buf in bound.items():
                src = np.asarray(result[name])
                if src.shape != buf.shape or src.dtype != buf.dtype:
                    raise ValueError(
                        f"bound output {name!r}: destination has shape "
                        f"{buf.shape} dtype {buf.dtype}, but the run "
                        f"produced shape {src.shape} dtype {src.dtype}")
                if any(np.may_share_memory(src, other) for other in buffers):
                    src = src.copy()
                sources.append(src)
            for (name, buf), src in zip(bound.items(), sources):
                np.copyto(buf, src)
                result[name] = buf
        # Materialize lazily-bound outputs into private buffers the next
        # bound run writes in place (always a copy — never adopt the run's
        # array, which may be a view of an input or an initializer).
        for name, buf in binding._outputs.items():
            if buf is None:
                owned = np.array(np.asarray(result[name]))
                binding._outputs[name] = owned
                result[name] = owned
        return result

    # ------------------------------------------------------------------
    def stats(self) -> Dict:
        """Session shape plus the underlying executor's counters."""
        stats: Dict = {"model": self.model_name, "executor": self.executor}
        if self._plan is not None:
            stats["plan"] = self._plan.stats()
        if self._pool is not None:
            stats["pool_clusters"] = self._pool.num_clusters
            stats["pool"] = self._pool.stats()
        return stats

    def close(self) -> None:
        """Release the executor's resources (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for registry, collect in self._metrics_collectors:
            registry.unregister_collector(collect)
        self._metrics_collectors.clear()
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def create_session(model_or_artifact, config=None, executor: str = "plan",
                   timeout_s: float = 300.0, *, tracer=None) -> Session:
    """Create a :class:`Session` — the package's one execution front door.

    Parameters
    ----------
    model_or_artifact:
        An IR :class:`Model` (compiled here via ``ramiel_compile``), an
        already-compiled :class:`~repro.pipeline.RamielResult`, or a bare
        :class:`ExecutionPlan` (wrapped directly; ``"plan"`` only).
    config:
        Optional :class:`~repro.pipeline.PipelineConfig` used when
        compiling a :class:`Model`; ``generate_code`` / ``build_plan`` are
        derived from the executor.  Ignored for precompiled artifacts.
    executor:
        One of :func:`known_executors`:

        * ``"plan"`` — the compile-once :class:`ExecutionPlan` hot path
          (default; IOBinding runs are allocation-free once warm),
        * ``"interp"`` — the :class:`GraphExecutor` reference interpreter
          behind the same interface (differential testing),
        * ``"pool"`` / ``"process"`` — the generated parallel module on a
          warm thread- or fork-backed per-cluster worker pool.
    timeout_s:
        Per-run timeout for pool-backed sessions.
    tracer:
        Optional :class:`~repro.observability.Tracer` attached before the
        session is returned.  For ``"process"`` sessions, passing it here
        (rather than via :meth:`Session.set_tracer` later) additionally
        enables channel byte/ns telemetry: the pool's channels must be
        wrapped before the workers fork.
    """
    executor = validate_executor(executor)
    obj = model_or_artifact
    if isinstance(obj, ExecutionPlan):
        if executor != "plan":
            raise ValueError(
                "an ExecutionPlan artifact can only back a 'plan' session; "
                f"got executor {executor!r}")
        session = Session("plan", graph=obj.graph, model_name=obj.model_name,
                          plan=obj, timeout_s=timeout_s)
        if tracer is not None:
            session.set_tracer(tracer)
        return session

    if isinstance(obj, Model):
        import dataclasses

        from repro.pipeline import PipelineConfig, ramiel_compile

        pipeline_config = config if config is not None else PipelineConfig()
        pipeline_config = dataclasses.replace(
            pipeline_config,
            generate_code=executor in ("pool", "process"),
            build_plan=executor == "plan")
        result = ramiel_compile(obj, config=pipeline_config)
    elif hasattr(obj, "optimized_model"):  # a RamielResult, duck-typed to
        result = obj                       # avoid a circular pipeline import
    else:
        raise TypeError(
            "create_session expects a Model, RamielResult or ExecutionPlan, "
            f"got {type(obj).__name__}")

    optimized = result.optimized_model
    name = result.model.name
    if executor == "plan":
        session = Session("plan", graph=optimized.graph, model_name=name,
                          result=result, plan=result.plan(),
                          timeout_s=timeout_s)
    elif executor == "interp":
        session = Session("interp", graph=optimized.graph, model_name=name,
                          result=result, interp=GraphExecutor(optimized),
                          timeout_s=timeout_s)
    else:
        if result.parallel_module is None:
            raise ValueError(
                f"executor {executor!r} needs generated code, but the artifact "
                "was compiled with generate_code=False")
        pool = WarmExecutorPool(
            result.parallel_module, optimized.graph.initializers,
            backend="thread" if executor == "pool" else "process",
            tracer=tracer)
        session = Session(executor, graph=optimized.graph, model_name=name,
                          result=result, pool=pool, timeout_s=timeout_s)
    if tracer is not None:
        session.set_tracer(tracer)
    return session
