"""Flat operator namespace used by Ramiel-generated code.

Generated parallel code imports this module as ``F`` and calls functions
such as ``F.conv2d`` / ``F.relu`` / ``F.concat`` — the direct analogue of
the ``torch`` calls in the paper's Fig. 11.  Everything re-exported here is
a plain numpy function, so the generated modules remain importable, readable
and debuggable with no framework dependency.
"""

from __future__ import annotations

from repro.runtime.ops.activations import (
    clip,
    elu,
    erf,
    gelu,
    hard_sigmoid,
    hard_swish,
    leaky_relu,
    log_softmax,
    mish,
    prelu,
    relu,
    selu,
    sigmoid,
    silu,
    softmax,
    softplus,
    tanh,
)
from repro.runtime.ops.attention import (
    merge_heads,
    multi_head_attention,
    scaled_dot_product_attention,
    split_heads,
)
from repro.runtime.ops.conv import conv1d, conv2d, conv_transpose2d, depthwise_conv2d
from repro.runtime.ops.elementwise import (
    abs_,
    add,
    ceil,
    cos,
    div,
    equal,
    exp,
    floor,
    greater,
    greater_or_equal,
    less,
    less_or_equal,
    log,
    logical_and,
    logical_not,
    logical_or,
    logical_xor,
    maximum,
    minimum,
    mod,
    mul,
    neg,
    pow_,
    reciprocal,
    round_,
    sign,
    sin,
    sqrt,
    sub,
    where,
)
from repro.runtime.ops.linear import einsum, gemm, linear, matmul
from repro.runtime.ops.normalization import batch_norm, instance_norm, layer_norm
from repro.runtime.ops.pooling import (
    avg_pool2d,
    global_avg_pool2d,
    global_max_pool2d,
    max_pool2d,
)
from repro.runtime.ops.reduction import (
    argmax,
    argmin,
    cumsum,
    reduce_l2,
    reduce_max,
    reduce_mean,
    reduce_min,
    reduce_prod,
    reduce_sum,
    topk,
)
from repro.runtime.ops.tensor_manipulation import (
    cast,
    concat,
    constant_of_shape,
    depth_to_space,
    expand,
    flatten,
    gather,
    gather_elements,
    one_hot,
    pad,
    reshape,
    resize_nearest,
    shape_of,
    size_of,
    slice_,
    space_to_depth,
    split,
    squeeze,
    tile,
    transpose,
    unsqueeze,
)

__all__ = [name for name in dir() if not name.startswith("_")]
