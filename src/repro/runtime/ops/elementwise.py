"""Binary/unary elementwise arithmetic with numpy broadcasting.

Arithmetic functions accept an optional ``out=`` destination so callers that
already own a correctly shaped/typed buffer — the planned execution engine's
buffer arena (:mod:`repro.runtime.plan`) — can run allocation-free.  ``out``
must match the result's shape and dtype exactly; with ``out=None`` behaviour
is identical to the plain numpy call.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def add(a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Elementwise addition."""
    return np.add(a, b, out=out)


def sub(a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Elementwise subtraction."""
    return np.subtract(a, b, out=out)


def mul(a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Elementwise multiplication."""
    return np.multiply(a, b, out=out)


def div(a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Elementwise division."""
    return np.divide(a, b, out=out)


def pow_(a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Elementwise power."""
    return np.power(a, b, out=out)


def mod(a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Elementwise modulo."""
    return np.mod(a, b, out=out)


def minimum(a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Elementwise minimum."""
    return np.minimum(a, b, out=out)


def maximum(a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Elementwise maximum."""
    return np.maximum(a, b, out=out)


def sqrt(x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Elementwise square root."""
    return np.sqrt(np.asarray(x, dtype=np.float32), out=out)


def exp(x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Elementwise exponential."""
    return np.exp(np.asarray(x, dtype=np.float32), out=out)


def log(x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Elementwise natural logarithm."""
    return np.log(np.asarray(x, dtype=np.float32), out=out)


def neg(x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Elementwise negation."""
    return np.negative(x, out=out)


def abs_(x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Elementwise absolute value."""
    return np.abs(x, out=out)


def reciprocal(x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Elementwise reciprocal."""
    return np.reciprocal(np.asarray(x, dtype=np.float32), out=out)


def floor(x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Elementwise floor."""
    return np.floor(x, out=out)


def ceil(x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Elementwise ceiling."""
    return np.ceil(x, out=out)


def round_(x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Elementwise round-half-to-even."""
    return np.round(x, out=out)


def sign(x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Elementwise sign."""
    return np.sign(x, out=out)


def cos(x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Elementwise cosine."""
    return np.cos(x, out=out)


def sin(x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Elementwise sine."""
    return np.sin(x, out=out)


def equal(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise equality comparison."""
    return np.equal(a, b)


def greater(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise greater-than."""
    return np.greater(a, b)


def less(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise less-than."""
    return np.less(a, b)


def greater_or_equal(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise >=."""
    return np.greater_equal(a, b)


def less_or_equal(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise <=."""
    return np.less_equal(a, b)


def logical_and(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise logical and."""
    return np.logical_and(a, b)


def logical_or(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise logical or."""
    return np.logical_or(a, b)


def logical_not(x: np.ndarray) -> np.ndarray:
    """Elementwise logical not."""
    return np.logical_not(x)


def logical_xor(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise logical xor."""
    return np.logical_xor(a, b)


def where(cond: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Select ``a`` where ``cond`` else ``b``."""
    return np.where(cond, a, b)
