"""Binary/unary elementwise arithmetic with numpy broadcasting."""

from __future__ import annotations

import numpy as np


def add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise addition."""
    return np.add(a, b)


def sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise subtraction."""
    return np.subtract(a, b)


def mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise multiplication."""
    return np.multiply(a, b)


def div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise division."""
    return np.divide(a, b)


def pow_(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise power."""
    return np.power(a, b)


def mod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise modulo."""
    return np.mod(a, b)


def minimum(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise minimum."""
    return np.minimum(a, b)


def maximum(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise maximum."""
    return np.maximum(a, b)


def sqrt(x: np.ndarray) -> np.ndarray:
    """Elementwise square root."""
    return np.sqrt(np.asarray(x, dtype=np.float32))


def exp(x: np.ndarray) -> np.ndarray:
    """Elementwise exponential."""
    return np.exp(np.asarray(x, dtype=np.float32))


def log(x: np.ndarray) -> np.ndarray:
    """Elementwise natural logarithm."""
    return np.log(np.asarray(x, dtype=np.float32))


def neg(x: np.ndarray) -> np.ndarray:
    """Elementwise negation."""
    return np.negative(x)


def abs_(x: np.ndarray) -> np.ndarray:
    """Elementwise absolute value."""
    return np.abs(x)


def reciprocal(x: np.ndarray) -> np.ndarray:
    """Elementwise reciprocal."""
    return np.reciprocal(np.asarray(x, dtype=np.float32))


def floor(x: np.ndarray) -> np.ndarray:
    """Elementwise floor."""
    return np.floor(x)


def ceil(x: np.ndarray) -> np.ndarray:
    """Elementwise ceiling."""
    return np.ceil(x)


def round_(x: np.ndarray) -> np.ndarray:
    """Elementwise round-half-to-even."""
    return np.round(x)


def sign(x: np.ndarray) -> np.ndarray:
    """Elementwise sign."""
    return np.sign(x)


def cos(x: np.ndarray) -> np.ndarray:
    """Elementwise cosine."""
    return np.cos(x)


def sin(x: np.ndarray) -> np.ndarray:
    """Elementwise sine."""
    return np.sin(x)


def equal(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise equality comparison."""
    return np.equal(a, b)


def greater(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise greater-than."""
    return np.greater(a, b)


def less(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise less-than."""
    return np.less(a, b)


def greater_or_equal(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise >=."""
    return np.greater_equal(a, b)


def less_or_equal(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise <=."""
    return np.less_equal(a, b)


def logical_and(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise logical and."""
    return np.logical_and(a, b)


def logical_or(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise logical or."""
    return np.logical_or(a, b)


def logical_not(x: np.ndarray) -> np.ndarray:
    """Elementwise logical not."""
    return np.logical_not(x)


def logical_xor(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise logical xor."""
    return np.logical_xor(a, b)


def where(cond: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Select ``a`` where ``cond`` else ``b``."""
    return np.where(cond, a, b)
