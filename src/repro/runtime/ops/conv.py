"""Convolution operators (im2col + GEMM implementation).

These are the "heavy" operators of the paper's cost model.  The forward
convolution is implemented as an im2col lowering followed by one matrix
multiplication per group, which keeps all the arithmetic inside BLAS and
makes the per-op runtime roughly proportional to the static cost weights
used by :class:`repro.graph.cost_model.CostModel`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.runtime.intra_op import parallel_over_batch
from repro.runtime.tensor_utils import as_pair, im2col, normalize_pads


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray] = None,
    strides: Sequence[int] = (1, 1),
    pads: Sequence[int] = (0, 0, 0, 0),
    dilations: Sequence[int] = (1, 1),
    group: int = 1,
) -> np.ndarray:
    """2D convolution with ONNX ``Conv`` semantics.

    Parameters
    ----------
    x:
        Input activations, shape ``(N, C, H, W)``.
    weight:
        Filters, shape ``(M, C/group, KH, KW)``.
    bias:
        Optional per-output-channel bias of shape ``(M,)``.
    strides, pads, dilations, group:
        Standard convolution hyper-parameters; ``pads`` is
        ``[top, left, bottom, right]`` (a 2-element form is accepted).
    """
    x = np.asarray(x, dtype=np.float32)
    weight = np.asarray(weight, dtype=np.float32)
    if x.ndim != 4 or weight.ndim != 4:
        raise ValueError(f"conv2d expects 4D input/weight, got {x.shape} and {weight.shape}")
    n, c, _, _ = x.shape
    m, c_per_group, kh, kw = weight.shape
    group = int(group)
    if c != c_per_group * group:
        raise ValueError(
            f"channel mismatch: input has {c} channels, weight expects "
            f"{c_per_group * group} (group={group})"
        )
    strides = as_pair(strides)
    dilations = as_pair(dilations)
    pads = normalize_pads(list(pads))

    def _convolve(batch: np.ndarray) -> np.ndarray:
        if group == 1:
            cols, (oh, ow) = im2col(batch, (kh, kw), strides, pads, dilations)
            w_mat = weight.reshape(m, -1)
            out = cols @ w_mat.T
            out = out.reshape(batch.shape[0], oh, ow, m).transpose(0, 3, 1, 2)
        else:
            out_groups = []
            m_per_group = m // group
            oh = ow = None
            for g in range(group):
                xs = batch[:, g * c_per_group:(g + 1) * c_per_group]
                ws = weight[g * m_per_group:(g + 1) * m_per_group]
                cols, (oh, ow) = im2col(xs, (kh, kw), strides, pads, dilations)
                res = cols @ ws.reshape(m_per_group, -1).T
                out_groups.append(
                    res.reshape(batch.shape[0], oh, ow, m_per_group).transpose(0, 3, 1, 2)
                )
            out = np.concatenate(out_groups, axis=1)
        return np.ascontiguousarray(out)

    out = parallel_over_batch(_convolve, x)
    if bias is not None:
        # The convolution result is a fresh float32 buffer, so the bias can
        # broadcast-add in place instead of allocating a second output.
        np.add(out, np.asarray(bias, dtype=np.float32).reshape(1, -1, 1, 1), out=out)
    return out.astype(np.float32, copy=False)


def conv_transpose2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray] = None,
    strides: Sequence[int] = (1, 1),
    pads: Sequence[int] = (0, 0, 0, 0),
    output_padding: Sequence[int] = (0, 0),
    group: int = 1,
) -> np.ndarray:
    """Transposed convolution (a.k.a. deconvolution), ONNX ``ConvTranspose``.

    Implemented by scattering the input into a zero-dilated buffer and then
    running a regular convolution with the spatially-flipped kernel.  Only
    ``group == 1`` is supported, which covers the model zoo's usage.
    """
    if int(group) != 1:
        raise NotImplementedError("conv_transpose2d only supports group=1")
    x = np.asarray(x, dtype=np.float32)
    weight = np.asarray(weight, dtype=np.float32)
    n, c, h, w = x.shape
    c_in, m, kh, kw = weight.shape
    if c != c_in:
        raise ValueError(f"channel mismatch: input {c} vs weight {c_in}")
    sh, sw = as_pair(strides)
    pads = normalize_pads(list(pads))
    oph, opw = as_pair(output_padding)

    # Scatter input with stride-1 zeros between elements.
    dilated_h = (h - 1) * sh + 1
    dilated_w = (w - 1) * sw + 1
    buf = np.zeros((n, c, dilated_h, dilated_w), dtype=np.float32)
    buf[:, :, ::sh, ::sw] = x

    # Full correlation with flipped kernel == transposed convolution.
    flipped = weight[:, :, ::-1, ::-1].transpose(1, 0, 2, 3)  # (M, C, KH, KW)
    full_pads = [kh - 1 - pads[0], kw - 1 - pads[1], kh - 1 - pads[2] + oph, kw - 1 - pads[3] + opw]
    out = conv2d(buf, flipped, bias=None, strides=(1, 1), pads=full_pads)
    if bias is not None:
        out = out + np.asarray(bias, dtype=np.float32).reshape(1, -1, 1, 1)
    return out


def depthwise_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray] = None,
    strides: Sequence[int] = (1, 1),
    pads: Sequence[int] = (1, 1, 1, 1),
    dilations: Sequence[int] = (1, 1),
) -> np.ndarray:
    """Depthwise convolution: one filter per input channel (group == C)."""
    channels = x.shape[1]
    return conv2d(x, weight, bias, strides=strides, pads=pads, dilations=dilations,
                  group=channels)


def conv1d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """1D convolution implemented by reusing :func:`conv2d` on a 1-pixel-high image."""
    x4 = np.asarray(x, dtype=np.float32)[:, :, None, :]
    w4 = np.asarray(weight, dtype=np.float32)[:, :, None, :]
    out = conv2d(x4, w4, bias, strides=(1, stride), pads=(0, pad, 0, pad))
    return out[:, :, 0, :]
