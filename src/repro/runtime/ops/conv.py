"""Convolution operators (im2col + GEMM implementation).

These are the "heavy" operators of the paper's cost model.  The forward
convolution is implemented as an im2col lowering followed by one matrix
multiplication per group, which keeps all the arithmetic inside BLAS and
makes the per-op runtime roughly proportional to the static cost weights
used by :class:`repro.graph.cost_model.CostModel`.

All heavy entry points are **destination-passing**: ``out=`` receives the
result and ``workspace=`` provides the im2col column matrix, the padded
input and the post-GEMM staging buffer, so a warm serving loop runs the
whole conv allocation-free.  The reshaped/pre-transposed ``(C*KH*KW, M)``
GEMM weight matrices are derived once per weight array (weights are plan
constants) and cached under an identity-checked weak reference, for the
grouped path too.
"""

from __future__ import annotations

import weakref
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.intra_op import get_num_threads, parallel_over_batch
from repro.runtime.tensor_utils import (
    as_pair,
    conv_output_hw,
    im2col,
    normalize_pads,
    padded_shape,
    reset_workspace,
    scratch,
)


class _DerivedWeightCache:
    """Identity-keyed cache of matrices derived from a weight array.

    Weights are long-lived graph initializers, so layouts derived from them
    (the per-group transposed GEMM matrices, the flipped transpose-conv
    kernel) are computed once per array instead of per call.  Entries are
    keyed by ``id()`` and guarded by a weak reference, so a dead weight can
    never be confused with an unrelated array that reuses its address, and
    the cache never keeps weights alive.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: dict = {}

    def get(self, weight: np.ndarray, key, build):
        entry = self._entries.get(id(weight))
        if entry is not None and entry[0]() is weight:
            derived = entry[1]
        else:
            address = id(weight)

            def drop(ref, address=address, entries=self._entries):
                current = entries.get(address)
                if current is not None and current[0] is ref:
                    del entries[address]

            derived = {}
            self._entries[address] = (weakref.ref(weight, drop), derived)
        value = derived.get(key)
        if value is None:
            value = derived[key] = build()
        return value


_WEIGHT_CACHE = _DerivedWeightCache()


def _gemm_weight_mats(weight: np.ndarray, group: int) -> List[np.ndarray]:
    """Per-group contiguous ``(C/g*KH*KW, M/g)`` matrices for the im2col GEMM."""
    m = weight.shape[0]
    m_per_group = m // group

    def build() -> List[np.ndarray]:
        return [
            np.ascontiguousarray(
                weight[g * m_per_group:(g + 1) * m_per_group].reshape(m_per_group, -1).T)
            for g in range(group)
        ]

    return _WEIGHT_CACHE.get(weight, ("gemm_mats", group), build)


def _conv_forward(
    batch: np.ndarray,
    weight: np.ndarray,
    w_mats: List[np.ndarray],
    strides: Tuple[int, int],
    pads: Sequence[int],
    dilations: Tuple[int, int],
    group: int,
    out: Optional[np.ndarray],
    workspace,
) -> np.ndarray:
    """Convolve one (sub-)batch, writing the NCHW result into ``out``."""
    n = batch.shape[0]
    m, c_per_group, kh, kw = weight.shape
    oh, ow = conv_output_hw(batch.shape[2:], (kh, kw), strides, pads, dilations)
    out_shape = (n, m, oh, ow)
    if out is None:
        dest = np.empty(out_shape, dtype=np.float32)
    else:
        if out.shape != out_shape or out.dtype != np.float32:
            raise ValueError(
                f"conv2d out buffer has shape {out.shape}/{out.dtype}, "
                f"expected {out_shape}/float32")
        if (not out.flags.c_contiguous
                or np.may_share_memory(out, batch)
                or np.may_share_memory(out, weight)):
            # Compute into a private contiguous buffer, then copy: the
            # destination either overlaps an operand (so in-place scatter
            # would corrupt later groups' reads) or cannot take the strided
            # NHWC->NCHW copy pattern directly.
            staging = scratch(workspace, out_shape)
            _conv_forward(batch, weight, w_mats, strides, pads, dilations,
                          group, staging, workspace)
            np.copyto(out, staging)
            return out
        dest = out
    m_per_group = m // group
    rows = n * oh * ow
    # Scratch shapes are identical for every group, so the padded input,
    # column matrix and GEMM staging buffer are leased once and reused
    # across the whole group loop.
    pad_buf = None
    if any(pads):
        pad_buf = scratch(workspace, padded_shape(
            (n, c_per_group, batch.shape[2], batch.shape[3]), pads))
    cols = scratch(workspace, (rows, c_per_group * kh * kw))
    prod = scratch(workspace, (rows, m_per_group))
    for g in range(group):
        xs = batch if group == 1 else batch[:, g * c_per_group:(g + 1) * c_per_group]
        im2col(xs, (kh, kw), strides, pads, dilations, out=cols, pad_out=pad_buf)
        # GEMM lands in the contiguous NHWC staging matrix; the NCHW
        # finalization is a single strided copy straight into the
        # destination slice (no concatenate, no ascontiguousarray).
        np.matmul(cols, w_mats[g], out=prod)
        dst = dest if group == 1 else dest[:, g * m_per_group:(g + 1) * m_per_group]
        np.copyto(dst, prod.reshape(n, oh, ow, m_per_group).transpose(0, 3, 1, 2))
    return dest


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray] = None,
    strides: Sequence[int] = (1, 1),
    pads: Sequence[int] = (0, 0, 0, 0),
    dilations: Sequence[int] = (1, 1),
    group: int = 1,
    out: Optional[np.ndarray] = None,
    workspace=None,
) -> np.ndarray:
    """2D convolution with ONNX ``Conv`` semantics.

    Parameters
    ----------
    x:
        Input activations, shape ``(N, C, H, W)``.
    weight:
        Filters, shape ``(M, C/group, KH, KW)``.
    bias:
        Optional per-output-channel bias of shape ``(M,)``; added in place
        on the result buffer.
    strides, pads, dilations, group:
        Standard convolution hyper-parameters; ``pads`` is
        ``[top, left, bottom, right]`` (a 2-element form is accepted).
    out:
        Optional destination of shape ``(N, M, OH, OW)`` (float32).  May
        alias ``x``; the op then stages through scratch before writing.
    workspace:
        Optional scratch provider (see
        :class:`repro.runtime.tensor_utils.Workspace`) for the padded
        input, im2col columns and post-GEMM staging buffers.  It is reset
        before the call returns.
    """
    x = np.asarray(x, dtype=np.float32)
    weight = np.asarray(weight, dtype=np.float32)
    if x.ndim != 4 or weight.ndim != 4:
        raise ValueError(f"conv2d expects 4D input/weight, got {x.shape} and {weight.shape}")
    n, c, _, _ = x.shape
    m, c_per_group, kh, kw = weight.shape
    group = int(group)
    if c != c_per_group * group:
        raise ValueError(
            f"channel mismatch: input has {c} channels, weight expects "
            f"{c_per_group * group} (group={group})"
        )
    strides = as_pair(strides)
    dilations = as_pair(dilations)
    pads = normalize_pads(list(pads))
    w_mats = _gemm_weight_mats(weight, group)
    if bias is not None:
        bias = np.asarray(bias, dtype=np.float32)
        if out is not None and np.may_share_memory(out, bias):
            bias = bias.copy()  # the convolution would overwrite it first

    try:
        if get_num_threads() > 1 and n > 1:
            # The intra-op path shards the batch and concatenates; chunks
            # compute without destinations, then land in ``out`` at the end.
            def _convolve(chunk: np.ndarray) -> np.ndarray:
                return _conv_forward(chunk, weight, w_mats, strides, pads,
                                     dilations, group, None, None)

            result = parallel_over_batch(_convolve, x)
            if out is not None:
                if out.shape != result.shape or out.dtype != result.dtype:
                    raise ValueError(
                        f"conv2d out buffer has shape {out.shape}/{out.dtype}, "
                        f"expected {result.shape}/{result.dtype}")
                np.copyto(out, result)
                result = out
        else:
            result = _conv_forward(x, weight, w_mats, strides, pads,
                                   dilations, group, out, workspace)
        if bias is not None:
            # The destination is exclusively ours at this point, so the
            # bias broadcast-adds in place instead of allocating.
            np.add(result, bias.reshape(1, -1, 1, 1), out=result)
        return result
    finally:
        reset_workspace(workspace)


def conv_transpose2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray] = None,
    strides: Sequence[int] = (1, 1),
    pads: Sequence[int] = (0, 0, 0, 0),
    output_padding: Sequence[int] = (0, 0),
    group: int = 1,
    out: Optional[np.ndarray] = None,
    workspace=None,
) -> np.ndarray:
    """Transposed convolution (a.k.a. deconvolution), ONNX ``ConvTranspose``.

    Implemented by scattering the input into a zero-dilated buffer and then
    running a regular convolution with the spatially-flipped kernel.  Only
    ``group == 1`` is supported, which covers the model zoo's usage.  The
    flipped kernel is cached per weight array; ``out=``/``workspace=``
    behave as in :func:`conv2d`.
    """
    if int(group) != 1:
        raise NotImplementedError("conv_transpose2d only supports group=1")
    x = np.asarray(x, dtype=np.float32)
    weight = np.asarray(weight, dtype=np.float32)
    n, c, h, w = x.shape
    c_in, m, kh, kw = weight.shape
    if c != c_in:
        raise ValueError(f"channel mismatch: input {c} vs weight {c_in}")
    sh, sw = as_pair(strides)
    pads = normalize_pads(list(pads))
    oph, opw = as_pair(output_padding)
    if bias is not None:
        bias = np.asarray(bias, dtype=np.float32)
        if out is not None and np.may_share_memory(out, bias):
            bias = bias.copy()  # the convolution would overwrite it first

    try:
        # Scatter input with stride-1 zeros between elements.
        dilated_h = (h - 1) * sh + 1
        dilated_w = (w - 1) * sw + 1
        buf = scratch(workspace, (n, c, dilated_h, dilated_w))
        buf.fill(0.0)
        buf[:, :, ::sh, ::sw] = x

        # Full correlation with flipped kernel == transposed convolution.
        flipped = _WEIGHT_CACHE.get(
            weight, "flipped",
            lambda: np.ascontiguousarray(
                weight[:, :, ::-1, ::-1].transpose(1, 0, 2, 3)))  # (M, C, KH, KW)
        full_pads = [kh - 1 - pads[0], kw - 1 - pads[1],
                     kh - 1 - pads[2] + oph, kw - 1 - pads[3] + opw]
        result = conv2d(buf, flipped, bias=None, strides=(1, 1), pads=full_pads,
                        out=out, workspace=workspace)
        if bias is not None:
            np.add(result, bias.reshape(1, -1, 1, 1), out=result)
        return result
    finally:
        reset_workspace(workspace)


def depthwise_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray] = None,
    strides: Sequence[int] = (1, 1),
    pads: Sequence[int] = (1, 1, 1, 1),
    dilations: Sequence[int] = (1, 1),
    out: Optional[np.ndarray] = None,
    workspace=None,
) -> np.ndarray:
    """Depthwise convolution: one filter per input channel (group == C)."""
    channels = x.shape[1]
    return conv2d(x, weight, bias, strides=strides, pads=pads, dilations=dilations,
                  group=channels, out=out, workspace=workspace)


def conv1d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """1D convolution implemented by reusing :func:`conv2d` on a 1-pixel-high image."""
    x4 = np.asarray(x, dtype=np.float32)[:, :, None, :]
    w4 = np.asarray(weight, dtype=np.float32)[:, :, None, :]
    out = conv2d(x4, w4, bias, strides=(1, stride), pads=(0, pad, 0, pad))
    return out[:, :, 0, :]
