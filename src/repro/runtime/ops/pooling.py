"""Pooling operators (max / average / global), ONNX semantics, NCHW layout."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.runtime.tensor_utils import as_pair, normalize_pads, pad_nchw, sliding_windows


def _pool_common(
    x: np.ndarray,
    kernel: Sequence[int],
    strides: Sequence[int],
    pads: Sequence[int],
    ceil_mode: bool,
    pad_value: float,
) -> np.ndarray:
    """Pad (with optional ceil-mode extension) and return sliding windows."""
    x = np.asarray(x, dtype=np.float32)
    if x.ndim != 4:
        raise ValueError(f"pooling expects a 4D NCHW tensor, got shape {x.shape}")
    kh, kw = as_pair(kernel)
    sh, sw = as_pair(strides)
    top, left, bottom, right = normalize_pads(list(pads))
    if ceil_mode:
        # Extend the bottom/right padding so the last partial window is kept.
        h = x.shape[2] + top + bottom
        w = x.shape[3] + left + right
        rem_h = (h - kh) % sh
        rem_w = (w - kw) % sw
        if rem_h:
            bottom += sh - rem_h
        if rem_w:
            right += sw - rem_w
    x_p = pad_nchw(x, (top, left, bottom, right), value=pad_value)
    return sliding_windows(x_p, (kh, kw), (sh, sw))


def max_pool2d(
    x: np.ndarray,
    kernel: Sequence[int],
    strides: Sequence[int] = (1, 1),
    pads: Sequence[int] = (0, 0, 0, 0),
    ceil_mode: bool = False,
) -> np.ndarray:
    """2D max pooling (padding contributes ``-inf`` so it never wins)."""
    windows = _pool_common(x, kernel, strides, pads, ceil_mode, pad_value=-np.inf)
    return np.ascontiguousarray(windows.max(axis=(4, 5)).astype(np.float32))


def avg_pool2d(
    x: np.ndarray,
    kernel: Sequence[int],
    strides: Sequence[int] = (1, 1),
    pads: Sequence[int] = (0, 0, 0, 0),
    ceil_mode: bool = False,
    count_include_pad: bool = False,
) -> np.ndarray:
    """2D average pooling.

    The default ``count_include_pad=False`` matches the ONNX ``AveragePool``
    default: the divisor counts only the non-padded elements of each window.
    Pass ``count_include_pad=True`` for models exported with
    ``count_include_pad=1``, where padding zeros participate in the mean.
    """
    windows = _pool_common(x, kernel, strides, pads, ceil_mode, pad_value=0.0)
    if count_include_pad:
        return np.ascontiguousarray(windows.mean(axis=(4, 5)).astype(np.float32))
    ones = np.ones_like(np.asarray(x, dtype=np.float32))
    counts = _pool_common(ones, kernel, strides, pads, ceil_mode, pad_value=0.0).sum(axis=(4, 5))
    sums = windows.sum(axis=(4, 5))
    counts = np.maximum(counts, 1.0)
    return np.ascontiguousarray((sums / counts).astype(np.float32))


def global_avg_pool2d(x: np.ndarray) -> np.ndarray:
    """Global average pooling to a 1x1 spatial map."""
    x = np.asarray(x, dtype=np.float32)
    return x.mean(axis=(2, 3), keepdims=True).astype(np.float32)


def global_max_pool2d(x: np.ndarray) -> np.ndarray:
    """Global max pooling to a 1x1 spatial map."""
    x = np.asarray(x, dtype=np.float32)
    return x.max(axis=(2, 3), keepdims=True).astype(np.float32)
