"""Pooling operators (max / average / global), ONNX semantics, NCHW layout.

``max_pool2d`` / ``avg_pool2d`` are destination-passing: the window
reduction lands directly in ``out=`` and the padded input comes from the
caller's ``workspace=``, so a warm loop allocates nothing.  The
average-pool divisor grid (which depends only on spatial geometry, not on
data) is computed once per geometry and cached.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.tensor_utils import (
    as_pair,
    normalize_pads,
    pad_nchw,
    padded_shape,
    reset_workspace,
    scratch,
    sliding_windows,
)


def _pool_geometry(
    shape: Tuple[int, ...],
    kernel: Sequence[int],
    strides: Sequence[int],
    pads: Sequence[int],
    ceil_mode: bool,
) -> Tuple[Tuple[int, int], Tuple[int, int], Tuple[int, int, int, int]]:
    """Resolved ``(kernel, strides, pads)`` incl. the ceil-mode extension."""
    kh, kw = as_pair(kernel)
    sh, sw = as_pair(strides)
    top, left, bottom, right = normalize_pads(list(pads))
    if ceil_mode:
        # Extend the bottom/right padding so the last partial window is kept.
        h = shape[2] + top + bottom
        w = shape[3] + left + right
        rem_h = (h - kh) % sh
        rem_w = (w - kw) % sw
        if rem_h:
            bottom += sh - rem_h
        if rem_w:
            right += sw - rem_w
    return (kh, kw), (sh, sw), (top, left, bottom, right)


def _pool_windows(
    x: np.ndarray,
    kernel: Sequence[int],
    strides: Sequence[int],
    pads: Sequence[int],
    ceil_mode: bool,
    pad_value: float,
    workspace=None,
) -> np.ndarray:
    """Pad (with optional ceil-mode extension) and return sliding windows."""
    if x.ndim != 4:
        raise ValueError(f"pooling expects a 4D NCHW tensor, got shape {x.shape}")
    (kh, kw), (sh, sw), full_pads = _pool_geometry(x.shape, kernel, strides,
                                                   pads, ceil_mode)
    pad_buf = None
    if any(full_pads):
        pad_buf = scratch(workspace, padded_shape(x.shape, full_pads))
    x_p = pad_nchw(x, full_pads, value=pad_value, out=pad_buf)
    return sliding_windows(x_p, (kh, kw), (sh, sw))


def _pool_dest(windows: np.ndarray, x: np.ndarray,
               out: Optional[np.ndarray], workspace):
    """Resolve the reduction destination; stage when ``out`` overlaps ``x``.

    Returns ``(dest, final_out)``: reduce into ``dest``, and when the two
    differ copy ``dest`` into ``final_out`` afterwards.
    """
    out_shape = windows.shape[:4]
    if out is None:
        return np.empty(out_shape, dtype=np.float32), None
    if out.shape != out_shape or out.dtype != np.float32:
        raise ValueError(
            f"pooling out buffer has shape {out.shape}/{out.dtype}, "
            f"expected {out_shape}/float32")
    if np.may_share_memory(out, windows):
        return scratch(workspace, out_shape), out
    return out, None


def max_pool2d(
    x: np.ndarray,
    kernel: Sequence[int],
    strides: Sequence[int] = (1, 1),
    pads: Sequence[int] = (0, 0, 0, 0),
    ceil_mode: bool = False,
    out: Optional[np.ndarray] = None,
    workspace=None,
) -> np.ndarray:
    """2D max pooling (padding contributes ``-inf`` so it never wins)."""
    x = np.asarray(x, dtype=np.float32)
    try:
        windows = _pool_windows(x, kernel, strides, pads, ceil_mode,
                                pad_value=-np.inf, workspace=workspace)
        dest, final_out = _pool_dest(windows, x, out, workspace)
        np.max(windows, axis=(4, 5), out=dest)
        if final_out is not None:
            np.copyto(final_out, dest)
            return final_out
        return dest
    finally:
        reset_workspace(workspace)


#: Average-pool divisor grids keyed by spatial geometry.  The divisor only
#: depends on (H, W) and the pooling hyper-parameters — not on batch,
#: channels or data — so it is computed on a (1, 1, H, W) ones tensor once
#: and broadcast against every subsequent call with the same geometry.
_DIVISOR_CACHE: Dict[Tuple, np.ndarray] = {}
_DIVISOR_CACHE_MAX = 128


def _avg_pool_divisors(
    spatial: Tuple[int, int],
    kernel: Sequence[int],
    strides: Sequence[int],
    pads: Sequence[int],
    ceil_mode: bool,
) -> np.ndarray:
    key = (spatial, as_pair(kernel), as_pair(strides),
           tuple(normalize_pads(list(pads))), bool(ceil_mode))
    counts = _DIVISOR_CACHE.get(key)
    if counts is None:
        ones = np.ones((1, 1) + spatial, dtype=np.float32)
        windows = _pool_windows(ones, kernel, strides, pads, ceil_mode,
                                pad_value=0.0)
        counts = np.maximum(windows.sum(axis=(4, 5)), 1.0)
        if len(_DIVISOR_CACHE) >= _DIVISOR_CACHE_MAX:
            _DIVISOR_CACHE.clear()
        _DIVISOR_CACHE[key] = counts
    return counts


def avg_pool2d(
    x: np.ndarray,
    kernel: Sequence[int],
    strides: Sequence[int] = (1, 1),
    pads: Sequence[int] = (0, 0, 0, 0),
    ceil_mode: bool = False,
    count_include_pad: bool = False,
    out: Optional[np.ndarray] = None,
    workspace=None,
) -> np.ndarray:
    """2D average pooling.

    The default ``count_include_pad=False`` matches the ONNX ``AveragePool``
    default: the divisor counts only the non-padded elements of each window.
    Pass ``count_include_pad=True`` for models exported with
    ``count_include_pad=1``, where padding zeros participate in the mean.
    """
    x = np.asarray(x, dtype=np.float32)
    try:
        windows = _pool_windows(x, kernel, strides, pads, ceil_mode,
                                pad_value=0.0, workspace=workspace)
        dest, final_out = _pool_dest(windows, x, out, workspace)
        if count_include_pad:
            np.mean(windows, axis=(4, 5), out=dest)
        else:
            counts = _avg_pool_divisors(x.shape[2:], kernel, strides, pads,
                                        ceil_mode)
            np.sum(windows, axis=(4, 5), out=dest)
            np.divide(dest, counts, out=dest)
        if final_out is not None:
            np.copyto(final_out, dest)
            return final_out
        return dest
    finally:
        reset_workspace(workspace)


def global_avg_pool2d(x: np.ndarray) -> np.ndarray:
    """Global average pooling to a 1x1 spatial map."""
    x = np.asarray(x, dtype=np.float32)
    return x.mean(axis=(2, 3), keepdims=True).astype(np.float32)


def global_max_pool2d(x: np.ndarray) -> np.ndarray:
    """Global max pooling to a 1x1 spatial map."""
    x = np.asarray(x, dtype=np.float32)
    return x.max(axis=(2, 3), keepdims=True).astype(np.float32)
