"""Data-movement operators: concat, split, slice, gather, reshape, transpose…"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.runtime.tensor_utils import onnx_axis


def concat(tensors: Sequence[np.ndarray], axis: int = 0,
           out: Optional[np.ndarray] = None) -> np.ndarray:
    """Concatenate tensors along an axis, optionally into ``out``."""
    tensors = [np.asarray(t) for t in tensors]
    return np.concatenate(tensors, axis=onnx_axis(axis, tensors[0].ndim),
                          out=out)


def split(x: np.ndarray, parts: Optional[int] = None, sizes: Optional[Sequence[int]] = None,
          axis: int = 0) -> List[np.ndarray]:
    """Split a tensor into equal ``parts`` or into explicit ``sizes`` along ``axis``."""
    x = np.asarray(x)
    axis = onnx_axis(axis, x.ndim)
    if sizes is not None:
        indices = np.cumsum(sizes)[:-1]
        return [np.ascontiguousarray(part) for part in np.split(x, indices, axis=axis)]
    if parts is None:
        raise ValueError("split requires either parts or sizes")
    return [np.ascontiguousarray(part) for part in np.split(x, parts, axis=axis)]


def reshape(x: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    """Reshape with ONNX semantics: 0 copies the input dim, -1 infers."""
    x = np.asarray(x)
    shape = [int(s) for s in np.atleast_1d(np.asarray(shape))]
    resolved = [x.shape[i] if s == 0 and i < x.ndim else s for i, s in enumerate(shape)]
    return x.reshape(resolved)


def transpose(x: np.ndarray, perm: Optional[Sequence[int]] = None) -> np.ndarray:
    """Permute dimensions (reversed order when ``perm`` is omitted)."""
    return np.transpose(np.asarray(x), axes=perm)


def flatten(x: np.ndarray, axis: int = 1) -> np.ndarray:
    """Flatten into a 2D tensor splitting the dims at ``axis``."""
    x = np.asarray(x)
    axis = axis % (x.ndim + 1)
    head = int(np.prod(x.shape[:axis])) if axis > 0 else 1
    return x.reshape(head, -1)


def squeeze(x: np.ndarray, axes: Optional[Sequence[int]] = None) -> np.ndarray:
    """Remove size-1 dimensions (all of them, or the listed axes)."""
    x = np.asarray(x)
    if axes is None:
        return np.squeeze(x)
    axes = tuple(onnx_axis(a, x.ndim) for a in axes)
    return np.squeeze(x, axis=axes)


def unsqueeze(x: np.ndarray, axes: Sequence[int]) -> np.ndarray:
    """Insert size-1 dimensions at the listed axes."""
    x = np.asarray(x)
    out_rank = x.ndim + len(axes)
    for a in sorted(onnx_axis(a, out_rank) for a in axes):
        x = np.expand_dims(x, axis=a)
    return x


def slice_(x: np.ndarray, starts: Sequence[int], ends: Sequence[int],
           axes: Optional[Sequence[int]] = None,
           steps: Optional[Sequence[int]] = None) -> np.ndarray:
    """ONNX ``Slice``: per-axis ``[start:end:step]`` with clamping."""
    x = np.asarray(x)
    starts = [int(s) for s in np.atleast_1d(np.asarray(starts))]
    ends = [int(e) for e in np.atleast_1d(np.asarray(ends))]
    axes = list(range(len(starts))) if axes is None else [int(a) for a in np.atleast_1d(np.asarray(axes))]
    steps = [1] * len(starts) if steps is None else [int(s) for s in np.atleast_1d(np.asarray(steps))]
    slices = [slice(None)] * x.ndim
    for start, end, axis, step in zip(starts, ends, axes, steps):
        axis = onnx_axis(axis, x.ndim)
        # ONNX uses INT64_MAX-ish sentinels for "to the end".
        if end > 2**31:
            end = x.shape[axis]
        if end < -(2**31):
            end = -x.shape[axis] - 1
        slices[axis] = slice(start, end, step)
    return np.ascontiguousarray(x[tuple(slices)])


def gather(data: np.ndarray, indices: np.ndarray, axis: int = 0) -> np.ndarray:
    """ONNX ``Gather``: index ``data`` along ``axis`` with an integer tensor."""
    data = np.asarray(data)
    indices = np.asarray(indices, dtype=np.int64)
    return np.take(data, indices, axis=onnx_axis(axis, data.ndim))


def gather_elements(data: np.ndarray, indices: np.ndarray, axis: int = 0) -> np.ndarray:
    """ONNX ``GatherElements``: elementwise gather along an axis."""
    data = np.asarray(data)
    indices = np.asarray(indices, dtype=np.int64)
    return np.take_along_axis(data, indices, axis=onnx_axis(axis, data.ndim))


def expand(x: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    """Broadcast a tensor to a target shape (ONNX ``Expand``)."""
    x = np.asarray(x)
    target = [int(s) for s in np.atleast_1d(np.asarray(shape))]
    # ONNX allows target dims of 1 to mean "keep the input dim".
    rank = max(x.ndim, len(target))
    in_shape = (1,) * (rank - x.ndim) + x.shape
    target = [1] * (rank - len(target)) + list(target)
    out_shape = [max(i, t) for i, t in zip(in_shape, target)]
    return np.broadcast_to(x.reshape(in_shape), out_shape).copy()


def tile(x: np.ndarray, repeats: Sequence[int]) -> np.ndarray:
    """Repeat a tensor along each axis."""
    return np.tile(np.asarray(x), [int(r) for r in np.atleast_1d(np.asarray(repeats))])


def pad(x: np.ndarray, pads: Sequence[int], mode: str = "constant",
        value: float = 0.0) -> np.ndarray:
    """ONNX ``Pad``: ``pads`` lists the before-padding per axis then the after-padding."""
    x = np.asarray(x)
    pads = [int(p) for p in np.atleast_1d(np.asarray(pads))]
    half = len(pads) // 2
    pad_width = list(zip(pads[:half], pads[half:]))
    np_mode = {"constant": "constant", "reflect": "reflect", "edge": "edge"}[mode]
    if np_mode == "constant":
        return np.pad(x, pad_width, mode="constant", constant_values=value)
    return np.pad(x, pad_width, mode=np_mode)


def resize_nearest(x: np.ndarray, scales: Sequence[float]) -> np.ndarray:
    """Nearest-neighbour resize of an NCHW tensor by per-axis scale factors."""
    x = np.asarray(x)
    scales = [float(s) for s in scales]
    if x.ndim != 4 or len(scales) != 4:
        raise ValueError("resize_nearest expects a 4D tensor and 4 scales")
    out_h = int(round(x.shape[2] * scales[2]))
    out_w = int(round(x.shape[3] * scales[3]))
    rows = np.minimum((np.arange(out_h) / scales[2]).astype(np.int64), x.shape[2] - 1)
    cols = np.minimum((np.arange(out_w) / scales[3]).astype(np.int64), x.shape[3] - 1)
    return np.ascontiguousarray(x[:, :, rows[:, None], cols[None, :]])


def depth_to_space(x: np.ndarray, blocksize: int, mode: str = "DCR") -> np.ndarray:
    """Rearrange channel blocks into spatial positions."""
    n, c, h, w = x.shape
    b = int(blocksize)
    if mode == "DCR":
        y = x.reshape(n, b, b, c // (b * b), h, w)
        y = y.transpose(0, 3, 4, 1, 5, 2)
    else:  # CRD
        y = x.reshape(n, c // (b * b), b, b, h, w)
        y = y.transpose(0, 1, 4, 2, 5, 3)
    return np.ascontiguousarray(y.reshape(n, c // (b * b), h * b, w * b))


def space_to_depth(x: np.ndarray, blocksize: int) -> np.ndarray:
    """Rearrange spatial blocks into channels (Yolo ``Focus`` layer idiom)."""
    n, c, h, w = x.shape
    b = int(blocksize)
    y = x.reshape(n, c, h // b, b, w // b, b)
    y = y.transpose(0, 3, 5, 1, 2, 4)
    return np.ascontiguousarray(y.reshape(n, c * b * b, h // b, w // b))


def cast(x: np.ndarray, to: str = "float32") -> np.ndarray:
    """Cast to another element type (dtype name string)."""
    return np.asarray(x).astype(to)


def shape_of(x: np.ndarray) -> np.ndarray:
    """Return the shape of a tensor as an int64 vector (ONNX ``Shape``)."""
    return np.asarray(np.asarray(x).shape, dtype=np.int64)


def size_of(x: np.ndarray) -> np.ndarray:
    """Total element count as an int64 scalar."""
    return np.asarray(np.asarray(x).size, dtype=np.int64)


def constant_of_shape(shape: Sequence[int], value: float = 0.0) -> np.ndarray:
    """Create a filled tensor of the given shape."""
    value_arr = np.asarray(value)
    return np.full([int(s) for s in np.atleast_1d(np.asarray(shape))], value_arr,
                   dtype=value_arr.dtype if value_arr.dtype != np.float64 else np.float32)


def one_hot(indices: np.ndarray, depth: int, values: Sequence[float] = (0.0, 1.0),
            axis: int = -1) -> np.ndarray:
    """One-hot encode integer indices."""
    indices = np.asarray(indices, dtype=np.int64)
    off, on = float(values[0]), float(values[1])
    eye = np.full((int(depth),), off, dtype=np.float32)
    out = np.full(indices.shape + (int(depth),), off, dtype=np.float32)
    flat = indices.reshape(-1)
    out_flat = out.reshape(-1, int(depth))
    valid = (flat >= 0) & (flat < int(depth))
    out_flat[np.arange(flat.size)[valid], flat[valid]] = on
    out = out_flat.reshape(indices.shape + (int(depth),))
    if axis != -1:
        out = np.moveaxis(out, -1, axis)
    return out
