"""Elementwise activation functions (unit-cost ops in the paper's model)."""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import special as _special


def relu(x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Rectified linear unit (optionally into a caller-owned ``out`` buffer)."""
    return np.maximum(np.asarray(x), 0, out=out)


def leaky_relu(x: np.ndarray, alpha: float = 0.01) -> np.ndarray:
    """Leaky ReLU with negative-slope ``alpha``."""
    x = np.asarray(x)
    return np.where(x >= 0, x, alpha * x)


def prelu(x: np.ndarray, slope: np.ndarray) -> np.ndarray:
    """Parametric ReLU; ``slope`` broadcasts over the channel dimension."""
    x = np.asarray(x)
    slope = np.asarray(slope)
    if slope.ndim == 1 and x.ndim == 4:
        slope = slope.reshape(1, -1, 1, 1)
    return np.where(x >= 0, x, slope * x)


def sigmoid(x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    return _special.expit(np.asarray(x, dtype=np.float32), out=out)


def hard_sigmoid(x: np.ndarray, alpha: float = 0.2, beta: float = 0.5) -> np.ndarray:
    """Piecewise-linear sigmoid approximation."""
    return np.clip(alpha * np.asarray(x) + beta, 0.0, 1.0)


def tanh(x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Hyperbolic tangent."""
    return np.tanh(np.asarray(x), out=out)


def erf(x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Gauss error function (the core of ONNX-exported GELU)."""
    return _special.erf(np.asarray(x, dtype=np.float32), out=out)


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (exact formulation)."""
    x = np.asarray(x, dtype=np.float32)
    return 0.5 * x * (1.0 + _special.erf(x / np.sqrt(2.0, dtype=np.float32)))


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish activation (x * sigmoid(x)), used by Yolo V5."""
    x = np.asarray(x, dtype=np.float32)
    return x * sigmoid(x)


def hard_swish(x: np.ndarray) -> np.ndarray:
    """Hard-swish activation."""
    x = np.asarray(x, dtype=np.float32)
    return x * np.clip(x / 6.0 + 0.5, 0.0, 1.0)


def mish(x: np.ndarray) -> np.ndarray:
    """Mish activation: x * tanh(softplus(x))."""
    x = np.asarray(x, dtype=np.float32)
    return x * np.tanh(softplus(x))


def softplus(x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Softplus: log(1 + exp(x)), stabilized."""
    x = np.asarray(x, dtype=np.float32)
    return np.logaddexp(0.0, x, out=out)


def elu(x: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    """Exponential linear unit."""
    x = np.asarray(x, dtype=np.float32)
    return np.where(x >= 0, x, alpha * (np.exp(x) - 1.0))


def selu(x: np.ndarray, alpha: float = 1.6732632, gamma: float = 1.0507010) -> np.ndarray:
    """Scaled exponential linear unit."""
    return gamma * elu(x, alpha)


def clip(x: np.ndarray, min_value: Optional[float] = None,
         max_value: Optional[float] = None,
         out: Optional[np.ndarray] = None) -> np.ndarray:
    """Clamp values into ``[min_value, max_value]`` (either bound optional)."""
    lo = -np.inf if min_value is None else min_value
    hi = np.inf if max_value is None else max_value
    return np.clip(np.asarray(x), lo, hi, out=out)


def softmax(x: np.ndarray, axis: int = -1,
            out: Optional[np.ndarray] = None) -> np.ndarray:
    """Numerically stable softmax along ``axis``.

    The final division can write into a caller-owned ``out`` buffer (the
    same ufunc either way, so results are bitwise-identical with and
    without a destination); the stabilisation intermediates still allocate.
    """
    x = np.asarray(x, dtype=np.float32)
    shifted = x - x.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return np.divide(exps, exps.sum(axis=axis, keepdims=True), out=out)


def log_softmax(x: np.ndarray, axis: int = -1,
                out: Optional[np.ndarray] = None) -> np.ndarray:
    """Log of softmax, computed stably (``out`` as in :func:`softmax`)."""
    x = np.asarray(x, dtype=np.float32)
    shifted = x - x.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    return np.subtract(shifted, log_sum, out=out)
