"""Attention primitives used by the BERT model graphs.

The BERT dataflow graph in the paper is built from ordinary MatMul /
Add / Softmax / Transpose nodes (the MHA sub-graph of Fig. 3); these
helpers provide fused reference implementations used by tests and by the
examples to cross-check the graph-level execution.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.runtime.ops.activations import softmax
from repro.runtime.ops.linear import linear


def scaled_dot_product_attention(
    query: np.ndarray,
    key: np.ndarray,
    value: np.ndarray,
    mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Standard scaled dot-product attention.

    Shapes follow the (batch, heads, seq, head_dim) convention.
    """
    query = np.asarray(query, dtype=np.float32)
    key = np.asarray(key, dtype=np.float32)
    value = np.asarray(value, dtype=np.float32)
    d_k = query.shape[-1]
    scores = np.matmul(query, np.swapaxes(key, -1, -2)) / np.sqrt(float(d_k))
    if mask is not None:
        scores = scores + np.asarray(mask, dtype=np.float32)
    weights = softmax(scores, axis=-1)
    return np.matmul(weights, value)


def split_heads(x: np.ndarray, num_heads: int) -> np.ndarray:
    """(batch, seq, hidden) -> (batch, heads, seq, head_dim)."""
    b, s, h = x.shape
    head_dim = h // num_heads
    return x.reshape(b, s, num_heads, head_dim).transpose(0, 2, 1, 3)


def merge_heads(x: np.ndarray) -> np.ndarray:
    """(batch, heads, seq, head_dim) -> (batch, seq, hidden)."""
    b, heads, s, head_dim = x.shape
    return np.ascontiguousarray(x.transpose(0, 2, 1, 3).reshape(b, s, heads * head_dim))


def multi_head_attention(
    x: np.ndarray,
    wq: np.ndarray,
    wk: np.ndarray,
    wv: np.ndarray,
    wo: np.ndarray,
    num_heads: int,
    bq: Optional[np.ndarray] = None,
    bk: Optional[np.ndarray] = None,
    bv: Optional[np.ndarray] = None,
    bo: Optional[np.ndarray] = None,
    mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Reference multi-head self-attention block (pre-projection weights)."""
    q = split_heads(linear(x, wq, bq), num_heads)
    k = split_heads(linear(x, wk, bk), num_heads)
    v = split_heads(linear(x, wv, bv), num_heads)
    context = scaled_dot_product_attention(q, k, v, mask=mask)
    return linear(merge_heads(context), wo, bo)
