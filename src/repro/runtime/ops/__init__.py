"""Numpy-backed operator implementations.

Each module implements one family of operators with ONNX semantics and
NCHW tensor layout.  The flat callable namespace that generated code and
the graph executor use lives in :mod:`repro.runtime.functional`.
"""

from repro.runtime.ops import (  # noqa: F401
    activations,
    attention,
    conv,
    elementwise,
    linear,
    normalization,
    pooling,
    reduction,
    tensor_manipulation,
)

__all__ = [
    "activations",
    "attention",
    "conv",
    "elementwise",
    "linear",
    "normalization",
    "pooling",
    "reduction",
    "tensor_manipulation",
]
