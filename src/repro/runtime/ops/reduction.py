"""Reduction operators (mean/sum/max/min/prod, argmax/argmin, topk, cumsum)."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np


def _axes(axes: Optional[Sequence[int]], ndim: int) -> Optional[Tuple[int, ...]]:
    if axes is None:
        return None
    return tuple(int(a) % ndim for a in np.atleast_1d(np.asarray(axes)))


def reduce_mean(x: np.ndarray, axes: Optional[Sequence[int]] = None,
                keepdims: bool = True) -> np.ndarray:
    """Mean over the given axes (all axes when None)."""
    x = np.asarray(x, dtype=np.float32)
    return x.mean(axis=_axes(axes, x.ndim), keepdims=keepdims)


def reduce_sum(x: np.ndarray, axes: Optional[Sequence[int]] = None,
               keepdims: bool = True) -> np.ndarray:
    """Sum over the given axes."""
    x = np.asarray(x, dtype=np.float32)
    return x.sum(axis=_axes(axes, x.ndim), keepdims=keepdims)


def reduce_max(x: np.ndarray, axes: Optional[Sequence[int]] = None,
               keepdims: bool = True) -> np.ndarray:
    """Max over the given axes."""
    x = np.asarray(x)
    return x.max(axis=_axes(axes, x.ndim), keepdims=keepdims)


def reduce_min(x: np.ndarray, axes: Optional[Sequence[int]] = None,
               keepdims: bool = True) -> np.ndarray:
    """Min over the given axes."""
    x = np.asarray(x)
    return x.min(axis=_axes(axes, x.ndim), keepdims=keepdims)


def reduce_prod(x: np.ndarray, axes: Optional[Sequence[int]] = None,
                keepdims: bool = True) -> np.ndarray:
    """Product over the given axes."""
    x = np.asarray(x, dtype=np.float32)
    return x.prod(axis=_axes(axes, x.ndim), keepdims=keepdims)


def reduce_l2(x: np.ndarray, axes: Optional[Sequence[int]] = None,
              keepdims: bool = True) -> np.ndarray:
    """L2 norm over the given axes."""
    x = np.asarray(x, dtype=np.float32)
    return np.sqrt((x * x).sum(axis=_axes(axes, x.ndim), keepdims=keepdims))


def argmax(x: np.ndarray, axis: int = 0, keepdims: bool = True) -> np.ndarray:
    """Index of the maximum along one axis (int64)."""
    x = np.asarray(x)
    out = np.argmax(x, axis=axis)
    if keepdims:
        out = np.expand_dims(out, axis=axis)
    return out.astype(np.int64)


def argmin(x: np.ndarray, axis: int = 0, keepdims: bool = True) -> np.ndarray:
    """Index of the minimum along one axis (int64)."""
    x = np.asarray(x)
    out = np.argmin(x, axis=axis)
    if keepdims:
        out = np.expand_dims(out, axis=axis)
    return out.astype(np.int64)


def cumsum(x: np.ndarray, axis: int = 0) -> np.ndarray:
    """Cumulative sum along an axis."""
    return np.cumsum(np.asarray(x), axis=int(axis))


def topk(x: np.ndarray, k: int, axis: int = -1, largest: bool = True,
         sorted_: bool = True) -> Tuple[np.ndarray, np.ndarray]:
    """Top-k values and indices along an axis (values, indices)."""
    x = np.asarray(x)
    k = int(k)
    axis = int(axis) % x.ndim
    if largest:
        idx = np.argpartition(-x, kth=min(k - 1, x.shape[axis] - 1), axis=axis)
    else:
        idx = np.argpartition(x, kth=min(k - 1, x.shape[axis] - 1), axis=axis)
    idx = np.take(idx, np.arange(k), axis=axis)
    values = np.take_along_axis(x, idx, axis=axis)
    if sorted_:
        order = np.argsort(-values if largest else values, axis=axis)
        idx = np.take_along_axis(idx, order, axis=axis)
        values = np.take_along_axis(values, order, axis=axis)
    return values, idx.astype(np.int64)
