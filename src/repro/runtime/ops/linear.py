"""Dense linear-algebra operators (MatMul / Gemm / Linear).

All three entry points take an optional ``out=`` destination so the planned
execution engine (and any caller that owns a result buffer) can run them
allocation-free: the product lands in ``out`` via ``np.matmul(..., out=)``
and the epilogue (``alpha`` scale, ``beta * C`` / bias add) is applied in
place.  A destination that is non-contiguous or overlaps an operand is
staged through a temporary so BLAS always sees a clean output buffer and
results are bitwise-identical to the ``out=None`` path.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def _matmul_into(a: np.ndarray, b: np.ndarray,
                 out: Optional[np.ndarray]) -> np.ndarray:
    if out is None:
        return np.matmul(a, b)
    if (not out.flags.c_contiguous
            or np.may_share_memory(out, a)
            or np.may_share_memory(out, b)):
        result = np.matmul(a, b)
        if out.shape != result.shape or out.dtype != result.dtype:
            raise ValueError(
                f"matmul out buffer has shape {out.shape}/{out.dtype}, "
                f"expected {result.shape}/{result.dtype}")
        np.copyto(out, result)
        return out
    return np.matmul(a, b, out=out)


def matmul(a: np.ndarray, b: np.ndarray,
           out: Optional[np.ndarray] = None) -> np.ndarray:
    """Batched matrix multiplication with numpy broadcasting semantics."""
    return _matmul_into(np.asarray(a, dtype=np.float32),
                        np.asarray(b, dtype=np.float32), out)


def gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: Optional[np.ndarray] = None,
    alpha: float = 1.0,
    beta: float = 1.0,
    trans_a: bool = False,
    trans_b: bool = False,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """ONNX ``Gemm``: ``alpha * A' @ B' + beta * C`` on 2D operands.

    The product is computed straight into the destination and the scale /
    bias epilogue runs in place — no ``alpha * (a @ b)`` temporary, and the
    ``beta == 1`` case (the ONNX default, used throughout the zoo) adds
    ``C`` without one either.  Only ``beta`` outside ``{0, 1}`` scales
    ``C`` into a C-sized temporary, to keep results bitwise-identical to
    the unfused expression.
    """
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    if trans_a:
        a = a.T
    if trans_b:
        b = b.T
    if c is not None and beta != 0.0:
        c = np.asarray(c, dtype=np.float32)
        if out is not None and np.may_share_memory(out, c):
            # The product would overwrite C before the epilogue reads it.
            c = c.copy()
    result = _matmul_into(a, b, out)
    if alpha != 1.0:
        np.multiply(result, np.float32(alpha), out=result)
    if c is not None and beta != 0.0:
        if beta == 1.0:
            np.add(result, c, out=result)
        else:
            np.add(result, c * np.float32(beta), out=result)
    return result


def linear(x: np.ndarray, weight: np.ndarray,
           bias: Optional[np.ndarray] = None,
           out: Optional[np.ndarray] = None) -> np.ndarray:
    """Dense layer ``x @ W + b`` where W has shape (in_features, out_features).

    The bias broadcast-adds in place on the product buffer instead of
    allocating a second output.
    """
    if bias is not None:
        bias = np.asarray(bias, dtype=np.float32)
        if out is not None and np.may_share_memory(out, bias):
            bias = bias.copy()  # the product would overwrite it first
    result = _matmul_into(np.asarray(x, dtype=np.float32),
                          np.asarray(weight, dtype=np.float32), out)
    if bias is not None:
        np.add(result, bias, out=result)
    return result


def einsum(equation: str, *operands: np.ndarray) -> np.ndarray:
    """Thin wrapper over :func:`numpy.einsum` (float32 result)."""
    return np.einsum(equation, *[np.asarray(o, dtype=np.float32) for o in operands])
