"""Dense linear-algebra operators (MatMul / Gemm / Linear)."""

from __future__ import annotations

from typing import Optional

import numpy as np


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Batched matrix multiplication with numpy broadcasting semantics."""
    return np.matmul(np.asarray(a, dtype=np.float32), np.asarray(b, dtype=np.float32))


def gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: Optional[np.ndarray] = None,
    alpha: float = 1.0,
    beta: float = 1.0,
    trans_a: bool = False,
    trans_b: bool = False,
) -> np.ndarray:
    """ONNX ``Gemm``: ``alpha * A' @ B' + beta * C`` on 2D operands."""
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    if trans_a:
        a = a.T
    if trans_b:
        b = b.T
    out = alpha * (a @ b)
    if c is not None and beta != 0.0:
        out = out + beta * np.asarray(c, dtype=np.float32)
    return out.astype(np.float32, copy=False)


def linear(x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray] = None) -> np.ndarray:
    """Dense layer ``x @ W + b`` where W has shape (in_features, out_features)."""
    out = np.matmul(np.asarray(x, dtype=np.float32), np.asarray(weight, dtype=np.float32))
    if bias is not None:
        out = out + np.asarray(bias, dtype=np.float32)
    return out


def einsum(equation: str, *operands: np.ndarray) -> np.ndarray:
    """Thin wrapper over :func:`numpy.einsum` (float32 result)."""
    return np.einsum(equation, *[np.asarray(o, dtype=np.float32) for o in operands])
