"""Normalization operators (batch / layer / instance norm), inference mode."""

from __future__ import annotations

from typing import Optional

import numpy as np


def batch_norm(
    x: np.ndarray,
    scale: np.ndarray,
    bias: np.ndarray,
    mean: np.ndarray,
    var: np.ndarray,
    epsilon: float = 1e-5,
) -> np.ndarray:
    """Inference-mode batch normalization over the channel dimension (NCHW or NC)."""
    x = np.asarray(x, dtype=np.float32)
    shape = [1] * x.ndim
    if x.ndim >= 2:
        shape[1] = -1
    else:
        shape[0] = -1
    scale = np.asarray(scale, dtype=np.float32).reshape(shape)
    bias = np.asarray(bias, dtype=np.float32).reshape(shape)
    mean = np.asarray(mean, dtype=np.float32).reshape(shape)
    var = np.asarray(var, dtype=np.float32).reshape(shape)
    inv_std = 1.0 / np.sqrt(var + epsilon)
    return (x - mean) * inv_std * scale + bias


def layer_norm(
    x: np.ndarray,
    scale: np.ndarray,
    bias: Optional[np.ndarray] = None,
    axis: int = -1,
    epsilon: float = 1e-5,
) -> np.ndarray:
    """Layer normalization over the trailing dimensions starting at ``axis``."""
    x = np.asarray(x, dtype=np.float32)
    axis = axis % x.ndim
    reduce_axes = tuple(range(axis, x.ndim))
    mean = x.mean(axis=reduce_axes, keepdims=True)
    var = x.var(axis=reduce_axes, keepdims=True)
    normed = (x - mean) / np.sqrt(var + epsilon)
    out = normed * np.asarray(scale, dtype=np.float32)
    if bias is not None:
        out = out + np.asarray(bias, dtype=np.float32)
    return out


def instance_norm(
    x: np.ndarray,
    scale: np.ndarray,
    bias: np.ndarray,
    epsilon: float = 1e-5,
) -> np.ndarray:
    """Instance normalization over spatial dimensions of an NCHW tensor."""
    x = np.asarray(x, dtype=np.float32)
    mean = x.mean(axis=(2, 3), keepdims=True)
    var = x.var(axis=(2, 3), keepdims=True)
    normed = (x - mean) / np.sqrt(var + epsilon)
    scale = np.asarray(scale, dtype=np.float32).reshape(1, -1, 1, 1)
    bias = np.asarray(bias, dtype=np.float32).reshape(1, -1, 1, 1)
    return normed * scale + bias
