"""Per-node profiling and the slack database.

The paper's Ramiel keeps "a profile database [that] holds information about
the execution trace and the slacks during communication which can be used
offline" to guide hyperclustering.  :func:`profile_model` runs a model a few
times with the reference executor, records per-node wall-clock times, and
aggregates them into a :class:`GraphProfile`.  The measured times can be fed
into the schedule simulator (``repro.clustering.schedule``) as a
measurement-based cost provider — the dynamic counterpart of the static cost
model.
"""

from __future__ import annotations

import dataclasses
import statistics
import time
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.ir.model import Model
from repro.ir.node import OpNode
from repro.runtime.executor import GraphExecutor
from repro.runtime.plan import ExecutionPlan
from repro.runtime.session import Session


@dataclasses.dataclass
class OpProfile:
    """Timing samples for one operator node."""

    node_name: str
    op_type: str
    samples_s: List[float] = dataclasses.field(default_factory=list)

    @property
    def mean_s(self) -> float:
        """Mean execution time in seconds."""
        return statistics.fmean(self.samples_s) if self.samples_s else 0.0

    @property
    def median_s(self) -> float:
        """Median execution time in seconds."""
        return statistics.median(self.samples_s) if self.samples_s else 0.0

    @property
    def total_s(self) -> float:
        """Total time across samples."""
        return float(sum(self.samples_s))


@dataclasses.dataclass
class GraphProfile:
    """Aggregated execution profile of one model."""

    model_name: str
    num_runs: int
    ops: Dict[str, OpProfile]
    wall_time_s: float
    #: which engine produced the samples ("interpreter" or "plan")
    engine: str = "interpreter"
    #: final arena counters when profiling through the planned engine
    #: (allocations / reuses / slots / pooled), else None
    arena_stats: Optional[Dict[str, int]] = None
    #: new arena buffer acquisitions during the *measured* runs (after
    #: warmup); 0 means the profiled hot path was allocation-free — the
    #: expected steady state once every signature has specialized
    arena_allocs_during_runs: Optional[int] = None

    def cost_provider(self, scale: float = 1e6) -> Dict[str, float]:
        """Node-name -> measured cost mapping for the schedule simulator.

        ``scale`` converts seconds into convenient integer-ish units
        (microseconds by default) so measured costs are comparable in
        magnitude to the static weights.
        """
        return {name: op.median_s * scale for name, op in self.ops.items()}

    def total_compute_s(self) -> float:
        """Sum of mean per-node times (one inference worth of work)."""
        return float(sum(op.mean_s for op in self.ops.values()))

    def slowest(self, k: int = 10) -> List[OpProfile]:
        """The k slowest nodes by mean time."""
        return sorted(self.ops.values(), key=lambda op: op.mean_s, reverse=True)[:k]

    def by_op_type(self) -> Dict[str, float]:
        """Mean time aggregated per op type (seconds)."""
        agg: Dict[str, float] = {}
        for op in self.ops.values():
            agg[op.op_type] = agg.get(op.op_type, 0.0) + op.mean_s
        return dict(sorted(agg.items(), key=lambda kv: kv[1], reverse=True))


def profile_model(
    model,
    inputs: Mapping[str, np.ndarray],
    num_runs: int = 3,
    warmup: int = 1,
    engine: str = "interpreter",
) -> GraphProfile:
    """Measure per-node execution times of a model on given inputs.

    Parameters
    ----------
    model:
        IR model to profile, or an in-process
        :class:`~repro.runtime.session.Session` (``"plan"`` / ``"interp"``)
        — the unified execution surface.  Profiling a session reuses its
        warm executor state (arena, cached weight layouts); note that a
        fused plan session attributes each fused chain to its head node,
        while ``engine="plan"`` builds a fusion-disabled plan with exact
        1:1 node attribution.
    inputs:
        Graph-input feed dictionary.
    num_runs:
        Number of measured runs (medians are robust to the first-touch
        allocation noise that the warmup does not absorb).
    warmup:
        Unmeasured warmup runs.
    engine:
        Ignored when ``model`` is a session.  ``"interpreter"`` (default)
        profiles through :class:`GraphExecutor`; ``"plan"`` reuses a
        compile-once, fusion-disabled
        :class:`~repro.runtime.plan.ExecutionPlan`, so the per-node numbers
        exclude the interpreter's dispatch/attribute-parsing overhead and
        reflect what the planned serving hot path actually pays (fusion is
        disabled so every step maps 1:1 onto a node); ``"plan-fused"``
        profiles the *production* plan — fusion on, heavy destination
        passing on — attributing each fused chain's time to its head node,
        which is exactly what the serving hot path executes.
    """
    session: Optional[Session] = None
    if isinstance(model, Session):
        session = model
        if session.plan is None and session.interpreter is None:
            raise ValueError(
                "profiling requires an in-process session ('plan' or "
                f"'interp'), not executor {session.executor!r}")
        executor = session.plan if session.plan is not None else session.interpreter
        engine = f"session:{session.executor}"
        model_name = session.model_name
    elif engine == "plan":
        executor = ExecutionPlan(model, fuse=False)
        model_name = model.name
    elif engine == "plan-fused":
        executor = ExecutionPlan(model, fuse=True)
        model_name = model.name
    elif engine == "interpreter":
        executor = GraphExecutor(model)
        model_name = model.name
    else:
        raise ValueError(f"unknown profiling engine {engine!r}; "
                         "use 'interpreter', 'plan' or 'plan-fused', or "
                         "pass a Session")
    plan_backed = isinstance(executor, ExecutionPlan)
    ops: Dict[str, OpProfile] = {}

    def hook(node: OpNode, seconds: float) -> None:
        prof = ops.get(node.name)
        if prof is None:
            prof = ops[node.name] = OpProfile(node.name, node.op_type)
        prof.samples_s.append(seconds)

    for _ in range(max(warmup, 0)):
        executor.run(inputs)

    allocs_before = (executor.stats()["arena"]["allocations"]
                     if plan_backed else None)
    start = time.perf_counter()
    for _ in range(max(num_runs, 1)):
        executor.run(inputs, trace_hook=hook)
    wall = time.perf_counter() - start

    profile = GraphProfile(
        model_name=model_name,
        num_runs=max(num_runs, 1),
        ops=ops,
        wall_time_s=wall,
        engine=engine,
    )
    if plan_backed:
        stats = executor.stats()
        profile.arena_stats = stats["arena"]
        profile.arena_allocs_during_runs = (
            stats["arena"]["allocations"] - allocs_before)
    return profile


def profile_plan_steps(
    plan_or_session,
    inputs: Mapping[str, np.ndarray],
    num_runs: int = 20,
    warmup: int = 2,
    tracer=None,
) -> List[Dict]:
    """Per-step timings of the *fused* plan hot path, via the span tracer.

    Unlike ``profile_model(engine="plan")`` — which disables fusion for 1:1
    node attribution — this measures the production step loop exactly as
    serving executes it: fused chains stay fused, heavy destination passing
    stays on, and each step's span carries its fused tail in the args.
    Powers the per-step table of the ``repro trace`` CLI verb.

    Accepts an :class:`~repro.runtime.plan.ExecutionPlan` or a ``"plan"``
    :class:`~repro.runtime.session.Session`; pass a ``tracer`` to reuse an
    existing buffer (it is cleared between warmup and measurement).
    Returns one row per plan step, schedule order, with count / total /
    mean / median milliseconds aggregated over ``num_runs``.
    """
    from repro.observability import Tracer

    if isinstance(plan_or_session, Session):
        plan = plan_or_session.plan
        if plan is None:
            raise ValueError(
                "profile_plan_steps requires a 'plan' session, not "
                f"executor {plan_or_session.executor!r}")
    elif isinstance(plan_or_session, ExecutionPlan):
        plan = plan_or_session
    else:
        plan = ExecutionPlan(plan_or_session)

    if tracer is None:
        tracer = Tracer(capacity=max(4096, len(plan._steps) * max(num_runs, 1) + 64))
    had_tracer = plan.tracer
    plan.enable_tracing(tracer)
    try:
        for _ in range(max(warmup, 0)):
            plan.run(inputs)
        tracer.clear()
        for _ in range(max(num_runs, 1)):
            plan.run(inputs)
        events = [e for e in tracer.events() if e.cat == "plan"]
    finally:
        if had_tracer is not None:
            plan.enable_tracing(had_tracer)
        else:
            plan.disable_tracing()

    order: List[str] = []
    samples: Dict[str, List[int]] = {}
    meta: Dict[str, Dict] = {}
    for event in events:
        if event.name not in samples:
            order.append(event.name)
            samples[event.name] = []
            meta[event.name] = dict(event.args or {})
        samples[event.name].append(event.dur_ns)
    rows: List[Dict] = []
    for label in order:
        durs = samples[label]
        info = meta[label]
        rows.append({
            "step": label,
            "op": info.get("op", ""),
            "node": info.get("node", ""),
            "fused": info.get("fused", ""),
            "count": len(durs),
            "total_ms": sum(durs) / 1e6,
            "mean_ms": statistics.fmean(durs) / 1e6,
            "median_ms": statistics.median(durs) / 1e6,
        })
    return rows
