"""Warm, reusable executor pools for Ramiel-generated parallel modules.

:mod:`repro.runtime.process_runtime` spawns one thread or process per
cluster *per call*, which is the right shape for one-shot experiments but
wasteful under serving traffic: worker startup (and, for processes, weight
pickling) is paid on every request.  :class:`WarmExecutorPool` keeps one
long-lived worker per cluster and feeds it jobs through per-worker queues,
so repeated executions of the same compiled module only pay for the actual
operator work plus queue hand-off.

Two backends are supported:

* ``"thread"`` — one persistent thread per cluster.  numpy releases the GIL
  inside BLAS so clusters still overlap; fresh thread channels are created
  per run (they are cheap).
* ``"process"`` — one persistent forked process per cluster (the paper's
  runtime, minus the per-call fork).  The module, the weights and the
  channel queues are inherited at fork time and reused across runs; a
  correct clustering fully drains every channel each run, so reuse is safe.
  Requires a platform with the ``fork`` start method.

A run that times out or raises leaves workers in an unknown state (they may
be blocked on a channel ``get`` that will never be satisfied), so the pool
marks itself *broken* and refuses further work; :meth:`restart` tears the
workers down and spawns a fresh set over the same compiled module (counted
in ``stats()["restarts"]``), which is much cheaper than recompiling.

**Observability.**  The pool is the boundary where PR 6's tracing used to
go dark: spans stopped at ``session.run`` because the actual operator work
happens on worker threads/processes the coordinator tracer cannot see.
With a tracer attached (constructor ``tracer=`` or :meth:`set_tracer`),
every dispatched job carries a
:class:`~repro.observability.context.TraceContext`; each worker runs its
own thread/process-local :class:`~repro.observability.Tracer`, records its
``worker.execute`` spans against its **real pid/tid**, and ships the
completed buffer back with the job result over the existing done queue.
The pool accumulates per-worker
:class:`~repro.observability.merge.WorkerTraceBuffer`\\ s (bounded, with
per-worker drop accounting) that
:func:`repro.observability.merge.merge_traces` aligns — using the
per-worker **clock offsets measured by a startup handshake** — into one
multi-process Chrome trace.  Untraced dispatch stays on the fast path: the
job tuple carries ``None`` and the worker pays one ``is None`` check
(gated at paired-ratio parity in
``benchmarks/test_observability_overhead.py``).

Worker **metrics** (dispatch/execute/queue-wait timings, channel hand-off
bytes and nanoseconds, occupancy, restarts) accumulate in ``stats()`` and
publish into a shared ``MetricsRegistry`` via :meth:`publish_metrics`.
Channel byte/ns accounting for the ``"process"`` backend requires the
tracer at *construction* time (the wrapped channels are inherited at
fork); span shipping works whenever a tracer is attached.

**Self-healing.**  The pool also exposes the supervision primitives
:mod:`repro.resilience` builds on: per-worker *heartbeats* (the last time
a worker produced any message — job result, clock-sync or ``__ping__``
reply), :meth:`worker_alive` / :meth:`inflight` liveness probes,
:meth:`fail_inflight` (fail a stuck run on behalf of a dead or wedged
worker in seconds instead of waiting out the batch timeout),
:meth:`respawn_worker` / :meth:`heal` (replace a *single* failed worker —
fresh job queue, reused channels and weights, a one-worker clock-sync
handshake — instead of a full :meth:`restart`), and
:meth:`set_fault_injector` (ship deterministic fault directives to the
workers for chaos testing; ``None`` directives cost one ``is not None``
check per job).  Worker failures ship their **remote traceback text**
home, so a cross-process exception reads like a local one.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue
import threading
import time
from collections import deque
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.observability.context import TraceContext
from repro.observability.merge import WorkerTraceBuffer
from repro.observability.trace import Tracer
from repro.resilience.faults import apply_worker_fault
from repro.runtime.channels import (
    ChannelTelemetry,
    instrument_channels,
    make_process_channels,
    make_thread_channels,
)
from repro.runtime.process_runtime import ParallelExecutionError, remote_error_text

#: sentinel ticket for the clock-offset handshake messages
_SYNC = "__sync__"

#: sentinel ticket for supervisor heartbeat pings (reply proves liveness)
_PING = "__ping__"

#: per-worker local tracer capacity; one run's spans are drained after
#: every job, so this only bounds a single job's recording
_WORKER_TRACER_CAPACITY = 4096

#: per-worker accumulation cap in the coordinator; oldest spans are evicted
#: (and counted as drops) once a worker's lane exceeds this
_WORKER_BUFFER_CAPACITY = 16384


def _drain_worker_tracer(tracer: Tracer, ctx: TraceContext,
                         queue_wait_ns: int, channel_delta) -> Dict:
    """Package a worker-local tracer's buffer for the trip home."""
    snapshot = tracer.export()
    tracer.clear()
    spans = [(e.name, e.cat, e.start_ns, e.dur_ns,
              dict(e.args) if e.args else None)
             for e in snapshot["events"]]
    return {
        "spans": spans,
        "dropped": snapshot["dropped"],
        "pid": os.getpid(),
        "tid": threading.get_ident(),
        "trace_id": ctx.trace_id,
        "queue_wait_ns": queue_wait_ns,
        "channels": channel_delta,
    }


def _thread_worker(fn, weights, jobs, done, index) -> None:
    tracer: Optional[Tracer] = None
    while True:
        job = jobs.get()
        if job is None:
            return
        ticket = job[0]
        if ticket == _SYNC or ticket == _PING:
            done.put((ticket, index, time.perf_counter_ns(), None, 0, None))
            continue
        received_ns = time.perf_counter_ns()
        _, inputs, channels, ctx, fault = job
        start_ns = time.perf_counter_ns()
        if fault is not None:
            try:
                action = apply_worker_fault(fault, is_process=False)
            except BaseException as exc:  # noqa: BLE001 - injected failure
                done.put((ticket, index, {}, remote_error_text(exc),
                          time.perf_counter_ns() - start_ns, None))
                continue
            if action == "silent":
                if fault[0] == "crash":
                    return  # the thread vanishes without replying
                continue  # hang: stay silent for this job
            if action == "corrupt":
                done.put(("__corrupt__", index))
                continue
        try:
            if ctx is None:
                outputs = fn(inputs, weights, channels)
                done.put((ticket, index, outputs, None,
                          time.perf_counter_ns() - start_ns, None))
                continue
            if tracer is None:
                tracer = Tracer(capacity=_WORKER_TRACER_CAPACITY)
            queue_wait_ns = ctx.queue_wait_ns(received_ns)
            args = ctx.span_args({
                "cluster": str(index),
                "queue_wait_us": str(queue_wait_ns // 1000)})
            with tracer.span("worker.execute", cat="worker", args=args):
                outputs = fn(inputs, weights, channels)
            exec_ns = time.perf_counter_ns() - start_ns
            # Thread workers share the coordinator's channel telemetry
            # object, so no per-job channel delta is shipped (it would
            # double count against concurrent workers).
            payload = _drain_worker_tracer(tracer, ctx, queue_wait_ns, None)
            done.put((ticket, index, outputs, None, exec_ns, payload))
        except BaseException as exc:  # noqa: BLE001 - propagate to the caller
            done.put((ticket, index, {}, remote_error_text(exc),
                      time.perf_counter_ns() - start_ns, None))


def _process_worker(fn, weights, channels, jobs, done, index,
                    telemetry: Optional[ChannelTelemetry]) -> None:
    tracer: Optional[Tracer] = None
    while True:
        job = jobs.get()
        if job is None:
            return
        ticket = job[0]
        if ticket == _SYNC or ticket == _PING:
            done.put((ticket, index, time.perf_counter_ns(), None, 0, None))
            continue
        received_ns = time.perf_counter_ns()
        _, inputs, ctx, fault = job
        start_ns = time.perf_counter_ns()
        if fault is not None:
            try:
                action = apply_worker_fault(fault, is_process=True)
            except BaseException as exc:  # noqa: BLE001 - injected failure
                done.put((ticket, index, {}, remote_error_text(exc),
                          time.perf_counter_ns() - start_ns, None))
                continue
            if action == "silent":
                continue  # hang: stay silent for this job
            if action == "corrupt":
                done.put(("__corrupt__", index))
                continue
        try:
            if ctx is None:
                outputs = fn(inputs, weights, channels)
                done.put((ticket, index, outputs, None,
                          time.perf_counter_ns() - start_ns, None))
                continue
            if tracer is None:
                tracer = Tracer(capacity=_WORKER_TRACER_CAPACITY)
            channels_before = (telemetry.snapshot()
                               if telemetry is not None else None)
            queue_wait_ns = ctx.queue_wait_ns(received_ns)
            args = ctx.span_args({
                "cluster": str(index),
                "queue_wait_us": str(queue_wait_ns // 1000)})
            with tracer.span("worker.execute", cat="worker", args=args):
                outputs = fn(inputs, weights, channels)
            exec_ns = time.perf_counter_ns() - start_ns
            # This fork's telemetry counters are copy-on-write private:
            # ship the per-job delta home with the result.
            channel_delta = None
            if telemetry is not None:
                channel_delta = ChannelTelemetry.delta(
                    telemetry.snapshot(), channels_before)
            payload = _drain_worker_tracer(tracer, ctx, queue_wait_ns,
                                           channel_delta)
            done.put((ticket, index, outputs, None, exec_ns, payload))
        except BaseException as exc:  # noqa: BLE001 - serialize the failure
            done.put((ticket, index, {}, remote_error_text(exc),
                      time.perf_counter_ns() - start_ns, None))


class WarmExecutorPool:
    """Persistent per-cluster workers executing one generated module.

    Parameters
    ----------
    module:
        The generated parallel module (or a
        :class:`repro.codegen.module_writer.GeneratedModule` wrapper, or an
        :class:`repro.runtime.plan.ExecutionPlan`, which is adapted into a
        single-cluster module via ``as_cluster_module()``).
    weights:
        Initializer values (``model.graph.initializers``); captured once at
        pool construction and shared by every run.
    backend:
        ``"thread"`` (default) or ``"process"`` (requires ``fork``).
    tracer:
        Optional coordinator :class:`~repro.observability.Tracer`.  When
        given at construction, dispatch carries trace contexts, workers
        ship span buffers home, and (``"process"`` backend) the inherited
        channels are wrapped for byte/ns accounting.  May also be attached
        later via :meth:`set_tracer` (spans only, for the process backend).
    """

    def __init__(self, module, weights: Mapping[str, np.ndarray],
                 backend: str = "thread", tracer: Optional[Tracer] = None,
                 fail_grace_s: float = 2.0) -> None:
        as_cluster_module = getattr(module, "as_cluster_module", None)
        if as_cluster_module is not None:  # an ExecutionPlan
            module = as_cluster_module()
        module = getattr(module, "module", module)
        if backend not in ("thread", "process"):
            raise ValueError(f"unknown backend {backend!r}; use 'thread' or 'process'")
        self.module = module
        self.backend = backend
        self._weights = dict(weights)
        self._num_clusters = len(module.CLUSTER_FUNCTIONS)
        self._tickets = itertools.count(1)
        self._lock = threading.Lock()
        self._close_lock = threading.Lock()
        self._closed = False
        self._broken = False

        # -- resilience state ------------------------------------------
        #: once a worker failure arrives mid-collection, wait at most this
        #: long for straggler results before failing the run — a broken run
        #: should cost seconds, not the full batch timeout
        self._fail_grace_s = fail_grace_s
        #: (ticket, started_monotonic) of the run in flight, else None
        self._inflight: Optional[Tuple[int, float]] = None
        #: optional deterministic FaultInjector consulted per dispatch
        self._injector = None
        #: last time each worker produced any message (monotonic seconds)
        self._heartbeats: List[float] = [time.monotonic()] * self._num_clusters
        self._worker_respawns = [0] * self._num_clusters
        self._protocol_errors = 0

        # -- observability state ---------------------------------------
        self._tracer = tracer
        #: channel telemetry; for "process" it must exist before fork
        self._telemetry: Optional[ChannelTelemetry] = (
            ChannelTelemetry() if tracer is not None else None)
        #: aggregated channel counters shipped home by process workers
        self._channel_totals: Dict[str, int] = {}
        #: measured worker_clock - coordinator_clock per worker index
        self._clock_offsets: List[int] = [0] * self._num_clusters
        #: accumulated per-worker span tuples (+ identity and drops)
        self._worker_spans: List[deque] = [
            deque(maxlen=_WORKER_BUFFER_CAPACITY)
            for _ in range(self._num_clusters)]
        self._worker_drops: List[int] = [0] * self._num_clusters
        self._worker_ids: List[Optional[tuple]] = [None] * self._num_clusters
        #: run/timing counters surfaced by stats() and publish_metrics()
        self._runs = 0
        self._failures = 0
        self._restarts = 0
        self._occupancy = 0
        self._dispatch_ns = 0
        self._collect_wait_ns = 0
        self._worker_jobs = [0] * self._num_clusters
        self._worker_execute_ns = [0] * self._num_clusters
        self._worker_queue_wait_ns = [0] * self._num_clusters
        #: optional run-latency histograms, set by publish_metrics()
        self._run_histogram = None
        self._execute_histogram = None
        self._metrics_registries: list = []

        self._spawn()

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self) -> None:
        """Create queues (+ channels for the process backend) and workers."""
        if self.backend == "thread":
            self._mp_ctx = None
            self._done: "queue.Queue" = queue.Queue()
            self._channels = None  # fresh thread channels per run
        else:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError as exc:  # pragma: no cover - non-POSIX platforms
                raise ParallelExecutionError(
                    "the warm process pool requires the 'fork' start method"
                ) from exc
            self._mp_ctx = ctx
            # Channels are created once and inherited at fork; every run
            # drains them completely, so they can be reused across runs.
            channels = make_process_channels(self.module.CHANNEL_NAMES, ctx=ctx)
            if self._telemetry is not None:
                channels = instrument_channels(channels, self._telemetry)
            self._channels = channels
            self._done = ctx.Queue()
        self._job_queues = [None] * self._num_clusters
        self._workers = [None] * self._num_clusters
        for index in range(self._num_clusters):
            self._job_queues[index], self._workers[index] = \
                self._make_worker(index)
        for worker in self._workers:
            worker.start()
        self._heartbeats = [time.monotonic()] * self._num_clusters
        self._sync_clocks()

    def _make_worker(self, index: int):
        """Build (job queue, unstarted worker) for one cluster index.

        A fresh job queue per (re)spawn keeps a replacement worker from
        inheriting stale jobs a dead or wedged predecessor never consumed.
        """
        fn = self.module.CLUSTER_FUNCTIONS[index]
        if self.backend == "thread":
            jobs = queue.Queue()
            worker = threading.Thread(
                target=_thread_worker,
                args=(fn, self._weights, jobs, self._done, index),
                daemon=True, name=f"warm-cluster-{index}")
        else:
            jobs = self._mp_ctx.Queue()
            worker = self._mp_ctx.Process(
                target=_process_worker,
                args=(fn, self._weights, self._channels, jobs, self._done,
                      index, self._telemetry),
                daemon=True, name=f"warm-cluster-{index}")
        return jobs, worker

    def _sync_clocks(self, timeout: float = 60.0, rounds: int = 3,
                     indices: Optional[Sequence[int]] = None) -> None:
        """Measure each worker's clock offset with ping/pong handshakes.

        The coordinator records its clock, sends a sync message, and the
        worker replies with its own clock reading; the offset is taken
        against the midpoint of the round trip (the NTP estimator).
        Several rounds are run and the measurement with the smallest round
        trip wins — the first round's trip includes worker startup (fork,
        imports), which would bias the midpoint by milliseconds.  On fork
        platforms ``perf_counter_ns`` is machine-wide so the measured
        offset is the handshake noise floor, but the merge stays correct
        anywhere worker clocks genuinely diverge — and the handshake
        doubles as a worker liveness check at (re)spawn time.  With
        ``indices`` it syncs (and liveness-checks) only those workers —
        the single-worker respawn path.
        """
        targets = (list(range(self._num_clusters)) if indices is None
                   else sorted(set(indices)))
        best_rtt: Dict[int, Optional[int]] = {i: None for i in targets}
        deadline = time.monotonic() + timeout
        for _ in range(max(rounds, 1)):
            sent_ns: Dict[int, int] = {}
            for i in targets:
                sent_ns[i] = time.perf_counter_ns()
                self._job_queues[i].put((_SYNC, None))
            pending = set(targets)
            while pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._broken = True
                    raise ParallelExecutionError(
                        f"worker clock handshake for "
                        f"{self.module.MODEL_NAME!r} timed out after "
                        f"{timeout}s ({len(pending)}/{len(targets)} "
                        "workers silent)")
                try:
                    item = self._done.get(timeout=min(remaining, 0.5))
                except queue.Empty:
                    continue
                if not isinstance(item, tuple) or len(item) != 6:
                    self._protocol_errors += 1
                    continue  # corrupted straggler; the handshake goes on
                ticket, index, worker_ns, _, _, _ = item
                if isinstance(index, int) and 0 <= index < self._num_clusters:
                    self._note_heartbeat(index)
                if ticket == _PING:
                    continue  # liveness reply, not a handshake reply
                if ticket != _SYNC or index not in pending:
                    continue  # straggler of a pre-restart run
                reply_ns = time.perf_counter_ns()
                rtt = reply_ns - sent_ns[index]
                if best_rtt[index] is None or rtt < best_rtt[index]:
                    best_rtt[index] = rtt
                    self._clock_offsets[index] = int(
                        worker_ns - (sent_ns[index] + reply_ns) // 2)
                pending.discard(index)

    def restart(self, join_timeout: float = 2.0) -> None:
        """Tear down the workers and spawn a fresh set; clears ``broken``.

        Recovery after a timed-out or failed run: the compiled module and
        weights are reused, so a restart costs worker startup only — far
        cheaper than invalidating the artifact and recompiling.  Counted
        in ``stats()["restarts"]`` (and the ``pool_worker_restarts_total``
        registry metric).
        """
        with self._lock:
            if self._closed:
                raise ParallelExecutionError(
                    "cannot restart a closed warm executor pool")
            self._stop_workers(join_timeout)
            self._broken = False
            self._restarts += 1
            self._spawn()

    def _stop_workers(self, join_timeout: float) -> None:
        for jobs in self._job_queues:
            try:
                jobs.put(None)
            except Exception:  # noqa: BLE001 - queue already torn down
                pass
        for worker in self._workers:
            worker.join(timeout=join_timeout)
            if self.backend == "process" and worker.is_alive():
                worker.terminate()

    # ------------------------------------------------------------------
    # Supervision primitives (consumed by repro.resilience.PoolSupervisor)
    # ------------------------------------------------------------------
    def _note_heartbeat(self, index: int) -> None:
        if 0 <= index < self._num_clusters:
            self._heartbeats[index] = time.monotonic()

    def worker_alive(self, index: int) -> bool:
        """Whether worker ``index``'s thread/process is currently alive."""
        worker = self._workers[index]
        return worker is not None and worker.is_alive()

    def heartbeat_age(self, index: int) -> float:
        """Seconds since worker ``index`` last produced any message."""
        return max(time.monotonic() - self._heartbeats[index], 0.0)

    def inflight(self) -> Optional[Tuple[int, float]]:
        """``(ticket, started_monotonic)`` of the run in flight, or None."""
        return self._inflight

    def set_fault_injector(self, injector) -> None:
        """Attach (or detach, with ``None``) a deterministic FaultInjector.

        When attached, every dispatched job consults
        ``injector.directive("worker.execute", worker=i)`` and ships the
        result in the job tuple's fault slot; detached dispatch ships
        ``None`` and the workers pay one ``is not None`` check (gated at
        parity in ``benchmarks/test_observability_overhead.py``).
        """
        self._injector = injector

    def ping_workers(self) -> None:
        """Enqueue a ``__ping__`` heartbeat ticket for every worker.

        A live worker replies on the done queue as soon as it drains its
        job queue; the reply refreshes its heartbeat wherever it is
        consumed (:meth:`_collect`, :meth:`_sync_clocks` or
        :meth:`poll_done`).  A wedged worker never replies — which is the
        signal the supervisor's hang detection keys on.
        """
        if self._closed:
            return
        for jobs in self._job_queues:
            try:
                jobs.put((_PING, None))
            except Exception:  # noqa: BLE001 - queue being torn down
                pass

    def poll_done(self, max_items: int = 64) -> int:
        """Drain ready done-queue messages while the pool is idle.

        Non-blocking (skips entirely if a run holds the pool lock):
        consumes up to ``max_items`` ready messages — ping/sync replies
        and stragglers of failed runs — recording heartbeats, so idle
        supervision does not grow the done queue without bound.  Returns
        the number of messages consumed.
        """
        if not self._lock.acquire(blocking=False):
            return 0
        try:
            consumed = 0
            while consumed < max_items:
                try:
                    item = self._done.get_nowait()
                except Exception:  # noqa: BLE001 - queue.Empty for both kinds
                    break
                consumed += 1
                if isinstance(item, tuple) and len(item) == 6 \
                        and isinstance(item[1], int):
                    self._note_heartbeat(item[1])
                else:
                    self._protocol_errors += 1
            return consumed
        finally:
            self._lock.release()

    def fail_inflight(self, index: int, reason: str) -> bool:
        """Fail the in-flight run on behalf of a dead or wedged worker.

        Posts a synthetic failure message carrying the current ticket to
        the done queue, so :meth:`_collect` surfaces the failure within
        the *fail grace* window instead of waiting out the full batch
        timeout.  Returns False when no run is in flight.  Lock-free by
        design: the caller (the supervisor) must work while :meth:`run`
        holds the pool lock.
        """
        inflight = self._inflight
        if inflight is None:
            return False
        ticket, _ = inflight
        self._done.put((ticket, index, {}, reason, 0, None))
        return True

    def respawn_worker(self, index: int, join_timeout: float = 2.0,
                       sync_timeout: float = 60.0) -> None:
        """Replace the single worker ``index`` with a fresh one.

        Unlike :meth:`restart` this keeps every healthy worker (and, for
        the process backend, the fork-inherited channels) in place: the
        failed worker is terminated/abandoned, a replacement is spawned
        over the same cluster function and weights with a *fresh* job
        queue, and a one-worker clock handshake re-measures its offset.
        Clears ``broken`` once every worker is alive again.  Counted in
        ``stats()["respawns"]`` (the full-restart counter is untouched).
        """
        with self._lock:
            if self._closed:
                raise ParallelExecutionError(
                    "cannot respawn a worker of a closed pool")
            self._respawn_locked(index, join_timeout, sync_timeout)
            if all(self.worker_alive(i) for i in range(self._num_clusters)):
                self._broken = False

    def _respawn_locked(self, index: int, join_timeout: float,
                        sync_timeout: float) -> None:
        old = self._workers[index]
        if (self.backend == "process" and self._channels
                and old is not None and old.is_alive()):
            # Terminating a live process worker can kill it while it holds
            # a shared channel-queue lock (a worker blocked in a channel
            # ``get`` holds that queue's reader lock), poisoning the
            # channel for every successor.  The only safe recovery that
            # involves force-terminating live workers is a full worker-set
            # respawn over *fresh* channels.
            self._respawn_all_locked(join_timeout, sync_timeout)
            return
        try:  # a healthy-but-abandoned worker exits on the sentinel
            self._job_queues[index].put(None)
        except Exception:  # noqa: BLE001 - queue already torn down
            pass
        if self.backend == "process":
            if old is not None and old.is_alive():
                old.terminate()
            if old is not None:
                old.join(join_timeout)
                try:
                    old.close()
                except Exception:  # noqa: BLE001 - still-running straggler
                    pass
            # A mid-run death can strand items in the fork-inherited
            # channels; drain them so the next run starts from empty.
            self._drain_channels()
        # A wedged *thread* cannot be killed: it is abandoned (daemonic,
        # parked on the old job queue or a stale channel) and leaks until
        # its blocking call returns — the documented watchdog contract.
        jobs, worker = self._make_worker(index)
        self._job_queues[index] = jobs
        self._workers[index] = worker
        worker.start()
        self._note_heartbeat(index)
        self._worker_respawns[index] += 1
        self._sync_clocks(timeout=sync_timeout, indices=[index])

    def _respawn_all_locked(self, join_timeout: float,
                            sync_timeout: float) -> None:
        """Replace every process worker over fresh channels and done queue.

        The escalation path for process-backend heals that must terminate
        *live* (wedged) workers: a worker killed while blocked inside a
        channel ``get``/``put`` dies holding the queue's shared lock, so
        the inherited channels (and, in the worst race, the done queue)
        cannot be trusted afterwards.  Weights and the compiled module are
        still reused — this costs worker startup, never a recompile — and
        it is counted per worker in ``stats()["respawns"]``, not as a
        ``restart``.
        """
        for jobs in self._job_queues:
            try:
                jobs.put(None)
            except Exception:  # noqa: BLE001 - queue already torn down
                pass
        for worker in self._workers:
            if worker is None:
                continue
            try:
                if worker.is_alive():
                    worker.terminate()
            except Exception:  # noqa: BLE001 - already reaped
                pass
        for worker in self._workers:
            if worker is None:
                continue
            try:
                worker.join(join_timeout)
                if worker.is_alive():
                    worker.kill()
                    worker.join(join_timeout)
            except Exception:  # noqa: BLE001 - already reaped
                pass
            try:
                worker.close()
            except Exception:  # noqa: BLE001 - still-running straggler
                pass
        channels = make_process_channels(self.module.CHANNEL_NAMES,
                                         ctx=self._mp_ctx)
        if self._telemetry is not None:
            channels = instrument_channels(channels, self._telemetry)
        self._channels = channels
        self._done = self._mp_ctx.Queue()
        for index in range(self._num_clusters):
            jobs, worker = self._make_worker(index)
            self._job_queues[index] = jobs
            self._workers[index] = worker
            self._note_heartbeat(index)
            self._worker_respawns[index] += 1
        for worker in self._workers:
            worker.start()
        self._sync_clocks(timeout=sync_timeout)

    def _drain_channels(self) -> None:
        if not self._channels:
            return
        for channel in self._channels.values():
            inner = getattr(channel, "_channel", channel)
            for _ in range(100000):  # bounded: a stranded run's leftovers
                try:
                    inner.get_nowait()
                except Exception:  # noqa: BLE001 - Empty / closed queue
                    break

    def heal(self, wedged: Sequence[int] = (), join_timeout: float = 2.0,
             sync_timeout: float = 60.0) -> List[int]:
        """Respawn every dead worker (plus explicitly ``wedged`` ones).

        The supervisor's recovery entry point: detects nothing itself,
        just replaces the workers it is told about (and any it finds
        dead), then clears ``broken`` when the full complement is alive.
        Returns the respawned indices.
        """
        with self._lock:
            if self._closed:
                raise ParallelExecutionError("cannot heal a closed pool")
            targets = sorted(set(wedged) | {
                i for i in range(self._num_clusters)
                if not self.worker_alive(i)})
            if (self.backend == "process" and self._channels and targets
                    and any(self.worker_alive(i) for i in targets)):
                # Force-terminating live (wedged) process workers can
                # poison the shared channels (see _respawn_all_locked):
                # escalate once to a fresh-channel full respawn.
                self._respawn_all_locked(join_timeout, sync_timeout)
                targets = list(range(self._num_clusters))
            else:
                for index in targets:
                    self._respawn_locked(index, join_timeout, sync_timeout)
            if all(self.worker_alive(i) for i in range(self._num_clusters)):
                self._broken = False
            return targets

    # ------------------------------------------------------------------
    @property
    def num_clusters(self) -> int:
        """Number of persistent workers (one per cluster)."""
        return self._num_clusters

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    @property
    def broken(self) -> bool:
        """True once a run failed in a way that may leave workers wedged."""
        return self._broken

    # ------------------------------------------------------------------
    # Observability surface
    # ------------------------------------------------------------------
    @property
    def tracer(self) -> Optional[Tracer]:
        """The attached coordinator tracer, if any."""
        return self._tracer

    def set_tracer(self, tracer: Optional[Tracer]) -> None:
        """Attach (or detach, with ``None``) the coordinator tracer.

        Takes effect on the next run: dispatched jobs carry trace contexts
        and workers ship their span buffers home.  For the ``"thread"``
        backend this also enables channel byte/ns telemetry (fresh channels
        are wrapped per run); the ``"process"`` backend's channels were
        frozen at fork, so channel telemetry there requires the tracer at
        construction time — spans and timings still work.
        """
        self._tracer = tracer
        if (tracer is not None and self._telemetry is None
                and self.backend == "thread"):
            self._telemetry = ChannelTelemetry()

    def clock_offsets(self) -> List[int]:
        """Measured per-worker clock offsets (worker - coordinator), ns."""
        return list(self._clock_offsets)

    def worker_trace_buffers(self) -> List[WorkerTraceBuffer]:
        """The accumulated per-worker span buffers, ready for merging.

        Each buffer carries the worker's real pid/tid, its handshake clock
        offset and its drop count (worker-ring drops plus coordinator-side
        evictions past the per-worker cap).  Feed the result — together
        with the coordinator tracer — to
        :func:`repro.observability.merge.merge_traces`.
        """
        buffers: List[WorkerTraceBuffer] = []
        with self._lock:
            for index in range(self._num_clusters):
                identity = self._worker_ids[index]
                if not self._worker_spans[index] and not self._worker_drops[index]:
                    continue  # nothing traced for this worker (yet)
                pid, tid = identity if identity else (os.getpid(), 0)
                buffers.append(WorkerTraceBuffer(
                    worker=f"cluster-{index}", pid=pid, tid=tid,
                    events=list(self._worker_spans[index]),
                    dropped=self._worker_drops[index],
                    clock_offset_ns=self._clock_offsets[index]))
        return buffers

    def clear_worker_traces(self) -> None:
        """Drop the accumulated worker spans and their drop counts."""
        with self._lock:
            for spans in self._worker_spans:
                spans.clear()
            self._worker_drops = [0] * self._num_clusters

    def _ingest_trace_payload(self, index: int, payload: Dict) -> None:
        """Fold one shipped worker buffer into the per-worker accumulators.

        Called from ``_collect`` (under the run lock).  Eviction past the
        per-worker cap is counted as coordinator-side drops so a truncated
        lane stays accounted, not silently sparse.
        """
        spans = self._worker_spans[index]
        evicted = max(len(spans) + len(payload["spans"]) - spans.maxlen, 0)
        spans.extend(payload["spans"])
        self._worker_drops[index] += payload["dropped"] + min(
            evicted, len(payload["spans"]))
        self._worker_ids[index] = (payload["pid"], payload["tid"])
        self._worker_queue_wait_ns[index] += payload["queue_wait_ns"]
        delta = payload.get("channels")
        if delta:
            for key, value in delta.items():
                self._channel_totals[key] = (
                    self._channel_totals.get(key, 0) + value)

    def stats(self) -> Dict:
        """Run, timing, channel and trace counters for this pool."""
        channels = None
        if self.backend == "thread" and self._telemetry is not None:
            channels = self._telemetry.snapshot()
        elif self._channel_totals:
            channels = dict(self._channel_totals)
        return {
            "backend": self.backend,
            "clusters": self._num_clusters,
            "runs": self._runs,
            "failures": self._failures,
            "restarts": self._restarts,
            "respawns": sum(self._worker_respawns),
            "protocol_errors": self._protocol_errors,
            "occupancy": self._occupancy,
            "dispatch_ns_total": self._dispatch_ns,
            "collect_wait_ns_total": self._collect_wait_ns,
            "execute_ns_total": sum(self._worker_execute_ns),
            "workers": [
                {"worker": index,
                 "jobs": self._worker_jobs[index],
                 "alive": self.worker_alive(index),
                 "respawns": self._worker_respawns[index],
                 "heartbeat_age_s": self.heartbeat_age(index),
                 "execute_ns_total": self._worker_execute_ns[index],
                 "queue_wait_ns_total": self._worker_queue_wait_ns[index],
                 "spans_buffered": len(self._worker_spans[index]),
                 "spans_dropped": self._worker_drops[index],
                 "clock_offset_ns": self._clock_offsets[index]}
                for index in range(self._num_clusters)],
            "channels": channels,
        }

    def publish_metrics(self, registry,
                        labels: Optional[Mapping[str, str]] = None) -> None:
        """Mirror the pool's counters into a ``MetricsRegistry``.

        Registers a pull-style collector refreshing run/failure/restart
        totals, occupancy, dispatch/execute/queue-wait time totals and the
        channel byte/ns counters before every snapshot, plus per-worker
        job/execute series labelled ``worker="<index>"`` — so one registry
        snapshot covers the plan, serving and worker layers together.
        Also creates ``pool_run_seconds`` / ``pool_worker_execute_seconds``
        histograms the pool observes into at run time.
        """
        labels = dict(labels) if labels else {}
        gauge = registry.gauge
        self._run_histogram = registry.histogram(
            "pool_run_seconds", "Warm-pool run wall time", labels=labels)
        self._execute_histogram = registry.histogram(
            "pool_worker_execute_seconds",
            "Per-worker cluster execute time", labels=labels)

        def collect(_registry) -> None:
            stats = self.stats()
            gauge("pool_runs_total", "Completed warm-pool runs",
                  labels=labels).set(stats["runs"])
            gauge("pool_failures_total", "Failed or timed-out pool runs",
                  labels=labels).set(stats["failures"])
            gauge("pool_worker_restarts_total",
                  "Times the pool's workers were restarted",
                  labels=labels).set(stats["restarts"])
            gauge("pool_worker_respawns_total",
                  "Single workers replaced by supervision (no full restart)",
                  labels=labels).set(stats["respawns"])
            gauge("pool_protocol_errors_total",
                  "Malformed result-channel messages observed",
                  labels=labels).set(stats["protocol_errors"])
            gauge("pool_workers_alive",
                  "Workers whose thread/process is currently alive",
                  labels=labels).set(
                      sum(1 for row in stats["workers"] if row["alive"]))
            gauge("pool_occupancy", "Runs currently executing (0 or 1)",
                  labels=labels).set(stats["occupancy"])
            gauge("pool_dispatch_seconds_total",
                  "Cumulative job-dispatch time",
                  labels=labels).set(stats["dispatch_ns_total"] / 1e9)
            gauge("pool_collect_wait_seconds_total",
                  "Cumulative result-collection wait",
                  labels=labels).set(stats["collect_wait_ns_total"] / 1e9)
            gauge("pool_execute_seconds_total",
                  "Cumulative worker execute time (all workers)",
                  labels=labels).set(stats["execute_ns_total"] / 1e9)
            for row in stats["workers"]:
                worker_labels = dict(labels, worker=str(row["worker"]))
                gauge("pool_worker_jobs_total", "Jobs executed by a worker",
                      labels=worker_labels).set(row["jobs"])
                gauge("pool_worker_queue_wait_seconds_total",
                      "Cumulative dispatch-to-receive wait of a worker",
                      labels=worker_labels).set(
                          row["queue_wait_ns_total"] / 1e9)
                gauge("pool_worker_spans_dropped_total",
                      "Worker trace spans lost to ring/cap drops",
                      labels=worker_labels).set(row["spans_dropped"])
            channels = stats["channels"]
            if channels:
                gauge("pool_channel_puts_total", "Channel put calls",
                      labels=labels).set(channels["puts"])
                gauge("pool_channel_gets_total", "Channel get calls",
                      labels=labels).set(channels["gets"])
                gauge("pool_channel_put_bytes_total",
                      "Payload bytes moved into channels",
                      labels=labels).set(channels["put_bytes"])
                gauge("pool_channel_get_bytes_total",
                      "Payload bytes moved out of channels",
                      labels=labels).set(channels["get_bytes"])
                gauge("pool_channel_put_seconds_total",
                      "Cumulative producer-side channel hand-off time",
                      labels=labels).set(channels["put_ns"] / 1e9)
                gauge("pool_channel_get_seconds_total",
                      "Cumulative consumer-side channel hand-off time",
                      labels=labels).set(channels["get_ns"] / 1e9)

        registry.register_collector(collect)
        self._metrics_registries.append((registry, collect))

    # ------------------------------------------------------------------
    def run(self, inputs: Mapping[str, np.ndarray],
            timeout: float = 300.0) -> Dict[str, np.ndarray]:
        """Execute the module once and return its graph outputs.

        Runs are serialized: the pool owns exactly one set of workers, so a
        second concurrent ``run`` blocks until the first finishes.
        """
        with self._lock:
            if self._closed:
                raise ParallelExecutionError("warm executor pool is closed")
            if self._broken:
                raise ParallelExecutionError(
                    "warm executor pool is broken after an earlier failure; "
                    "restart() it or compile a fresh one")
            ticket = next(self._tickets)
            feed = dict(inputs)
            tracer = self._tracer
            ctx = TraceContext.from_tracer(tracer, parent_span="pool.run")
            injector = self._injector
            faults = None
            if injector is not None:
                faults = [injector.directive("worker.execute", worker=i)
                          for i in range(self._num_clusters)]
            self._occupancy = 1
            self._inflight = (ticket, time.monotonic())
            run_start_ns = time.perf_counter_ns()
            try:
                if self.backend == "thread":
                    channels = make_thread_channels(self.module.CHANNEL_NAMES)
                    if ctx is not None and self._telemetry is not None:
                        channels = instrument_channels(channels,
                                                       self._telemetry)
                    for i, jobs in enumerate(self._job_queues):
                        jobs.put((ticket, feed, channels, ctx,
                                  faults[i] if faults is not None else None))
                else:
                    for i, jobs in enumerate(self._job_queues):
                        jobs.put((ticket, feed, ctx,
                                  faults[i] if faults is not None else None))
                dispatch_ns = time.perf_counter_ns() - run_start_ns
                self._dispatch_ns += dispatch_ns
                outputs = self._collect(ticket, timeout)
                self._runs += 1
                return outputs
            except BaseException:
                self._failures += 1
                raise
            finally:
                self._occupancy = 0
                self._inflight = None
                end_ns = time.perf_counter_ns()
                if self._run_histogram is not None:
                    self._run_histogram.observe((end_ns - run_start_ns) / 1e9)
                if tracer is not None:
                    args = {"model": self.module.MODEL_NAME,
                            "backend": self.backend}
                    if ctx is not None:
                        args["trace_id"] = str(ctx.trace_id)
                    tracer.emit("pool.run", "pool", run_start_ns, end_ns,
                                args=args)

    def _collect(self, ticket: int, timeout: float) -> Dict[str, np.ndarray]:
        merged: Dict[str, np.ndarray] = {}
        failures: List[str] = []
        pending = self._num_clusters
        deadline = time.monotonic() + timeout
        wait_start_ns = time.perf_counter_ns()
        while pending > 0:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._broken = True
                self._collect_wait_ns += time.perf_counter_ns() - wait_start_ns
                if failures:
                    # a worker already failed; the others are presumed
                    # stranded — surface the real failure, not a timeout
                    raise ParallelExecutionError("; ".join(failures))
                raise ParallelExecutionError(
                    f"warm execution of {self.module.MODEL_NAME!r} timed out "
                    f"after {timeout}s (possible deadlock)")
            try:
                item = self._done.get(timeout=min(remaining, 0.5))
            except queue.Empty:
                continue
            if not isinstance(item, tuple) or len(item) != 6:
                # a malformed result-channel message cannot be attributed
                # to a worker, so the run cannot complete: fail fast
                self._protocol_errors += 1
                self._broken = True
                self._collect_wait_ns += time.perf_counter_ns() - wait_start_ns
                raise ParallelExecutionError(
                    f"corrupted result-channel message during warm run of "
                    f"{self.module.MODEL_NAME!r}: {item!r:.200}")
            got_ticket, index, outputs, error, exec_ns, payload = item
            if isinstance(index, int):
                self._note_heartbeat(index)
            if got_ticket == _SYNC or got_ticket == _PING:
                continue  # liveness/handshake reply; heartbeat noted above
            if got_ticket != ticket:
                continue  # straggler of an earlier, failed run
            pending -= 1
            self._worker_jobs[index] += 1
            self._worker_execute_ns[index] += exec_ns
            if self._execute_histogram is not None:
                self._execute_histogram.observe(exec_ns / 1e9)
            if payload is not None:
                self._ingest_trace_payload(index, payload)
            if error is not None:
                failures.append(f"cluster {index}: {error}")
                # once one worker failed, its peers may be stranded on
                # channels that will never fill: collect stragglers for a
                # short grace window, then fail the run
                deadline = min(deadline,
                               time.monotonic() + self._fail_grace_s)
            else:
                merged.update(outputs)
        self._collect_wait_ns += time.perf_counter_ns() - wait_start_ns
        if failures:
            self._broken = True
            raise ParallelExecutionError("; ".join(failures))
        missing = [name for name in self.module.GRAPH_OUTPUTS if name not in merged]
        if missing:
            self._broken = True
            raise ParallelExecutionError(
                f"warm run of {self.module.MODEL_NAME!r} did not produce "
                f"outputs: {missing}")
        return {name: merged[name] for name in self.module.GRAPH_OUTPUTS}

    # ------------------------------------------------------------------
    def close(self, join_timeout: float = 2.0) -> None:
        """Stop all workers; idempotent.

        Deliberately does not take the run lock: a close racing an
        in-flight ``run`` (e.g. LRU eviction on another thread's submit
        path) must not block for up to the run timeout.  Workers finish
        their current job before seeing the sentinel.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        for registry, collect in self._metrics_registries:
            registry.unregister_collector(collect)
        self._metrics_registries.clear()
        self._stop_workers(join_timeout)

    def __enter__(self) -> "WarmExecutorPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
