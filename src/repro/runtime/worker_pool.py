"""Warm, reusable executor pools for Ramiel-generated parallel modules.

:mod:`repro.runtime.process_runtime` spawns one thread or process per
cluster *per call*, which is the right shape for one-shot experiments but
wasteful under serving traffic: worker startup (and, for processes, weight
pickling) is paid on every request.  :class:`WarmExecutorPool` keeps one
long-lived worker per cluster and feeds it jobs through per-worker queues,
so repeated executions of the same compiled module only pay for the actual
operator work plus queue hand-off.

Two backends are supported:

* ``"thread"`` — one persistent thread per cluster.  numpy releases the GIL
  inside BLAS so clusters still overlap; fresh thread channels are created
  per run (they are cheap).
* ``"process"`` — one persistent forked process per cluster (the paper's
  runtime, minus the per-call fork).  The module, the weights and the
  channel queues are inherited at fork time and reused across runs; a
  correct clustering fully drains every channel each run, so reuse is safe.
  Requires a platform with the ``fork`` start method.

A run that times out or raises leaves workers in an unknown state (they may
be blocked on a channel ``get`` that will never be satisfied), so the pool
marks itself *broken* and refuses further work; the owner is expected to
discard it and build a fresh one.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue
import threading
import time
from typing import Dict, List, Mapping

import numpy as np

from repro.runtime.channels import make_process_channels, make_thread_channels
from repro.runtime.process_runtime import ParallelExecutionError


def _thread_worker(fn, weights, jobs, done, index) -> None:
    while True:
        job = jobs.get()
        if job is None:
            return
        ticket, inputs, channels = job
        try:
            outputs = fn(inputs, weights, channels)
            done.put((ticket, index, outputs, None))
        except BaseException as exc:  # noqa: BLE001 - propagate to the caller
            done.put((ticket, index, {}, repr(exc)))


def _process_worker(fn, weights, channels, jobs, done, index) -> None:
    while True:
        job = jobs.get()
        if job is None:
            return
        ticket, inputs = job
        try:
            outputs = fn(inputs, weights, channels)
            done.put((ticket, index, outputs, None))
        except BaseException as exc:  # noqa: BLE001 - serialize the failure
            done.put((ticket, index, {}, repr(exc)))


class WarmExecutorPool:
    """Persistent per-cluster workers executing one generated module.

    Parameters
    ----------
    module:
        The generated parallel module (or a
        :class:`repro.codegen.module_writer.GeneratedModule` wrapper, or an
        :class:`repro.runtime.plan.ExecutionPlan`, which is adapted into a
        single-cluster module via ``as_cluster_module()``).
    weights:
        Initializer values (``model.graph.initializers``); captured once at
        pool construction and shared by every run.
    backend:
        ``"thread"`` (default) or ``"process"`` (requires ``fork``).
    """

    def __init__(self, module, weights: Mapping[str, np.ndarray],
                 backend: str = "thread") -> None:
        as_cluster_module = getattr(module, "as_cluster_module", None)
        if as_cluster_module is not None:  # an ExecutionPlan
            module = as_cluster_module()
        module = getattr(module, "module", module)
        if backend not in ("thread", "process"):
            raise ValueError(f"unknown backend {backend!r}; use 'thread' or 'process'")
        self.module = module
        self.backend = backend
        self._weights = dict(weights)
        self._num_clusters = len(module.CLUSTER_FUNCTIONS)
        self._tickets = itertools.count(1)
        self._lock = threading.Lock()
        self._close_lock = threading.Lock()
        self._closed = False
        self._broken = False

        if backend == "thread":
            self._job_queues = [queue.Queue() for _ in range(self._num_clusters)]
            self._done: "queue.Queue" = queue.Queue()
            self._workers = [
                threading.Thread(
                    target=_thread_worker,
                    args=(fn, self._weights, self._job_queues[i], self._done, i),
                    daemon=True, name=f"warm-cluster-{i}")
                for i, fn in enumerate(module.CLUSTER_FUNCTIONS)
            ]
            self._channels = None  # fresh thread channels per run
        else:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError as exc:  # pragma: no cover - non-POSIX platforms
                raise ParallelExecutionError(
                    "the warm process pool requires the 'fork' start method"
                ) from exc
            # Channels are created once and inherited at fork; every run
            # drains them completely, so they can be reused across runs.
            self._channels = make_process_channels(module.CHANNEL_NAMES, ctx=ctx)
            self._job_queues = [ctx.Queue() for _ in range(self._num_clusters)]
            self._done = ctx.Queue()
            self._workers = [
                ctx.Process(
                    target=_process_worker,
                    args=(fn, self._weights, self._channels,
                          self._job_queues[i], self._done, i),
                    daemon=True, name=f"warm-cluster-{i}")
                for i, fn in enumerate(module.CLUSTER_FUNCTIONS)
            ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    @property
    def num_clusters(self) -> int:
        """Number of persistent workers (one per cluster)."""
        return self._num_clusters

    @property
    def broken(self) -> bool:
        """True once a run failed in a way that may leave workers wedged."""
        return self._broken

    def run(self, inputs: Mapping[str, np.ndarray],
            timeout: float = 300.0) -> Dict[str, np.ndarray]:
        """Execute the module once and return its graph outputs.

        Runs are serialized: the pool owns exactly one set of workers, so a
        second concurrent ``run`` blocks until the first finishes.
        """
        with self._lock:
            if self._closed:
                raise ParallelExecutionError("warm executor pool is closed")
            if self._broken:
                raise ParallelExecutionError(
                    "warm executor pool is broken after an earlier failure; "
                    "discard it and compile a fresh one")
            ticket = next(self._tickets)
            feed = dict(inputs)
            if self.backend == "thread":
                channels = make_thread_channels(self.module.CHANNEL_NAMES)
                for jobs in self._job_queues:
                    jobs.put((ticket, feed, channels))
            else:
                for jobs in self._job_queues:
                    jobs.put((ticket, feed))
            return self._collect(ticket, timeout)

    def _collect(self, ticket: int, timeout: float) -> Dict[str, np.ndarray]:
        merged: Dict[str, np.ndarray] = {}
        failures: List[str] = []
        pending = self._num_clusters
        deadline = time.monotonic() + timeout
        while pending > 0:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._broken = True
                raise ParallelExecutionError(
                    f"warm execution of {self.module.MODEL_NAME!r} timed out "
                    f"after {timeout}s (possible deadlock)")
            try:
                got_ticket, index, outputs, error = self._done.get(
                    timeout=min(remaining, 0.5))
            except queue.Empty:
                continue
            if got_ticket != ticket:
                continue  # straggler of an earlier, failed run
            pending -= 1
            if error is not None:
                failures.append(f"cluster {index}: {error}")
            else:
                merged.update(outputs)
        if failures:
            self._broken = True
            raise ParallelExecutionError("; ".join(failures))
        missing = [name for name in self.module.GRAPH_OUTPUTS if name not in merged]
        if missing:
            self._broken = True
            raise ParallelExecutionError(
                f"warm run of {self.module.MODEL_NAME!r} did not produce "
                f"outputs: {missing}")
        return {name: merged[name] for name in self.module.GRAPH_OUTPUTS}

    # ------------------------------------------------------------------
    def close(self, join_timeout: float = 2.0) -> None:
        """Stop all workers; idempotent.

        Deliberately does not take the run lock: a close racing an
        in-flight ``run`` (e.g. LRU eviction on another thread's submit
        path) must not block for up to the run timeout.  Workers finish
        their current job before seeing the sentinel.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        for jobs in self._job_queues:
            try:
                jobs.put(None)
            except Exception:  # noqa: BLE001 - queue already torn down
                pass
        for worker in self._workers:
            worker.join(timeout=join_timeout)
            if self.backend == "process" and worker.is_alive():
                worker.terminate()

    def __enter__(self) -> "WarmExecutorPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
